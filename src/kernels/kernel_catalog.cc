#include "kernels/kernel_catalog.h"

#include "gf/field.h"
#include "kernels/aes_kernels.h"
#include "kernels/coding_kernels.h"
#include "kernels/wide_kernels.h"

namespace gfp {

std::vector<KernelSource>
kernelCatalog()
{
    // The paper's evaluation points: RS(255, 239) with t = 8 over
    // GF(2^8)/0x11d, AES-128, and the B-233 binary-curve primitives.
    const GFField f8(8);
    const unsigned n = 255, t = 8, two_t = 2 * t;

    std::vector<KernelSource> cat;
    auto addk = [&](const char *name, std::string src) {
        cat.push_back({name, std::move(src)});
    };

    addk("syndrome-gfcore", syndromeAsmGfcore(f8, n, two_t));
    addk("syndrome-gfcore-lane1", syndromeAsmGfcoreLanes(f8, n, two_t, 1));
    addk("syndrome-gfcore-lane2", syndromeAsmGfcoreLanes(f8, n, two_t, 2));
    addk("syndrome-baseline", syndromeAsmBaseline(f8, n, two_t));
    addk("bma-gfcore", bmaAsmGfcore(f8, two_t));
    addk("bma-baseline", bmaAsmBaseline(f8, two_t));
    addk("chien-gfcore", chienAsmGfcore(f8, n, t));
    addk("chien-baseline", chienAsmBaseline(f8, n, t));
    addk("forney-gfcore", forneyAsmGfcore(f8, two_t));
    addk("forney-baseline", forneyAsmBaseline(f8, two_t));
    addk("rs-encode-gfcore", rsEncodeAsmGfcore(f8, t));
    addk("rs-encode-baseline", rsEncodeAsmBaseline(f8, t));

    addk("aes-ark", aesArkAsm());
    addk("aes-subbytes-gfcore", aesSubBytesAsmGfcore(false));
    addk("aes-invsubbytes-gfcore", aesSubBytesAsmGfcore(true));
    addk("aes-subbytes-baseline", aesSubBytesAsmBaseline(false));
    addk("aes-shiftrows", aesShiftRowsAsm(false));
    addk("aes-invshiftrows", aesShiftRowsAsm(true));
    addk("aes-mixcol-gfcore", aesMixColAsmGfcore(false));
    addk("aes-invmixcol-gfcore", aesMixColAsmGfcore(true));
    addk("aes-mixcol-baseline", aesMixColAsmBaseline(false));
    addk("aes-keyexpand-gfcore", aesKeyExpandAsmGfcore());
    addk("aes-keyexpand-baseline", aesKeyExpandAsmBaseline());
    addk("aes-block-gfcore", aesBlockAsmGfcore(false));
    addk("aes-block-decrypt-gfcore", aesBlockAsmGfcore(true));
    addk("aes-block-baseline", aesBlockAsmBaseline(false));

    addk("mult233-direct", mult233DirectAsm());
    addk("mult233-baseline", mult233BaselineAsm());
    addk("mult233-karatsuba", mult233KaratsubaAsm());
    addk("square233", square233Asm());
    addk("inverse233", inverse233Asm(false));
    addk("inverse233-karatsuba", inverse233Asm(true));
    addk("point-double", pointDoubleAsm(false));
    addk("point-add", pointAddAsm(false));
    addk("scalar-mult", scalarMultAsm(false));
    addk("scalar-mult-karatsuba", scalarMultAsm(true));

    return cat;
}

} // namespace gfp
