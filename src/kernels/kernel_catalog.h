/**
 * @file
 * Named catalog of every built-in assembly kernel, instantiated with
 * the paper's reference parameters (RS(255, 239) over GF(2^8)/0x11d,
 * AES-128, GF(2^233) ECC).  One place to enumerate "all the programs
 * this repo ships", used by the gfp-lint CI gate and the static-
 * analysis test suite's lint-clean and mutation sweeps.
 */

#ifndef GFP_KERNELS_KERNEL_CATALOG_H
#define GFP_KERNELS_KERNEL_CATALOG_H

#include <string>
#include <vector>

namespace gfp {

struct KernelSource
{
    std::string name;   ///< stable identifier, e.g. "syndrome-gfcore"
    std::string source; ///< complete assembly source
};

/** Every built-in kernel program (GF-core and baseline variants). */
std::vector<KernelSource> kernelCatalog();

} // namespace gfp

#endif // GFP_KERNELS_KERNEL_CATALOG_H
