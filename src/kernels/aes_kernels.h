/**
 * @file
 * Assembly kernel generators for AES (paper Sec. 3.3.3 / Fig. 10).
 *
 * Per-kernel programs measure the Fig. 10 bars (AddRoundKey, S-box,
 * ShiftRows, MixColumns, InvMixColumns, key expansion); full-block
 * programs measure encryption/decryption end to end.
 *
 * Baseline variants follow the optimized open-source M0+ style the
 * paper benchmarks against: table S-box, branchless inline xtime
 * (kHandOptimized) or xtime through a helper call (kCompiled), state
 * kept in memory.  GF-core variants hold the state in four column
 * registers and use gfMultInv_simd for the S-box (plus the GF(2)
 * affine step) and gfMult_simd for Mix/InvMixColumns.
 *
 * Data layout:
 *   state   16 bytes   the AES state, FIPS column-major (byte r + 4c)
 *   rkeys   176 bytes  expanded round keys as XOR-ready byte blocks
 *   key     16 bytes   cipher key (key-expansion kernel input)
 *   xkey    44 words   expanded key words (key-expansion output,
 *                      FIPS big-endian word convention)
 */

#ifndef GFP_KERNELS_AES_KERNELS_H
#define GFP_KERNELS_AES_KERNELS_H

#include <string>

#include "kernels/kernellib.h"

namespace gfp {

/** AddRoundKey: state ^= rkeys[0..15]; identical on both cores. */
std::string aesArkAsm();

/** SubBytes / InvSubBytes over the 16-byte state. */
std::string aesSubBytesAsmBaseline(bool inverse);
std::string aesSubBytesAsmGfcore(bool inverse);

/** ShiftRows / InvShiftRows; identical on both cores (data movement). */
std::string aesShiftRowsAsm(bool inverse);

/** MixColumns / InvMixColumns over the state. */
std::string aesMixColAsmBaseline(
    bool inverse, BaselineFlavor flavor = BaselineFlavor::kHandOptimized);
std::string aesMixColAsmGfcore(bool inverse);

/** AES-128 key expansion: key -> xkey (44 words). */
std::string aesKeyExpandAsmBaseline();
std::string aesKeyExpandAsmGfcore();

/**
 * Full AES block encrypt/decrypt: state + rkeys -> state.
 * @p rounds selects the key size: 10 (AES-128), 12 (AES-192) or
 * 14 (AES-256); rkeys must hold 16*(rounds+1) expanded-key bytes.
 */
std::string aesBlockAsmBaseline(bool decrypt, unsigned rounds = 10);
std::string aesBlockAsmGfcore(bool decrypt, unsigned rounds = 10);

} // namespace gfp

#endif // GFP_KERNELS_AES_KERNELS_H
