#include "kernels/kernellib.h"

#include <sstream>

#include "common/bitops.h"
#include "common/logging.h"
#include "common/strutil.h"
#include "gfau/config_reg.h"

namespace gfp {

std::string
gfConfigData(const std::string &label, const GFField &field)
{
    return gfConfigDataRaw(label,
                           GFConfig::derive(field.m(), field.poly()));
}

std::string
gfConfigDataRaw(const std::string &label, const GFConfig &cfg)
{
    uint64_t blob = cfg.pack();
    return strprintf(".align 8\n%s:\n    .word 0x%x, 0x%x\n", label.c_str(),
                     static_cast<uint32_t>(blob),
                     static_cast<uint32_t>(blob >> 32));
}

std::string
byteTableData(const std::string &label, const std::vector<uint8_t> &bytes)
{
    std::ostringstream out;
    out << label << ":\n";
    for (size_t i = 0; i < bytes.size(); i += 16) {
        out << "    .byte ";
        for (size_t j = i; j < std::min(i + 16, bytes.size()); ++j) {
            if (j > i)
                out << ", ";
            out << static_cast<unsigned>(bytes[j]);
        }
        out << "\n";
    }
    return out.str();
}

std::string
wordTableData(const std::string &label, const std::vector<uint32_t> &words)
{
    std::ostringstream out;
    out << ".align 4\n" << label << ":\n";
    for (size_t i = 0; i < words.size(); i += 4) {
        out << "    .word ";
        for (size_t j = i; j < std::min(i + 4, words.size()); ++j) {
            if (j > i)
                out << ", ";
            out << strprintf("0x%x", words[j]);
        }
        out << "\n";
    }
    return out.str();
}

std::string
spaceData(const std::string &label, size_t bytes)
{
    return strprintf("%s:\n    .space %zu\n", label.c_str(), bytes);
}

std::string
logDomainTables(const std::string &prefix, const GFField &field)
{
    std::vector<uint8_t> log_bytes(field.order(), 0);
    for (uint32_t v = 1; v < field.order(); ++v)
        log_bytes[v] = static_cast<uint8_t>(field.log(v));

    std::vector<uint8_t> alog_bytes(field.groupOrder());
    for (uint32_t i = 0; i < field.groupOrder(); ++i)
        alog_bytes[i] = static_cast<uint8_t>(field.exp(i));

    return byteTableData(prefix + "_log", log_bytes) +
           byteTableData(prefix + "_alog", alog_bytes);
}

std::string
baselineMulAccSnippet(const std::string &acc, unsigned log_const,
                      const std::string &rlog, const std::string &ralog,
                      const std::string &scratch, unsigned group,
                      const std::string &tag)
{
    // Table 6, left column:
    //   if (sum != 0) {
    //     idx = log[sum] + i;  if (idx >= N) idx -= N;  sum = alog[idx];
    //   }
    // (a zero accumulator stays zero through the multiply)
    std::ostringstream out;
    out << strprintf("    cmpi %s, #0\n", acc.c_str());
    out << strprintf("    beq  mz_%s\n", tag.c_str());
    out << strprintf("    ldrb %s, [%s, %s]\n", scratch.c_str(),
                     rlog.c_str(), acc.c_str());
    out << strprintf("    addi %s, %s, #%u\n", scratch.c_str(),
                     scratch.c_str(), log_const);
    out << strprintf("    cmpi %s, #%u\n", scratch.c_str(), group);
    out << strprintf("    blo  mw_%s\n", tag.c_str());
    out << strprintf("    subi %s, %s, #%u\n", scratch.c_str(),
                     scratch.c_str(), group);
    out << strprintf("mw_%s:\n", tag.c_str());
    out << strprintf("    ldrb %s, [%s, %s]\n", acc.c_str(), ralog.c_str(),
                     scratch.c_str());
    out << strprintf("mz_%s:\n", tag.c_str());
    return out.str();
}

std::string
baselineMulSnippet(const std::string &rd, const std::string &ra,
                   const std::string &rb, const std::string &rlog,
                   const std::string &ralog, const std::string &s1,
                   const std::string &s2, unsigned group,
                   const std::string &tag)
{
    // rd = ra (x) rb via log/antilog with zero short-circuits and the
    // conditional-subtract modulo.
    std::ostringstream out;
    out << strprintf("    cmpi %s, #0\n", ra.c_str());
    out << strprintf("    beq  vz_%s\n", tag.c_str());
    out << strprintf("    cmpi %s, #0\n", rb.c_str());
    out << strprintf("    beq  vz_%s\n", tag.c_str());
    out << strprintf("    ldrb %s, [%s, %s]\n", s1.c_str(), rlog.c_str(),
                     ra.c_str());
    out << strprintf("    ldrb %s, [%s, %s]\n", s2.c_str(), rlog.c_str(),
                     rb.c_str());
    out << strprintf("    add  %s, %s, %s\n", s1.c_str(), s1.c_str(),
                     s2.c_str());
    out << strprintf("    cmpi %s, #%u\n", s1.c_str(), group);
    out << strprintf("    blo  vw_%s\n", tag.c_str());
    out << strprintf("    subi %s, %s, #%u\n", s1.c_str(), s1.c_str(),
                     group);
    out << strprintf("vw_%s:\n", tag.c_str());
    out << strprintf("    ldrb %s, [%s, %s]\n", rd.c_str(), ralog.c_str(),
                     s1.c_str());
    out << strprintf("    b    vd_%s\n", tag.c_str());
    out << strprintf("vz_%s:\n", tag.c_str());
    out << strprintf("    movi %s, #0\n", rd.c_str());
    out << strprintf("vd_%s:\n", tag.c_str());
    return out.str();
}

namespace {

/** Unrolled generic modulo emulation: r9 %= group; clobbers r10.
 *  Five compare-subtract-shift steps, the cost shape of a runtime
 *  division helper on a divider-less core. */
std::string
moduloBlocks(unsigned group, const std::string &prefix)
{
    std::ostringstream out;
    for (int sh = 4; sh >= 0; --sh) {
        if (sh == 4)
            out << strprintf("    li   r10, #%u\n", group << 4);
        else
            out << "    lsri r10, r10, #1\n";
        out << "    cmp  r9, r10\n";
        out << strprintf("    blo  %s%d\n", prefix.c_str(), sh);
        out << "    sub  r9, r9, r10\n";
        out << strprintf("%s%d:\n", prefix.c_str(), sh);
    }
    return out.str();
}

} // anonymous namespace

std::string
gfHelperRoutines(unsigned group)
{
    std::ostringstream s;
    s << "; log-domain GF multiply/divide helpers (compiled-code shape:\n";
    s << "; literal-pool address loads, generic software modulo)\n";
    s << "gfmul:\n";
    s << "    cmpi r9, #0\n";
    s << "    beq  gfmul_z\n";
    s << "    cmpi r10, #0\n";
    s << "    beq  gfmul_z\n";
    s << "    la   r15, gf_log\n";
    s << "    ldrb r9, [r15, r9]\n";
    s << "    ldrb r10, [r15, r10]\n";
    s << "    add  r9, r9, r10\n";
    s << moduloBlocks(group, "gm");
    s << "    la   r15, gf_alog\n";
    s << "    ldrb r9, [r15, r9]\n";
    s << "    ret\n";
    s << "gfmul_z:\n";
    s << "    movi r9, #0\n";
    s << "    ret\n";
    s << "gfdiv:\n";
    s << "    cmpi r9, #0\n";
    s << "    beq  gfdiv_z\n";
    s << "    la   r15, gf_log\n";
    s << "    ldrb r9, [r15, r9]\n";
    s << "    ldrb r10, [r15, r10]\n";
    s << strprintf("    addi r9, r9, #%u\n", group);
    s << "    sub  r9, r9, r10\n";
    s << moduloBlocks(group, "gd");
    s << "    la   r15, gf_alog\n";
    s << "    ldrb r9, [r15, r9]\n";
    s << "    ret\n";
    s << "gfdiv_z:\n";
    s << "    movi r9, #0\n";
    s << "    ret\n";
    return s.str();
}

std::string
compiledMulCall(const std::string &rd, const std::string &ra,
                const std::string &rb)
{
    std::ostringstream s;
    GFP_ASSERT(ra != "r10" || rb != "r9", "operand swap not supported");
    if (ra != "r9")
        s << strprintf("    mov  r9, %s\n", ra.c_str());
    if (rb != "r10")
        s << strprintf("    mov  r10, %s\n", rb.c_str());
    s << "    bl   gfmul\n";
    if (rd != "r9")
        s << strprintf("    mov  %s, r9\n", rd.c_str());
    return s.str();
}

std::string
compiledMulConstCall(const std::string &acc, uint8_t const_value)
{
    std::ostringstream s;
    if (acc != "r9")
        s << strprintf("    mov  r9, %s\n", acc.c_str());
    s << strprintf("    movi r10, #%u\n", const_value);
    s << "    bl   gfmul\n";
    if (acc != "r9")
        s << strprintf("    mov  %s, r9\n", acc.c_str());
    return s.str();
}

std::string
compiledDivCall(const std::string &rd, const std::string &ra,
                const std::string &rb)
{
    std::ostringstream s;
    GFP_ASSERT(ra != "r10" || rb != "r9", "operand swap not supported");
    if (ra != "r9")
        s << strprintf("    mov  r9, %s\n", ra.c_str());
    if (rb != "r10")
        s << strprintf("    mov  r10, %s\n", rb.c_str());
    s << "    bl   gfdiv\n";
    if (rd != "r9")
        s << strprintf("    mov  %s, r9\n", rd.c_str());
    return s.str();
}

uint32_t
packedAlphaWord(const GFField &field, unsigned first_exp)
{
    uint32_t w = 0;
    for (unsigned l = 0; l < 4; ++l)
        w = withLane(w, l, static_cast<uint8_t>(field.exp(first_exp + l)));
    return w;
}

} // namespace gfp
