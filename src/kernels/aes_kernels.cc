#include "kernels/aes_kernels.h"

#include <sstream>

#include "common/bitops.h"
#include "common/logging.h"
#include "common/strutil.h"
#include "crypto/aes.h"
#include "gf/field.h"
#include "gf/polys.h"

namespace gfp {

namespace {

const GFField &
aesField()
{
    static const GFField field(8, kAesPoly);
    return field;
}

/** Shared data block: config, state, scratch, key material, tables. */
std::string
aesData(bool with_tables)
{
    std::ostringstream d;
    d << ".data\n";
    d << gfConfigData("cfg", aesField());
    d << gfConfigDataRaw("ring", GFConfig::circulant(8));
    d << spaceData("state", 16);
    d << spaceData("tmpst", 16);
    d << spaceData("rkeys", 240);
    d << spaceData("key", 16);
    d << spaceData("xkey", 240);
    d << byteTableData("rcon", {0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40,
                                0x80, 0x1b, 0x36});
    if (with_tables) {
        std::vector<uint8_t> sbox(256), isbox(256);
        for (unsigned i = 0; i < 256; ++i) {
            sbox[i] = Aes::sbox(static_cast<uint8_t>(i));
            isbox[i] = Aes::invSbox(static_cast<uint8_t>(i));
        }
        d << byteTableData("sbox", sbox);
        d << byteTableData("isbox", isbox);
    }
    return d.str();
}

/** Inline branchless xtime: x = xtime(x); @p c1b holds 0x1b. */
std::string
xtimeInline(const std::string &x, const std::string &scratch,
            const std::string &c1b)
{
    std::ostringstream s;
    s << strprintf("    lsri %s, %s, #7\n", scratch.c_str(), x.c_str());
    s << strprintf("    mul  %s, %s, %s\n", scratch.c_str(),
                   scratch.c_str(), c1b.c_str());
    s << strprintf("    lsli %s, %s, #1\n", x.c_str(), x.c_str());
    s << strprintf("    andi %s, %s, #0xff\n", x.c_str(), x.c_str());
    s << strprintf("    eor  %s, %s, %s\n", x.c_str(), x.c_str(),
                   scratch.c_str());
    return s.str();
}

/** The xtime helper routine for kCompiled: r9 in/out, r10/r15 clobber. */
std::string
xtimeRoutine()
{
    return "xtime:\n"
           "    lsri r10, r9, #7\n"
           "    movi r15, #0x1b\n"
           "    mul  r10, r10, r15\n"
           "    lsli r9, r9, #1\n"
           "    andi r9, r9, #0xff\n"
           "    eor  r9, r9, r10\n"
           "    ret\n";
}

/** Byte-lane rotation of a packed column word: dst = rotw_k(src). */
std::string
rotWord(const std::string &dst, const std::string &src, unsigned k,
        const std::string &scratch)
{
    std::ostringstream s;
    s << strprintf("    lsri %s, %s, #%u\n", dst.c_str(), src.c_str(),
                   8 * k);
    s << strprintf("    lsli %s, %s, #%u\n", scratch.c_str(), src.c_str(),
                   32 - 8 * k);
    s << strprintf("    orr  %s, %s, %s\n", dst.c_str(), dst.c_str(),
                   scratch.c_str());
    return s.str();
}

/** ShiftRows permutation: dst[r + 4c] = src[r + 4*((c +/- r) % 4)]. */
std::vector<unsigned>
shiftRowsPerm(bool inverse)
{
    std::vector<unsigned> src_of(16);
    for (unsigned r = 0; r < 4; ++r) {
        for (unsigned c = 0; c < 4; ++c) {
            unsigned from = inverse ? (c + 4 - r) % 4 : (c + r) % 4;
            src_of[r + 4 * c] = r + 4 * from;
        }
    }
    return src_of;
}

/**
 * GF-core MixColumns on a column word held in @p w, result into @p out.
 * c2/c3 hold splatted 0x02/0x03 (forward) — for the inverse the caller
 * emits four multiplies instead.  Temps t1/t2 clobbered.
 */
std::string
mixColWordGf(const std::string &out, const std::string &w,
             const std::string &c2, const std::string &c3,
             const std::string &t1, const std::string &t2)
{
    std::ostringstream s;
    s << strprintf("    gfmuls %s, %s, %s\n", out.c_str(), w.c_str(),
                   c2.c_str());
    s << rotWord(t1, w, 1, t2);
    s << strprintf("    gfmuls %s, %s, %s\n", t1.c_str(), t1.c_str(),
                   c3.c_str());
    s << strprintf("    eor  %s, %s, %s\n", out.c_str(), out.c_str(),
                   t1.c_str());
    s << rotWord(t1, w, 2, t2);
    s << strprintf("    eor  %s, %s, %s\n", out.c_str(), out.c_str(),
                   t1.c_str());
    s << rotWord(t1, w, 3, t2);
    s << strprintf("    eor  %s, %s, %s\n", out.c_str(), out.c_str(),
                   t1.c_str());
    return s.str();
}

/** GF-core InvMixColumns on word @p w into @p out; ce/cb/cd/c9 hold the
 *  splatted {0e,0b,0d,09} constants. */
std::string
invMixColWordGf(const std::string &out, const std::string &w,
                const std::string &ce, const std::string &cb,
                const std::string &cd, const std::string &c9,
                const std::string &t1, const std::string &t2)
{
    std::ostringstream s;
    s << strprintf("    gfmuls %s, %s, %s\n", out.c_str(), w.c_str(),
                   ce.c_str());
    const char *coef[3] = {cb.c_str(), cd.c_str(), c9.c_str()};
    for (unsigned k = 1; k <= 3; ++k) {
        s << rotWord(t1, w, k, t2);
        s << strprintf("    gfmuls %s, %s, %s\n", t1.c_str(), t1.c_str(),
                       coef[k - 1]);
        s << strprintf("    eor  %s, %s, %s\n", out.c_str(), out.c_str(),
                       t1.c_str());
    }
    return s.str();
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Per-kernel programs
// ---------------------------------------------------------------------

std::string
aesArkAsm()
{
    std::ostringstream s;
    s << "; AddRoundKey: four word XORs — no GF arithmetic to win on\n";
    s << "    la   r1, state\n";
    s << "    la   r2, rkeys\n";
    for (unsigned off = 0; off < 16; off += 4) {
        s << strprintf("    ldr  r3, [r1, #%u]\n", off);
        s << strprintf("    ldr  r4, [r2, #%u]\n", off);
        s << "    eor  r3, r3, r4\n";
        s << strprintf("    str  r3, [r1, #%u]\n", off);
    }
    s << "    halt\n";
    s << aesData(false);
    return s.str();
}

std::string
aesSubBytesAsmBaseline(bool inverse)
{
    std::ostringstream s;
    s << "; baseline SubBytes: 16 table lookups\n";
    s << "    la   r1, state\n";
    s << strprintf("    la   r2, %s\n", inverse ? "isbox" : "sbox");
    s << "    movi r0, #0\n";
    s << "sb_loop:\n";
    s << "    ldrb r3, [r1, r0]\n";
    s << "    ldrb r3, [r2, r3]\n";
    s << "    strb r3, [r1, r0]\n";
    s << "    addi r0, r0, #1\n";
    s << "    cmpi r0, #16\n";
    s << "    bne  sb_loop\n";
    s << "    halt\n";
    s << aesData(true);
    return s.str();
}

std::string
aesSubBytesAsmGfcore(bool inverse)
{
    // S-box = GF(2^8) inverse + a GF(2)-circulant affine map.  The
    // affine part is a single gfMult_simd under the circulant-ring
    // configuration (P_j = x^j, i.e. reduction mod x^8 + 1): the
    // forward matrix is multiplication by 0x1f, the inverse matrix by
    // 0x4a — this is what the programmable reduction matrix buys.
    std::ostringstream s;
    s << "; GF-core SubBytes: gfMultInv_simd + circulant-ring affine\n";
    s << "    la   r1, state\n";
    if (!inverse) {
        s << "    li   r2, #0x1f1f1f1f\n"; // affine circulant
        s << "    li   r3, #0x63636363\n"; // affine constant
    } else {
        s << "    li   r2, #0x4a4a4a4a\n"; // inverse affine circulant
        s << "    li   r3, #0x05050505\n";
    }
    for (unsigned i = 0; i < 4; ++i)
        s << strprintf("    ldr  r%u, [r1, #%u]\n", 4 + i, 4 * i);
    if (!inverse) {
        s << "    gfcfg cfg\n";
        for (unsigned i = 0; i < 4; ++i)
            s << strprintf("    gfinvs r%u, r%u\n", 4 + i, 4 + i);
        s << "    gfcfg ring\n";
        for (unsigned i = 0; i < 4; ++i) {
            s << strprintf("    gfmuls r%u, r%u, r2\n", 4 + i, 4 + i);
            s << strprintf("    gfadds r%u, r%u, r3\n", 4 + i, 4 + i);
        }
    } else {
        s << "    gfcfg ring\n";
        for (unsigned i = 0; i < 4; ++i) {
            s << strprintf("    gfmuls r%u, r%u, r2\n", 4 + i, 4 + i);
            s << strprintf("    gfadds r%u, r%u, r3\n", 4 + i, 4 + i);
        }
        s << "    gfcfg cfg\n";
        for (unsigned i = 0; i < 4; ++i)
            s << strprintf("    gfinvs r%u, r%u\n", 4 + i, 4 + i);
    }
    for (unsigned i = 0; i < 4; ++i)
        s << strprintf("    str  r%u, [r1, #%u]\n", 4 + i, 4 * i);
    s << "    halt\n";
    s << aesData(false);
    return s.str();
}

std::string
aesShiftRowsAsm(bool inverse)
{
    auto perm = shiftRowsPerm(inverse);
    std::ostringstream s;
    s << "; ShiftRows: pure data movement, identical on both cores\n";
    s << "    la   r1, state\n";
    s << "    la   r2, tmpst\n";
    for (unsigned off = 0; off < 16; off += 4) {
        s << strprintf("    ldr  r3, [r1, #%u]\n", off);
        s << strprintf("    str  r3, [r2, #%u]\n", off);
    }
    for (unsigned i = 0; i < 16; ++i) {
        s << strprintf("    ldrb r3, [r2, #%u]\n", perm[i]);
        s << strprintf("    strb r3, [r1, #%u]\n", i);
    }
    s << "    halt\n";
    s << aesData(false);
    return s.str();
}

std::string
aesMixColAsmBaseline(bool inverse, BaselineFlavor flavor)
{
    const bool compiled = flavor == BaselineFlavor::kCompiled;
    std::ostringstream s;

    auto xtime = [&](const std::string &x) -> std::string {
        if (!compiled)
            return xtimeInline(x, "r11", "r12");
        std::string out;
        if (x != "r9")
            out += strprintf("    mov  r9, %s\n", x.c_str());
        out += "    bl   xtime\n";
        if (x != "r9")
            out += strprintf("    mov  %s, r9\n", x.c_str());
        return out;
    };

    if (!inverse) {
        s << "; baseline MixColumns: the 02/03/01/01 xtime trick\n";
        s << "    la   r1, state\n";
        if (!compiled)
            s << "    movi r12, #0x1b\n";
        for (unsigned c = 0; c < 4; ++c) {
            s << strprintf("    ldrb r4, [r1, #%u]\n", 4 * c);
            s << strprintf("    ldrb r5, [r1, #%u]\n", 4 * c + 1);
            s << strprintf("    ldrb r6, [r1, #%u]\n", 4 * c + 2);
            s << strprintf("    ldrb r7, [r1, #%u]\n", 4 * c + 3);
            s << "    eor  r8, r4, r5\n";
            s << "    eor  r8, r8, r6\n";
            s << "    eor  r8, r8, r7\n"; // tmp = a0^a1^a2^a3
            s << "    mov  r3, r4\n";      // a0 original
            const char *a[4] = {"r4", "r5", "r6", "r7"};
            for (unsigned i = 0; i < 4; ++i) {
                const char *next = (i == 3) ? "r3" : a[i + 1];
                if (compiled) {
                    s << strprintf("    eor  r9, %s, %s\n", a[i], next);
                    s << "    bl   xtime\n";
                } else {
                    s << strprintf("    eor  r9, %s, %s\n", a[i], next);
                    s << xtime("r9");
                }
                s << "    eor  r9, r9, r8\n";
                s << strprintf("    eor  %s, %s, r9\n", a[i], a[i]);
            }
            for (unsigned i = 0; i < 4; ++i)
                s << strprintf("    strb %s, [r1, #%u]\n", a[i],
                               4 * c + i);
        }
    } else {
        s << "; baseline InvMixColumns: straightforward 0e/0b/0d/09 via\n";
        s << "; xtime chains (the paper's point: data-dependent\n";
        s << "; optimizations do not help the inverse coefficients)\n";
        s << "    la   r1, state\n";
        if (!compiled)
            s << "    movi r12, #0x1b\n";
        // Accumulate into tmpst, then copy back.
        s << "    la   r2, tmpst\n";
        s << "    movi r3, #0\n";
        for (unsigned off = 0; off < 16; off += 4)
            s << strprintf("    str  r3, [r2, #%u]\n", off);
        for (unsigned c = 0; c < 4; ++c) {
            for (unsigned i = 0; i < 4; ++i) {
                // load a_i; build x2, x4, x8.
                s << strprintf("    ldrb r4, [r1, #%u]\n", 4 * c + i);
                s << "    mov  r5, r4\n";
                s << xtime("r5"); // x2
                s << "    mov  r6, r5\n";
                s << xtime("r6"); // x4
                s << "    mov  r7, r6\n";
                s << xtime("r7"); // x8
                // contributions: out_i += 14a; out_{i-1} += 11a;
                // out_{i-2} += 13a; out_{i-3} += 9a   (rows mod 4)
                auto acc = [&](unsigned row, const std::string &val) {
                    unsigned idx = 4 * c + ((row + 4) % 4);
                    s << strprintf("    ldrb r8, [r2, #%u]\n", idx);
                    s << strprintf("    eor  r8, r8, %s\n", val.c_str());
                    s << strprintf("    strb r8, [r2, #%u]\n", idx);
                };
                s << "    eor  r10, r7, r4\n";  // 9a = x8 ^ a
                acc(i + 1, "r10");              // row i-3 == i+1 mod 4
                s << "    eor  r15, r10, r5\n"; // 11a = x8 ^ x2 ^ a
                acc(i + 3, "r15");              // row i-1
                s << "    eor  r15, r10, r6\n"; // 13a = x8 ^ x4 ^ a
                acc(i + 2, "r15");              // row i-2
                s << "    eor  r15, r5, r6\n";
                s << "    eor  r15, r15, r7\n"; // 14a = x2^x4^x8
                acc(i, "r15");
            }
        }
        for (unsigned off = 0; off < 16; off += 4) {
            s << strprintf("    ldr  r3, [r2, #%u]\n", off);
            s << strprintf("    str  r3, [r1, #%u]\n", off);
        }
    }
    s << "    halt\n";
    if (compiled)
        s << xtimeRoutine();
    s << aesData(true);
    return s.str();
}

std::string
aesMixColAsmGfcore(bool inverse)
{
    std::ostringstream s;
    s << "; GF-core Mix/InvMixColumns: gfMult_simd inner products\n";
    s << "    gfcfg cfg\n";
    s << "    la   r1, state\n";
    if (!inverse) {
        s << "    li   r2, #0x02020202\n";
        s << "    li   r3, #0x03030303\n";
    } else {
        s << "    li   r2, #0x0e0e0e0e\n";
        s << "    li   r3, #0x0b0b0b0b\n";
        s << "    li   r8, #0x0d0d0d0d\n";
        s << "    li   r12, #0x09090909\n";
    }
    for (unsigned off = 0; off < 16; off += 4) {
        s << strprintf("    ldr  r4, [r1, #%u]\n", off);
        if (!inverse)
            s << mixColWordGf("r5", "r4", "r2", "r3", "r6", "r7");
        else
            s << invMixColWordGf("r5", "r4", "r2", "r3", "r8", "r12",
                                 "r6", "r7");
        s << strprintf("    str  r5, [r1, #%u]\n", off);
    }
    s << "    halt\n";
    s << aesData(false);
    return s.str();
}

// ---------------------------------------------------------------------
// Key expansion (AES-128)
// ---------------------------------------------------------------------

namespace {

/**
 * Shared key-expansion skeleton.  @p subword_emit produces
 * "r4 = SubWord(r4)" (FIPS big-endian word), clobbering r5..r7 and, for
 * the GF core, using mask registers r8/r9/r10/r12 set up by @p prologue.
 */
std::string
keyExpandSkeleton(bool gf_core)
{
    std::ostringstream s;
    s << "; AES-128 key expansion\n";
    if (gf_core)
        s << "    gfcfg cfg\n";
    s << "    la   r1, xkey\n";
    s << "    la   r2, key\n";
    // w[0..3] from the cipher key, FIPS big-endian byte order.
    s << "    movi r0, #0\n";
    s << "kinit:\n";
    s << "    lsli r3, r0, #2\n";
    s << "    movi r4, #0\n";
    for (unsigned b = 0; b < 4; ++b) {
        s << "    ldrb r5, [r2, r3]\n";
        s << "    lsli r4, r4, #8\n";
        s << "    orr  r4, r4, r5\n";
        if (b < 3)
            s << "    addi r3, r3, #1\n";
    }
    s << "    lsli r3, r0, #2\n";
    s << "    str  r4, [r1, r3]\n";
    s << "    addi r0, r0, #1\n";
    s << "    cmpi r0, #4\n";
    s << "    bne  kinit\n";

    if (gf_core) {
        s << "    li   r8, #0x1f1f1f1f\n"; // affine circulant
        s << "    li   r9, #0x63636363\n"; // affine constant
    } else {
        s << "    la   r12, sbox\n";
    }

    s << "    movi r0, #4\n";
    s << "kloop:\n";
    s << "    lsli r2, r0, #2\n";
    s << "    subi r3, r2, #4\n";
    s << "    ldr  r4, [r1, r3]\n";   // w[i-1]
    s << "    andi r3, r0, #3\n";
    s << "    cmpi r3, #0\n";
    s << "    bne  no_g\n";
    // RotWord
    s << "    lsli r5, r4, #8\n";
    s << "    lsri r6, r4, #24\n";
    s << "    orr  r4, r5, r6\n";
    // SubWord
    if (gf_core) {
        s << "    gfinvs r4, r4\n";
        s << "    gfcfg ring\n";
        s << "    gfmuls r4, r4, r8\n";
        s << "    gfadds r4, r4, r9\n";
        s << "    gfcfg cfg\n";
    } else {
        s << "    movi r6, #0\n";
        for (unsigned b = 0; b < 4; ++b) {
            s << strprintf("    lsri r5, r4, #%u\n", 8 * b);
            s << "    andi r5, r5, #0xff\n";
            s << "    ldrb r5, [r12, r5]\n";
            if (b)
                s << strprintf("    lsli r5, r5, #%u\n", 8 * b);
            s << "    orr  r6, r6, r5\n";
        }
        s << "    mov  r4, r6\n";
    }
    // rcon[i/4 - 1] into the top byte
    s << "    la   r5, rcon\n";
    s << "    lsri r6, r0, #2\n";
    s << "    subi r6, r6, #1\n";
    s << "    ldrb r6, [r5, r6]\n";
    s << "    lsli r6, r6, #24\n";
    s << "    eor  r4, r4, r6\n";
    s << "no_g:\n";
    s << "    subi r3, r2, #16\n";
    s << "    ldr  r5, [r1, r3]\n";   // w[i-4]
    s << "    eor  r4, r4, r5\n";
    s << "    str  r4, [r1, r2]\n";
    s << "    addi r0, r0, #1\n";
    s << "    cmpi r0, #44\n";
    s << "    bne  kloop\n";
    s << "    halt\n";
    return s.str();
}

} // anonymous namespace

std::string
aesKeyExpandAsmBaseline()
{
    return keyExpandSkeleton(false) + aesData(true);
}

std::string
aesKeyExpandAsmGfcore()
{
    return keyExpandSkeleton(true) + aesData(false);
}

// ---------------------------------------------------------------------
// Full-block encryption / decryption
// ---------------------------------------------------------------------

std::string
aesBlockAsmBaseline(bool decrypt, unsigned rounds)
{
    GFP_ASSERT(rounds == 10 || rounds == 12 || rounds == 14);
    // Memory-resident state, classic optimized-C structure, one
    // round loop.  The kernel bodies are the per-kernel code above.
    std::ostringstream s;
    auto subBytes = [&](bool inv, const std::string &tag) {
        std::ostringstream k;
        k << strprintf("    la   r2, %s\n", inv ? "isbox" : "sbox");
        k << "    movi r3, #0\n";
        k << strprintf("sb_%s:\n", tag.c_str());
        k << "    ldrb r4, [r1, r3]\n";
        k << "    ldrb r4, [r2, r4]\n";
        k << "    strb r4, [r1, r3]\n";
        k << "    addi r3, r3, #1\n";
        k << "    cmpi r3, #16\n";
        k << strprintf("    bne  sb_%s\n", tag.c_str());
        return k.str();
    };
    auto shiftRows = [&](bool inv) {
        auto perm = shiftRowsPerm(inv);
        std::ostringstream k;
        k << "    la   r2, tmpst\n";
        for (unsigned off = 0; off < 16; off += 4) {
            k << strprintf("    ldr  r3, [r1, #%u]\n", off);
            k << strprintf("    str  r3, [r2, #%u]\n", off);
        }
        for (unsigned i = 0; i < 16; ++i) {
            k << strprintf("    ldrb r3, [r2, #%u]\n", perm[i]);
            k << strprintf("    strb r3, [r1, #%u]\n", i);
        }
        return k.str();
    };
    auto ark = [&]() {
        // rkey pointer in lr, advanced by the caller.
        std::ostringstream k;
        for (unsigned off = 0; off < 16; off += 4) {
            k << strprintf("    ldr  r3, [r1, #%u]\n", off);
            k << strprintf("    ldr  r4, [lr, #%u]\n", off);
            k << "    eor  r3, r3, r4\n";
            k << strprintf("    str  r3, [r1, #%u]\n", off);
        }
        return k.str();
    };
    auto mixCol = [&]() {
        std::ostringstream k;
        k << "    movi r12, #0x1b\n";
        for (unsigned c = 0; c < 4; ++c) {
            k << strprintf("    ldrb r4, [r1, #%u]\n", 4 * c);
            k << strprintf("    ldrb r5, [r1, #%u]\n", 4 * c + 1);
            k << strprintf("    ldrb r6, [r1, #%u]\n", 4 * c + 2);
            k << strprintf("    ldrb r7, [r1, #%u]\n", 4 * c + 3);
            k << "    eor  r8, r4, r5\n";
            k << "    eor  r8, r8, r6\n";
            k << "    eor  r8, r8, r7\n";
            k << "    mov  r3, r4\n";
            const char *a[4] = {"r4", "r5", "r6", "r7"};
            for (unsigned i = 0; i < 4; ++i) {
                const char *next = (i == 3) ? "r3" : a[i + 1];
                k << strprintf("    eor  r9, %s, %s\n", a[i], next);
                k << xtimeInline("r9", "r11", "r12");
                k << "    eor  r9, r9, r8\n";
                k << strprintf("    eor  %s, %s, r9\n", a[i], a[i]);
            }
            for (unsigned i = 0; i < 4; ++i)
                k << strprintf("    strb %s, [r1, #%u]\n", a[i], 4 * c + i);
        }
        return k.str();
    };
    auto invMixCol = [&]() {
        std::ostringstream k;
        k << "    movi r12, #0x1b\n";
        k << "    la   r2, tmpst\n";
        k << "    movi r3, #0\n";
        for (unsigned off = 0; off < 16; off += 4)
            k << strprintf("    str  r3, [r2, #%u]\n", off);
        for (unsigned c = 0; c < 4; ++c) {
            for (unsigned i = 0; i < 4; ++i) {
                k << strprintf("    ldrb r4, [r1, #%u]\n", 4 * c + i);
                k << "    mov  r5, r4\n";
                k << xtimeInline("r5", "r11", "r12");
                k << "    mov  r6, r5\n";
                k << xtimeInline("r6", "r11", "r12");
                k << "    mov  r7, r6\n";
                k << xtimeInline("r7", "r11", "r12");
                auto acc = [&](unsigned row, const std::string &val) {
                    unsigned idx = 4 * c + ((row + 4) % 4);
                    k << strprintf("    ldrb r8, [r2, #%u]\n", idx);
                    k << strprintf("    eor  r8, r8, %s\n", val.c_str());
                    k << strprintf("    strb r8, [r2, #%u]\n", idx);
                };
                k << "    eor  r10, r7, r4\n";
                acc(i + 1, "r10");
                k << "    eor  r15, r10, r5\n";
                acc(i + 3, "r15");
                k << "    eor  r15, r10, r6\n";
                acc(i + 2, "r15");
                k << "    eor  r15, r5, r6\n";
                k << "    eor  r15, r15, r7\n";
                acc(i, "r15");
            }
        }
        for (unsigned off = 0; off < 16; off += 4) {
            k << strprintf("    ldr  r3, [r2, #%u]\n", off);
            k << strprintf("    str  r3, [r1, #%u]\n", off);
        }
        return k.str();
    };

    s << strprintf("; baseline AES (%u rounds) %s, memory-resident "
                   "state\n", rounds, decrypt ? "decrypt" : "encrypt");
    s << "    la   r1, state\n";
    if (!decrypt) {
        s << "    la   lr, rkeys\n";
        s << ark();
        s << "    movi r0, #1\n";
        s << "round_loop:\n";
        s << "    addi lr, lr, #16\n";
        s << subBytes(false, "r");
        s << shiftRows(false);
        s << mixCol();
        s << ark();
        s << "    addi r0, r0, #1\n";
        s << strprintf("    cmpi r0, #%u\n", rounds);
        s << "    bne  round_loop\n";
        s << "    addi lr, lr, #16\n";
        s << subBytes(false, "f");
        s << shiftRows(false);
        s << ark();
    } else {
        s << "    la   lr, rkeys\n";
        s << strprintf("    addi lr, lr, #%u\n", 16 * rounds);
        s << ark();
        s << strprintf("    movi r0, #%u\n", rounds - 1);
        s << "round_loop:\n";
        s << "    subi lr, lr, #16\n";
        s << shiftRows(true);
        s << subBytes(true, "r");
        s << ark();
        s << invMixCol();
        s << "    subi r0, r0, #1\n";
        s << "    cmpi r0, #0\n";
        s << "    bne  round_loop\n";
        s << "    subi lr, lr, #16\n";
        s << shiftRows(true);
        s << subBytes(true, "f");
        s << ark();
    }
    s << "    halt\n";
    s << aesData(true);
    return s.str();
}

std::string
aesBlockAsmGfcore(bool decrypt, unsigned rounds)
{
    GFP_ASSERT(rounds == 10 || rounds == 12 || rounds == 14);
    // State lives in r4..r7 (column words) across the whole block.
    std::ostringstream s;

    auto loadState = [&]() {
        std::ostringstream k;
        k << "    la   r2, state\n";
        for (unsigned i = 0; i < 4; ++i)
            k << strprintf("    ldr  r%u, [r2, #%u]\n", 4 + i, 4 * i);
        return k.str();
    };
    auto storeState = [&]() {
        std::ostringstream k;
        k << "    la   r2, state\n";
        for (unsigned i = 0; i < 4; ++i)
            k << strprintf("    str  r%u, [r2, #%u]\n", 4 + i, 4 * i);
        return k.str();
    };
    auto ark = [&]() {
        std::ostringstream k;
        for (unsigned i = 0; i < 4; ++i) {
            k << strprintf("    ldr  r8, [r1, #%u]\n", 4 * i);
            k << strprintf("    eor  r%u, r%u, r8\n", 4 + i, 4 + i);
        }
        return k.str();
    };
    auto shiftRowsRegs = [&](bool inv) {
        std::ostringstream k;
        k << "    movi r2, #0xff00\n";
        k << "    li   r3, #0xff0000\n";
        const char *w[4] = {"r4", "r5", "r6", "r7"};
        const char *out[4] = {"r8", "r9", "r10", "r11"};
        for (unsigned c = 0; c < 4; ++c) {
            auto src = [&](unsigned r) {
                unsigned from = inv ? (c + 4 - r) % 4 : (c + r) % 4;
                return w[from];
            };
            // byte 0
            k << strprintf("    andi %s, %s, #0xff\n", out[c], src(0));
            // byte 1
            k << strprintf("    and  r12, %s, r2\n", src(1));
            k << strprintf("    orr  %s, %s, r12\n", out[c], out[c]);
            // byte 2
            k << strprintf("    and  r12, %s, r3\n", src(2));
            k << strprintf("    orr  %s, %s, r12\n", out[c], out[c]);
            // byte 3
            k << strprintf("    lsri r12, %s, #24\n", src(3));
            k << "    lsli r12, r12, #24\n";
            k << strprintf("    orr  %s, %s, r12\n", out[c], out[c]);
        }
        for (unsigned c = 0; c < 4; ++c)
            k << strprintf("    mov  %s, %s\n", w[c], out[c]);
        return k.str();
    };
    auto subBytesRegs = [&](bool inv) {
        // Field inverse under cfg, then the circulant affine as one
        // gfmuls + gfadds under the ring configuration (see
        // aesSubBytesAsmGfcore).  Entered with cfg active; leaves cfg
        // active again.
        std::ostringstream k;
        if (!inv) {
            k << "    li   r2, #0x1f1f1f1f\n";
            k << "    li   r3, #0x63636363\n";
            for (unsigned i = 0; i < 4; ++i)
                k << strprintf("    gfinvs r%u, r%u\n", 4 + i, 4 + i);
            k << "    gfcfg ring\n";
            for (unsigned i = 0; i < 4; ++i) {
                k << strprintf("    gfmuls r%u, r%u, r2\n", 4 + i,
                               4 + i);
                k << strprintf("    gfadds r%u, r%u, r3\n", 4 + i,
                               4 + i);
            }
            k << "    gfcfg cfg\n";
        } else {
            k << "    li   r2, #0x4a4a4a4a\n";
            k << "    li   r3, #0x05050505\n";
            k << "    gfcfg ring\n";
            for (unsigned i = 0; i < 4; ++i) {
                k << strprintf("    gfmuls r%u, r%u, r2\n", 4 + i,
                               4 + i);
                k << strprintf("    gfadds r%u, r%u, r3\n", 4 + i,
                               4 + i);
            }
            k << "    gfcfg cfg\n";
            for (unsigned i = 0; i < 4; ++i)
                k << strprintf("    gfinvs r%u, r%u\n", 4 + i, 4 + i);
        }
        return k.str();
    };
    auto mixColRegs = [&]() {
        std::ostringstream k;
        k << "    li   r2, #0x02020202\n";
        k << "    li   r3, #0x03030303\n";
        for (unsigned i = 0; i < 4; ++i) {
            std::string x = strprintf("r%u", 4 + i);
            k << mixColWordGf("r8", x, "r2", "r3", "r9", "r10");
            k << strprintf("    mov  %s, r8\n", x.c_str());
        }
        return k.str();
    };
    auto invMixColRegs = [&]() {
        std::ostringstream k;
        k << "    li   r2, #0x0e0e0e0e\n";
        k << "    li   r3, #0x0b0b0b0b\n";
        k << "    li   r11, #0x0d0d0d0d\n";
        k << "    li   r12, #0x09090909\n";
        for (unsigned i = 0; i < 4; ++i) {
            std::string x = strprintf("r%u", 4 + i);
            k << invMixColWordGf("r8", x, "r2", "r3", "r11", "r12", "r9",
                                 "r10");
            k << strprintf("    mov  %s, r8\n", x.c_str());
        }
        return k.str();
    };

    s << strprintf("; GF-core AES (%u rounds) %s, register-resident "
                   "state\n", rounds, decrypt ? "decrypt" : "encrypt");
    s << "    gfcfg cfg\n";
    s << "    la   r1, rkeys\n";
    s << loadState();
    if (!decrypt) {
        s << ark();
        s << "    movi r0, #1\n";
        s << "round_loop:\n";
        s << "    addi r1, r1, #16\n";
        // SubBytes and ShiftRows commute; doing ShiftRows first keeps
        // the register juggling simple.
        s << shiftRowsRegs(false);
        s << subBytesRegs(false);
        s << mixColRegs();
        s << ark();
        s << "    addi r0, r0, #1\n";
        s << strprintf("    cmpi r0, #%u\n", rounds);
        s << "    bne  round_loop\n";
        s << "    addi r1, r1, #16\n";
        s << shiftRowsRegs(false);
        s << subBytesRegs(false);
        s << ark();
    } else {
        s << strprintf("    addi r1, r1, #%u\n", 16 * rounds);
        s << ark();
        s << strprintf("    movi r0, #%u\n", rounds - 1);
        s << "round_loop:\n";
        s << "    subi r1, r1, #16\n";
        s << shiftRowsRegs(true);
        s << subBytesRegs(true);
        s << ark();
        s << invMixColRegs();
        s << "    subi r0, r0, #1\n";
        s << "    cmpi r0, #0\n";
        s << "    bne  round_loop\n";
        s << "    subi r1, r1, #16\n";
        s << shiftRowsRegs(true);
        s << subBytesRegs(true);
        s << ark();
    }
    s << storeState();
    s << "    halt\n";
    s << aesData(false);
    return s.str();
}

} // namespace gfp
