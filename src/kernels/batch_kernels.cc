#include "kernels/batch_kernels.h"

#include "common/logging.h"
#include "isa/assembler.h"
#include "kernels/aes_kernels.h"
#include "kernels/coding_kernels.h"

namespace gfp {

BatchProgram
syndromeBatchProgram(const GFField &field, unsigned n, unsigned two_t)
{
    return {Assembler::assemble(syndromeAsmGfcore(field, n, two_t)),
            CoreKind::kGfProcessor};
}

Job
syndromeJob(const std::vector<GFElem> &received, unsigned two_t)
{
    Job job;
    job.inputs.emplace_back(
        "rxdata", std::vector<uint8_t>(received.begin(), received.end()));
    job.outputs.emplace_back("synd", two_t);
    return job;
}

BatchProgram
bmaBatchProgram(const GFField &field, unsigned two_t)
{
    return {Assembler::assemble(bmaAsmGfcore(field, two_t)),
            CoreKind::kGfProcessor};
}

Job
bmaJob(const std::vector<uint8_t> &synd)
{
    Job job;
    job.inputs.emplace_back("synd", synd);
    job.outputs.emplace_back("lambda", 12);
    job.word_outputs.push_back("llen");
    return job;
}

BatchProgram
chienBatchProgram(const GFField &field, unsigned n, unsigned t)
{
    return {Assembler::assemble(chienAsmGfcore(field, n, t)),
            CoreKind::kGfProcessor};
}

Job
chienJob(const std::vector<uint8_t> &lambda)
{
    Job job;
    job.inputs.emplace_back("lambda", lambda);
    job.outputs.emplace_back("locs", 12);
    job.word_outputs.push_back("nloc");
    return job;
}

BatchProgram
forneyBatchProgram(const GFField &field, unsigned two_t)
{
    return {Assembler::assemble(forneyAsmGfcore(field, two_t)),
            CoreKind::kGfProcessor};
}

Job
forneyJob(const std::vector<uint8_t> &synd,
          const std::vector<uint8_t> &lambda,
          const std::vector<uint8_t> &locs, uint32_t nloc)
{
    Job job;
    job.inputs.emplace_back("synd", synd);
    job.inputs.emplace_back("lambda", lambda);
    job.inputs.emplace_back("locs", locs);
    job.word_inputs.emplace_back("nloc", nloc);
    job.outputs.emplace_back("evals", 12);
    return job;
}

BatchProgram
aesBlockBatchProgram(unsigned rounds)
{
    return {Assembler::assemble(aesBlockAsmGfcore(false, rounds)),
            CoreKind::kGfProcessor};
}

std::vector<Job>
aesCtrJobs(const Aes &aes, const AesBlock &iv, size_t data_len)
{
    std::vector<uint8_t> rkeys;
    rkeys.reserve(4 * aes.roundKeys().size());
    for (uint32_t word : aes.roundKeys())
        for (int b = 3; b >= 0; --b)
            rkeys.push_back(static_cast<uint8_t>(word >> (8 * b)));

    std::vector<Job> jobs;
    AesBlock counter = iv;
    for (size_t off = 0; off < data_len; off += 16) {
        Job job;
        job.inputs.emplace_back("rkeys", rkeys);
        job.inputs.emplace_back(
            "state", std::vector<uint8_t>(counter.begin(), counter.end()));
        job.outputs.emplace_back("state", 16);
        jobs.push_back(std::move(job));
        // Big-endian increment, matching Aes::applyCtr.
        for (int i = 15; i >= 0; --i)
            if (++counter[i] != 0)
                break;
    }
    return jobs;
}

std::vector<uint8_t>
aesCtrApply(const std::vector<JobResult> &results,
            const std::vector<uint8_t> &data)
{
    if (16 * results.size() < data.size())
        GFP_FATAL("CTR batch of %zu blocks cannot cover %zu bytes",
                  results.size(), data.size());
    std::vector<uint8_t> out(data.size());
    for (size_t off = 0; off < data.size(); off += 16) {
        const JobResult &r = results[off / 16];
        if (!r.ok())
            GFP_FATAL("CTR block %zu trapped: %s", off / 16,
                      r.trap.describe().c_str());
        const std::vector<uint8_t> &keystream = r.bytes("state");
        size_t chunk = std::min<size_t>(16, data.size() - off);
        for (size_t i = 0; i < chunk; ++i)
            out[off + i] = data[off + i] ^ keystream[i];
    }
    return out;
}

} // namespace gfp
