#include "kernels/coding_kernels.h"

#include <sstream>

#include "common/bitops.h"
#include "common/logging.h"
#include "common/strutil.h"
#include "kernels/kernellib.h"

namespace gfp {

namespace {

/** Common data block shared by the decoder kernels. */
std::string
decoderData(const GFField &field, unsigned n, unsigned two_t,
            bool baseline)
{
    std::ostringstream d;
    d << ".data\n";
    d << gfConfigData("cfg", field);
    d << spaceData("rxdata", n);
    d << spaceData("synd", two_t);
    d << spaceData("lambda", 12);  // t+1 <= 9, zero-padded for word loads
    d << spaceData("llen", 4);
    d << spaceData("locs", 12);    // t <= 8, padded for word loads
    d << spaceData("nloc", 4);
    d << spaceData("evals", 12);
    d << spaceData("barr", 12);    // BMA: B polynomial
    d << spaceData("tbuf", 12);    // BMA: temporary copy
    d << spaceData("omega", 16);   // Forney: error evaluator, 2t <= 16
    d << spaceData("spad", 28);    // Forney: zero-padded syndrome copy
    if (baseline)
        d << logDomainTables("gf", field);
    return d.str();
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Syndrome computation
// ---------------------------------------------------------------------

std::string
syndromeAsmBaseline(const GFField &field, unsigned n, unsigned two_t,
                    BaselineFlavor flavor)
{
    GFP_ASSERT(two_t >= 1 && two_t <= 16 && n <= field.groupOrder());
    const unsigned group = field.groupOrder();
    const bool compiled = flavor == BaselineFlavor::kCompiled;

    std::ostringstream s;
    s << "; baseline syndrome kernel: log-domain Horner (Table 6 left)\n";
    s << "    la   r1, rxdata\n";
    s << "    la   r2, synd\n";
    s << "    la   r5, gf_log\n";
    s << "    la   r6, gf_alog\n";
    // One fully-unrolled block per syndrome: the multiplicative
    // constant alpha^j is baked into each block, as hand-optimized
    // code would do.
    for (unsigned j = 1; j <= two_t; ++j) {
        std::string tag = strprintf("s%u", j);
        s << "    movi r4, #0\n";
        s << strprintf("    movi r8, #%u\n", n);
        s << strprintf("in_%s:\n", tag.c_str());
        s << "    subi r8, r8, #1\n";
        if (compiled) {
            s << compiledMulConstCall("r4",
                                      static_cast<uint8_t>(field.exp(j)));
        } else {
            s << baselineMulAccSnippet("r4", j, "r5", "r6", "r9", group,
                                       tag);
        }
        s << "    ldrb r10, [r1, r8]\n";
        s << "    eor  r4, r4, r10\n";
        s << "    cmpi r8, #0\n";
        s << strprintf("    bne  in_%s\n", tag.c_str());
        s << strprintf("    strb r4, [r2, #%u]\n", j - 1);
    }
    s << "    halt\n";
    if (compiled)
        s << gfHelperRoutines(group);
    s << decoderData(field, n, two_t, true);
    return s.str();
}

std::string
syndromeAsmGfcore(const GFField &field, unsigned n, unsigned two_t)
{
    GFP_ASSERT(two_t >= 1 && two_t <= 16 && n <= field.groupOrder());
    const unsigned full_groups = two_t / 4;
    const unsigned tail = two_t % 4;

    // Packed multiplier words [alpha^(4g+1) .. alpha^(4g+4)].
    std::vector<uint32_t> alpha_words;
    for (unsigned g = 0; g * 4 < two_t; ++g)
        alpha_words.push_back(packedAlphaWord(field, 4 * g + 1));

    std::ostringstream s;
    s << "; GF-core syndrome kernel: 4 syndromes per SIMD pass\n";
    s << "    gfcfg cfg\n";
    s << "    la   r1, rxdata\n";
    s << "    la   r2, synd\n";
    s << "    la   r3, alphas\n";
    s << "    li   r4, #0x01010101\n"; // byte-splat multiplier
    if (full_groups) {
        s << "    movi r5, #0\n"; // group index
        s << "outer:\n";
        s << "    lsli r6, r5, #2\n";
        s << "    ldr  r6, [r3, r6]\n"; // multiplier word
        s << "    movi r7, #0\n";       // 4 accumulating syndromes
        s << strprintf("    movi r8, #%u\n", n);
        s << "inner:\n";
        s << "    subi r8, r8, #1\n";
        s << "    gfmuls r7, r7, r6\n";   // S *= [alpha^j..alpha^(j+3)]
        s << "    ldrb r9, [r1, r8]\n";
        s << "    mul  r9, r9, r4\n";     // splat received symbol
        s << "    gfadds r7, r7, r9\n";   // S ^= R_i
        s << "    cmpi r8, #0\n";
        s << "    bne  inner\n";
        s << "    lsli r9, r5, #2\n";
        s << "    str  r7, [r2, r9]\n";   // 4 syndromes at once
        s << "    addi r5, r5, #1\n";
        s << strprintf("    cmpi r5, #%u\n", full_groups);
        s << "    bne  outer\n";
    }
    if (tail) {
        // Partial final group: the paper notes BCH t=5 "looses two
        // lanes in the last round" — same effect here.
        s << "    la   r6, alphas\n";
        s << strprintf("    ldr  r6, [r6, #%u]\n", 4 * full_groups);
        s << "    movi r7, #0\n";
        s << strprintf("    movi r8, #%u\n", n);
        s << "tinner:\n";
        s << "    subi r8, r8, #1\n";
        s << "    gfmuls r7, r7, r6\n";
        s << "    ldrb r9, [r1, r8]\n";
        s << "    mul  r9, r9, r4\n";
        s << "    gfadds r7, r7, r9\n";
        s << "    cmpi r8, #0\n";
        s << "    bne  tinner\n";
        for (unsigned l = 0; l < tail; ++l) {
            s << strprintf("    strb r7, [r2, #%u]\n", 4 * full_groups + l);
            if (l + 1 < tail)
                s << "    lsri r7, r7, #8\n";
        }
    }
    s << "    halt\n";
    s << decoderData(field, n, two_t, false);
    s << wordTableData("alphas", alpha_words);
    return s.str();
}

// ---------------------------------------------------------------------
// Berlekamp-Massey
// ---------------------------------------------------------------------

namespace {

/**
 * Shared BMA skeleton; the two cores differ only in how a
 * variable-by-variable GF multiply and the d/b division are computed.
 *
 * Register map:
 *   r0 = n (outer index)    r1 = L          r2 = m (gap)
 *   r3 = b (last nonzero discrepancy)       r4 = d (discrepancy)
 *   r5 = &synd   r6 = &lambda (C)   r7 = &barr (B)   r8 = inner index
 *   r9, r10, r15 = temps    r11 = coef
 *   r12 = &log, lr = &alog (baseline only)
 */
std::string
bmaSkeleton(const GFField &field, unsigned two_t, bool baseline,
            BaselineFlavor flavor)
{
    GFP_ASSERT(two_t >= 2 && two_t <= 16 && two_t % 2 == 0);
    const unsigned t = two_t / 2;
    const unsigned group = field.groupOrder();
    const bool compiled = baseline && flavor == BaselineFlavor::kCompiled;
    std::ostringstream s;

    // rd = coef(r11) * B-coef in rb; scratches r4 (d is dead) + r15.
    auto mulCoef = [&](const std::string &rd, const std::string &rb,
                       const std::string &tag) {
        if (compiled)
            return compiledMulCall(rd, rb, "r11");
        if (baseline) {
            return baselineMulSnippet(rd, "r11", rb, "r12", "lr", "r4",
                                      "r15", group, tag);
        }
        return strprintf("    gfmuls %s, r11, %s\n", rd.c_str(),
                         rb.c_str());
    };

    s << "; Berlekamp-Massey kernel\n";
    if (!baseline)
        s << "    gfcfg cfg\n";
    s << "    la   r5, synd\n";
    s << "    la   r6, lambda\n";
    s << "    la   r7, barr\n";
    if (baseline && !compiled) {
        s << "    la   r12, gf_log\n";
        s << "    la   lr, gf_alog\n";
    }
    // init: C = B = 1 (arrays fully zeroed first so the kernel is
    // re-runnable); L = 0; m = 1; b = 1
    s << "    movi r8, #0\n";
    s << "    movi r9, #0\n";
    s << "zinit:\n";
    s << "    strb r9, [r6, r8]\n";
    s << "    strb r9, [r7, r8]\n";
    s << "    addi r8, r8, #1\n";
    s << "    cmpi r8, #12\n";
    s << "    bne  zinit\n";
    s << "    movi r8, #1\n";
    s << "    strb r8, [r6]\n";
    s << "    strb r8, [r7]\n";
    s << "    movi r1, #0\n";
    s << "    movi r2, #1\n";
    s << "    movi r3, #1\n";
    s << "    movi r0, #0\n";

    s << "bma_loop:\n";
    // d = S[n] ^ sum_{i=1..L} C[i] * S[n-i]
    s << "    ldrb r4, [r5, r0]\n";
    s << "    movi r8, #1\n";
    s << "disc_loop:\n";
    s << "    cmp  r8, r1\n";
    s << "    bhi  disc_done\n";
    s << "    ldrb r9, [r6, r8]\n";   // C[i]
    s << "    sub  r10, r0, r8\n";
    s << "    ldrb r10, [r5, r10]\n"; // S[n-i]
    if (compiled) {
        s << compiledMulCall("r9", "r9", "r10");
    } else if (baseline) {
        s << baselineMulSnippet("r9", "r9", "r10", "r12", "lr", "r11",
                                "r15", group, "disc");
    } else {
        s << "    gfmuls r9, r9, r10\n";
    }
    s << "    eor  r4, r4, r9\n";
    s << "    addi r8, r8, #1\n";
    s << "    b    disc_loop\n";
    s << "disc_done:\n";

    s << "    cmpi r4, #0\n";
    s << "    bne  d_nonzero\n";
    s << "    addi r2, r2, #1\n";     // m++
    s << "    b    bma_next\n";

    s << "d_nonzero:\n";
    // coef = d / b  (both nonzero)
    if (compiled) {
        s << compiledDivCall("r11", "r4", "r3");
    } else if (baseline) {
        s << "    ldrb r9, [r12, r4]\n";   // log d
        s << "    ldrb r10, [r12, r3]\n";  // log b
        s << strprintf("    addi r9, r9, #%u\n", group);
        s << "    sub  r9, r9, r10\n";
        s << strprintf("    cmpi r9, #%u\n", group);
        s << "    blo  div_ok\n";
        s << strprintf("    subi r9, r9, #%u\n", group);
        s << "div_ok:\n";
        s << "    ldrb r11, [lr, r9]\n";
    } else {
        s << "    gfinvs r11, r3\n";
        s << "    gfmuls r11, r4, r11\n";
    }

    // if (2L <= n) take the length-change branch.
    s << "    lsli r9, r1, #1\n";
    s << "    cmp  r9, r0\n";
    s << "    bhi  no_lenchange\n";

    // -- length change --
    // b's old value is consumed (coef); commit b = d now so r4 becomes
    // scratch for the update loops.
    s << "    mov  r3, r4\n";
    // T = C  (t+1 bytes)
    s << "    la   r15, tbuf\n";
    s << "    movi r8, #0\n";
    s << "copy1:\n";
    s << "    ldrb r9, [r6, r8]\n";
    s << "    strb r9, [r15, r8]\n";
    s << "    addi r8, r8, #1\n";
    s << strprintf("    cmpi r8, #%u\n", t + 1);
    s << "    bne  copy1\n";
    // C[i+m] ^= coef * B[i] for i + m <= t
    s << "    movi r8, #0\n";
    s << "upd1:\n";
    s << "    add  r10, r8, r2\n";
    s << strprintf("    cmpi r10, #%u\n", t);
    s << "    bhi  upd1_done\n";
    s << "    ldrb r9, [r7, r8]\n";    // B[i]
    s << mulCoef("r9", "r9", "u1");
    s << "    add  r10, r8, r2\n";
    s << "    ldrb r4, [r6, r10]\n";
    s << "    eor  r9, r9, r4\n";
    s << "    strb r9, [r6, r10]\n";
    s << "    addi r8, r8, #1\n";
    s << "    b    upd1\n";
    s << "upd1_done:\n";
    // L = n + 1 - L
    s << "    addi r9, r0, #1\n";
    s << "    sub  r1, r9, r1\n";
    // B = T
    s << "    la   r15, tbuf\n";
    s << "    movi r8, #0\n";
    s << "copy2:\n";
    s << "    ldrb r9, [r15, r8]\n";
    s << "    strb r9, [r7, r8]\n";
    s << "    addi r8, r8, #1\n";
    s << strprintf("    cmpi r8, #%u\n", t + 1);
    s << "    bne  copy2\n";
    s << "    movi r2, #1\n";          // m = 1
    s << "    b    bma_next\n";

    s << "no_lenchange:\n";
    // C[i+m] ^= coef * B[i]; m++  (b and L unchanged)
    s << "    movi r8, #0\n";
    s << "upd2:\n";
    s << "    add  r10, r8, r2\n";
    s << strprintf("    cmpi r10, #%u\n", t);
    s << "    bhi  upd2_done\n";
    s << "    ldrb r9, [r7, r8]\n";
    s << mulCoef("r9", "r9", "u2");
    s << "    add  r10, r8, r2\n";
    s << "    ldrb r4, [r6, r10]\n";
    s << "    eor  r9, r9, r4\n";
    s << "    strb r9, [r6, r10]\n";
    s << "    addi r8, r8, #1\n";
    s << "    b    upd2\n";
    s << "upd2_done:\n";
    s << "    addi r2, r2, #1\n";

    s << "bma_next:\n";
    s << "    addi r0, r0, #1\n";
    s << strprintf("    cmpi r0, #%u\n", two_t);
    s << "    bne  bma_loop\n";
    s << "    la   r9, llen\n";
    s << "    str  r1, [r9]\n";
    s << "    halt\n";
    if (compiled)
        s << gfHelperRoutines(group);
    return s.str();
}

} // anonymous namespace

std::string
bmaAsmBaseline(const GFField &field, unsigned two_t,
               BaselineFlavor flavor)
{
    return bmaSkeleton(field, two_t, true, flavor) +
           decoderData(field, field.groupOrder(), two_t, true);
}

std::string
bmaAsmGfcore(const GFField &field, unsigned two_t)
{
    return bmaSkeleton(field, two_t, false,
                       BaselineFlavor::kHandOptimized) +
           decoderData(field, field.groupOrder(), two_t, false);
}

// ---------------------------------------------------------------------
// Chien search
// ---------------------------------------------------------------------

std::string
chienAsmBaseline(const GFField &field, unsigned n, unsigned t,
                 BaselineFlavor flavor)
{
    GFP_ASSERT(t >= 1 && t <= 8 && n <= field.groupOrder());
    const unsigned group = field.groupOrder();

    if (flavor == BaselineFlavor::kCompiled) {
        // Compiled-code shape: locator terms live in a memory array and
        // every step multiply is a gfmul helper call.
        std::vector<uint8_t> stepc(t);
        for (unsigned j = 1; j <= t; ++j)
            stepc[j - 1] = static_cast<uint8_t>(field.exp(group - j));

        std::ostringstream s;
        s << "; baseline Chien search (compiled shape)\n";
        s << "    la   r3, qterm\n";
        s << "    la   r12, lambda\n";
        s << "    movi r8, #0\n";
        s << "qinit:\n";
        s << "    addi r9, r8, #1\n";
        s << "    ldrb r9, [r12, r9]\n";
        s << "    strb r9, [r3, r8]\n";
        s << "    addi r8, r8, #1\n";
        s << strprintf("    cmpi r8, #%u\n", t);
        s << "    bne  qinit\n";
        s << "    la   r2, locs\n";
        s << "    movi r0, #0\n";
        s << "chien_loop:\n";
        s << "    ldrb r1, [r12, #0]\n";
        s << "    movi r8, #0\n";
        s << "jloop:\n";
        s << "    ldrb r9, [r3, r8]\n";
        s << "    eor  r1, r1, r9\n";      // accumulate pre-step term
        s << "    la   r4, stepc\n";
        s << "    ldrb r10, [r4, r8]\n";
        s << "    bl   gfmul\n";
        s << "    strb r9, [r3, r8]\n";     // step for the next position
        s << "    addi r8, r8, #1\n";
        s << strprintf("    cmpi r8, #%u\n", t);
        s << "    bne  jloop\n";
        s << "    cmpi r1, #0\n";
        s << "    bne  no_root\n";
        s << "    strb r0, [r2]\n";
        s << "    addi r2, r2, #1\n";
        s << "no_root:\n";
        s << "    addi r0, r0, #1\n";
        s << strprintf("    cmpi r0, #%u\n", n);
        s << "    bne  chien_loop\n";
        s << "    la   r3, locs\n";
        s << "    sub  r3, r2, r3\n";
        s << "    la   r4, nloc\n";
        s << "    str  r3, [r4]\n";
        s << "    halt\n";
        s << gfHelperRoutines(group);
        s << decoderData(field, n, 2 * t, true);
        s << spaceData("qterm", 8);
        s << byteTableData("stepc", stepc);
        return s.str();
    }

    // Q_j registers r4..r4+t-1 hold Lambda_j * alpha^(-i*j).
    std::ostringstream s;
    s << "; baseline Chien search: per-position polynomial evaluation\n";
    s << "    la   r2, gf_log\n";
    s << "    la   r3, gf_alog\n";
    s << "    la   r12, lambda\n";
    for (unsigned j = 1; j <= t; ++j)
        s << strprintf("    ldrb r%u, [r12, #%u]\n", 3 + j, j);
    s << "    la   lr, locs\n";
    s << "    movi r0, #0\n";          // position i
    s << "chien_loop:\n";
    // sum = Lambda_0 ^ sum_j Q_j  after stepping each Q_j *= alpha^-j.
    s << "    ldrb r1, [r12, #0]\n";
    for (unsigned j = 1; j <= t; ++j) {
        std::string reg = strprintf("r%u", 3 + j);
        s << "    eor  r1, r1, " << reg << "\n";
    }
    s << "    cmpi r1, #0\n";
    s << "    bne  no_root\n";
    s << "    strb r0, [lr]\n";
    s << "    addi lr, lr, #1\n";
    s << "no_root:\n";
    // Step the terms for the next position.
    for (unsigned j = 1; j <= t; ++j) {
        std::string reg = strprintf("r%u", 3 + j);
        s << baselineMulAccSnippet(reg, group - j, "r2", "r3", "r15",
                                   group, strprintf("c%u", j));
    }
    s << "    addi r0, r0, #1\n";
    s << strprintf("    cmpi r0, #%u\n", n);
    s << "    bne  chien_loop\n";
    // nloc = lr - &locs
    s << "    la   r2, locs\n";
    s << "    sub  r2, lr, r2\n";
    s << "    la   r3, nloc\n";
    s << "    str  r2, [r3]\n";
    s << "    halt\n";
    s << decoderData(field, n, 2 * t, true);
    return s.str();
}

std::string
chienAsmGfcore(const GFField &field, unsigned n, unsigned t)
{
    GFP_ASSERT(t >= 1 && t <= 8 && n <= field.groupOrder());
    const unsigned group = field.groupOrder();
    const unsigned groups = (t + 3) / 4;

    // Multiplier words [alpha^-(4g+1) .. alpha^-(4g+4)].
    std::vector<uint32_t> step_words;
    for (unsigned g = 0; g < groups; ++g) {
        uint32_t w = 0;
        for (unsigned l = 0; l < 4; ++l) {
            unsigned j = 4 * g + 1 + l;
            w = withLane(w, l,
                         static_cast<uint8_t>(field.exp(group - (j % group))));
        }
        step_words.push_back(w);
    }

    std::ostringstream s;
    s << "; GF-core Chien search: 4 locator terms per SIMD word\n";
    s << "    gfcfg cfg\n";
    s << "    la   r12, lambda\n";
    s << "    ldr  r4, [r12, #1]\n"; // Q word 0: Lambda_1..Lambda_4
    if (groups > 1)
        s << "    ldr  r5, [r12, #5]\n"; // Q word 1: Lambda_5..Lambda_8
    s << "    la   r9, steps\n";
    s << "    ldr  r6, [r9, #0]\n";
    if (groups > 1)
        s << "    ldr  r7, [r9, #4]\n";
    s << "    ldrb r8, [r12, #0]\n"; // Lambda_0
    s << "    la   lr, locs\n";
    s << "    movi r0, #0\n";
    s << "chien_loop:\n";
    // sum = Lambda_0 ^ fold(Q words)
    s << "    mov  r1, r4\n";
    if (groups > 1)
        s << "    eor  r1, r1, r5\n";
    s << "    lsri r9, r1, #16\n";
    s << "    eor  r1, r1, r9\n";
    s << "    lsri r9, r1, #8\n";
    s << "    eor  r1, r1, r9\n";
    s << "    andi r1, r1, #0xff\n";
    s << "    eor  r1, r1, r8\n";
    s << "    cmpi r1, #0\n";
    s << "    bne  no_root\n";
    s << "    strb r0, [lr]\n";
    s << "    addi lr, lr, #1\n";
    s << "no_root:\n";
    s << "    gfmuls r4, r4, r6\n";
    if (groups > 1)
        s << "    gfmuls r5, r5, r7\n";
    s << "    addi r0, r0, #1\n";
    s << strprintf("    cmpi r0, #%u\n", n);
    s << "    bne  chien_loop\n";
    s << "    la   r2, locs\n";
    s << "    sub  r2, lr, r2\n";
    s << "    la   r3, nloc\n";
    s << "    str  r2, [r3]\n";
    s << "    halt\n";
    s << decoderData(field, n, 2 * t, false);
    s << wordTableData("steps", step_words);
    return s.str();
}

// ---------------------------------------------------------------------
// Forney's algorithm
// ---------------------------------------------------------------------

std::string
forneyAsmBaseline(const GFField &field, unsigned two_t,
                  BaselineFlavor flavor)
{
    GFP_ASSERT(two_t >= 2 && two_t <= 16 && two_t % 2 == 0);
    const unsigned t = two_t / 2;
    const unsigned group = field.groupOrder();
    const bool compiled = flavor == BaselineFlavor::kCompiled;

    std::ostringstream s;
    s << "; baseline Forney: Omega = S*Lambda mod x^2t, then per-location\n";
    s << "; evaluation with log-domain arithmetic\n";
    s << "    la   r2, gf_log\n";
    s << "    la   r3, gf_alog\n";
    s << "    la   r5, synd\n";
    s << "    la   r6, lambda\n";
    s << "    la   r7, omega\n";

    // omega[c] = XOR_{i=0..min(c,t)} Lambda_i * S_{c-i}
    s << "    movi r0, #0\n";           // c
    s << "om_outer:\n";
    s << "    movi r1, #0\n";           // accumulator
    s << "    movi r8, #0\n";           // i
    s << "om_inner:\n";
    s << strprintf("    cmpi r8, #%u\n", t);
    s << "    bhi  om_inner_done\n";
    s << "    cmp  r8, r0\n";
    s << "    bhi  om_inner_done\n";
    s << "    ldrb r9, [r6, r8]\n";     // Lambda_i
    s << "    sub  r10, r0, r8\n";
    s << "    ldrb r10, [r5, r10]\n";   // S_{c-i}
    if (compiled) {
        s << compiledMulCall("r9", "r9", "r10");
    } else {
        s << baselineMulSnippet("r9", "r9", "r10", "r2", "r3", "r11",
                                "r15", group, "om");
    }
    s << "    eor  r1, r1, r9\n";
    s << "    addi r8, r8, #1\n";
    s << "    b    om_inner\n";
    s << "om_inner_done:\n";
    s << "    strb r1, [r7, r0]\n";
    s << "    addi r0, r0, #1\n";
    s << strprintf("    cmpi r0, #%u\n", two_t);
    s << "    bne  om_outer\n";

    // Per-location loop: k in [0, nloc)
    s << "    la   r9, nloc\n";
    s << "    ldr  r12, [r9]\n";        // nloc
    s << "    movi r0, #0\n";           // k
    s << "loc_loop:\n";
    s << "    cmp  r0, r12\n";
    s << "    bhs  loc_done\n";
    s << "    la   r9, locs\n";
    s << "    ldrb r1, [r9, r0]\n";     // i_k
    // x = alpha^-i: idx = (N - i) mod N
    s << strprintf("    movi r9, #%u\n", group);
    s << "    sub  r9, r9, r1\n";
    s << strprintf("    cmpi r9, #%u\n", group);
    s << "    blo  xi_ok\n";
    s << strprintf("    subi r9, r9, #%u\n", group);
    s << "xi_ok:\n";
    s << "    ldrb r1, [r3, r9]\n";     // x_inv in r1
    // Horner: num = Omega(x_inv) over 2t coefficients
    s << "    movi r4, #0\n";
    s << strprintf("    movi r8, #%u\n", two_t);
    s << "ev_num:\n";
    s << "    subi r8, r8, #1\n";
    if (compiled) {
        s << compiledMulCall("r4", "r4", "r1");
    } else {
        s << baselineMulSnippet("r4", "r4", "r1", "r2", "r3", "r10",
                                "r15", group, "en");
    }
    s << "    ldrb r10, [r7, r8]\n";
    s << "    eor  r4, r4, r10\n";
    s << "    cmpi r8, #0\n";
    s << "    bne  ev_num\n";
    // den = Lambda'(x_inv): odd coefficients, Horner in y = x^2.
    if (compiled) {
        s << compiledMulCall("r11", "r1", "r1");
    } else {
        s << baselineMulSnippet("r11", "r1", "r1", "r2", "r3", "r10",
                                "r15", group, "ysq");
    }
    s << "    movi r5, #0\n";           // den accumulator (r5 reused!)
    s << strprintf("    movi r8, #%u\n", (t + 1) / 2);
    s << "ev_den:\n";
    s << "    subi r8, r8, #1\n";
    if (compiled) {
        s << compiledMulCall("r5", "r5", "r11");
    } else {
        s << baselineMulSnippet("r5", "r5", "r11", "r2", "r3", "r10",
                                "r15", group, "ed");
    }
    s << "    lsli r10, r8, #1\n";
    s << "    addi r10, r10, #1\n";     // odd index 2*i+1
    s << "    ldrb r9, [r6, r10]\n";
    s << "    eor  r5, r5, r9\n";
    s << "    cmpi r8, #0\n";
    s << "    bne  ev_den\n";
    // e = num / den; num may be zero (handled by both paths).
    if (compiled) {
        s << compiledDivCall("r9", "r4", "r5");
    } else {
        s << "    cmpi r4, #0\n";
        s << "    bne  nz_num\n";
        s << "    movi r9, #0\n";
        s << "    b    store_e\n";
        s << "nz_num:\n";
        s << "    ldrb r9, [r2, r4]\n";
        s << "    ldrb r10, [r2, r5]\n";
        s << strprintf("    addi r9, r9, #%u\n", group);
        s << "    sub  r9, r9, r10\n";
        s << strprintf("    cmpi r9, #%u\n", group);
        s << "    blo  dv_ok\n";
        s << strprintf("    subi r9, r9, #%u\n", group);
        s << "dv_ok:\n";
        s << "    ldrb r9, [r3, r9]\n";
    }
    s << "store_e:\n";
    s << "    la   r10, evals\n";
    s << "    strb r9, [r10, r0]\n";
    // restore the synd base clobbered by the den accumulator
    s << "    la   r5, synd\n";
    s << "    addi r0, r0, #1\n";
    s << "    b    loc_loop\n";
    s << "loc_done:\n";
    s << "    halt\n";
    if (compiled)
        s << gfHelperRoutines(group);
    s << decoderData(field, field.groupOrder(), two_t, true);
    return s.str();
}

std::string
forneyAsmGfcore(const GFField &field, unsigned two_t)
{
    GFP_ASSERT(two_t >= 2 && two_t <= 16 && two_t % 2 == 0);
    const unsigned t = two_t / 2;
    const unsigned group = field.groupOrder();

    std::ostringstream s;
    s << "; GF-core Forney: SIMD Omega build (4 coefficients per pass),\n";
    s << "; then 4 locations per pass (gfpows for alpha^-i, gfinvs for\n";
    s << "; the division)\n";
    s << "    gfcfg cfg\n";
    s << "    la   r5, synd\n";
    s << "    la   r6, lambda\n";
    s << "    la   r7, omega\n";
    s << "    li   r11, #0x01010101\n";   // splat constant

    // Copy the syndromes into spad+8 so word reads at negative
    // coefficient offsets land in zero padding.
    s << "    la   r4, spad\n";
    s << "    addi r4, r4, #8\n";
    s << "    movi r8, #0\n";
    s << "sp_copy:\n";
    s << "    ldrb r9, [r5, r8]\n";
    s << "    strb r9, [r4, r8]\n";
    s << "    addi r8, r8, #1\n";
    s << strprintf("    cmpi r8, #%u\n", two_t);
    s << "    bne  sp_copy\n";

    // omega[cb..cb+3] = XOR_i Lambda_i * S[cb-i .. cb+3-i], vectorized
    // over four consecutive coefficients.
    s << "    movi r0, #0\n";             // cb (group base)
    s << "og_outer:\n";
    s << "    movi r1, #0\n";             // 4 accumulating coefficients
    s << "    movi r8, #0\n";             // i
    s << "og_inner:\n";
    s << strprintf("    cmpi r8, #%u\n", t);
    s << "    bhi  og_idone\n";
    s << "    addi r9, r0, #3\n";
    s << "    cmp  r8, r9\n";
    s << "    bhi  og_idone\n";
    s << "    ldrb r9, [r6, r8]\n";       // Lambda_i
    s << "    mul  r9, r9, r11\n";        // splat
    s << "    sub  r10, r0, r8\n";        // cb - i (may go negative)
    s << "    ldr  r10, [r4, r10]\n";     // 4 syndromes (pad-safe)
    s << "    gfmuls r9, r9, r10\n";
    s << "    gfadds r1, r1, r9\n";
    s << "    addi r8, r8, #1\n";
    s << "    b    og_inner\n";
    s << "og_idone:\n";
    s << "    str  r1, [r7, r0]\n";
    s << "    addi r0, r0, #4\n";
    s << strprintf("    cmpi r0, #%u\n", two_t);
    s << "    blo  og_outer\n";

    // Process locations four at a time.
    s << "    la   r9, nloc\n";
    s << "    ldr  r12, [r9]\n";          // nloc
    s << "    movi r0, #0\n";             // k (group base)
    s << "grp_loop:\n";
    s << "    cmp  r0, r12\n";
    s << "    bhs  grp_done\n";
    s << "    la   r9, locs\n";
    s << "    ldr  r3, [r9, r0]\n";      // 4 locations packed
    // exponents = splat(N) - locations (lane-wise safe: N >= loc)
    s << strprintf("    li   r9, #0x%x\n", splat(group & 0xff));
    s << "    sub  r3, r9, r3\n";
    s << strprintf("    li   r9, #0x%x\n",
                   splat(static_cast<uint8_t>(field.exp(1))));
    s << "    gfpows r3, r9, r3\n";        // x_inv lanes = alpha^-i
    // num = Omega(x_inv) via SIMD Horner
    s << "    movi r4, #0\n";
    s << strprintf("    movi r8, #%u\n", two_t);
    s << "ev_num:\n";
    s << "    subi r8, r8, #1\n";
    s << "    gfmuls r4, r4, r3\n";
    s << "    ldrb r9, [r7, r8]\n";
    s << "    mul  r9, r9, r11\n";
    s << "    gfadds r4, r4, r9\n";
    s << "    cmpi r8, #0\n";
    s << "    bne  ev_num\n";
    // den = Lambda'(x_inv): Horner in y = x^2 over odd coefficients
    s << "    gfsqs r10, r3\n";
    s << "    movi r2, #0\n";
    s << strprintf("    movi r8, #%u\n", (t + 1) / 2);
    s << "ev_den:\n";
    s << "    subi r8, r8, #1\n";
    s << "    gfmuls r2, r2, r10\n";
    s << "    lsli r9, r8, #1\n";
    s << "    addi r9, r9, #1\n";
    s << "    ldrb r9, [r6, r9]\n";
    s << "    mul  r9, r9, r11\n";
    s << "    gfadds r2, r2, r9\n";
    s << "    cmpi r8, #0\n";
    s << "    bne  ev_den\n";
    // e = num * den^-1 — the single-cycle SIMD inverse at work.
    s << "    gfinvs r2, r2\n";
    s << "    gfmuls r4, r4, r2\n";
    // Store up to 4 valid lanes.
    s << "    la   r9, evals\n";
    s << "    add  r9, r9, r0\n";
    s << "    mov  r10, r0\n";
    s << "st_loop:\n";
    s << "    cmp  r10, r12\n";
    s << "    bhs  st_done\n";
    s << "    strb r4, [r9]\n";
    s << "    lsri r4, r4, #8\n";
    s << "    addi r9, r9, #1\n";
    s << "    addi r10, r10, #1\n";
    s << "    sub  r2, r10, r0\n";
    s << "    cmpi r2, #4\n";
    s << "    bne  st_loop\n";
    s << "st_done:\n";
    s << "    addi r0, r0, #4\n";
    s << "    b    grp_loop\n";
    s << "grp_done:\n";
    s << "    halt\n";
    s << decoderData(field, field.groupOrder(), two_t, false);
    return s.str();
}


// ---------------------------------------------------------------------
// Systematic RS encoder
// ---------------------------------------------------------------------

namespace {

/** Generator polynomial g(x) = prod_{j=1..2t} (x + alpha^j). */
std::vector<GFElem>
rsGenerator(const GFField &field, unsigned t)
{
    std::vector<GFElem> g{1}; // monic, degree grows to 2t
    for (unsigned j = 1; j <= 2 * t; ++j) {
        g.push_back(0);
        GFElem root = field.exp(j);
        for (size_t i = g.size() - 1; i > 0; --i)
            g[i] = g[i - 1] ^ field.mul(g[i], root);
        g[0] = field.mul(g[0], root);
    }
    return g; // g[0..2t], g[2t] == 1
}

std::string
encoderData(const GFField &field, unsigned t, bool baseline)
{
    const unsigned n = field.groupOrder();
    const unsigned k = n - 2 * t;
    auto g = rsGenerator(field, t);

    std::ostringstream d;
    d << ".data\n";
    d << gfConfigData("cfg", field);
    d << spaceData("infodata", k);
    d << spaceData("cwdata", n);
    d << spaceData("parbuf", 16);
    std::vector<uint8_t> gbytes;
    for (unsigned j = 0; j < 2 * t; ++j)
        gbytes.push_back(static_cast<uint8_t>(g[j]));
    d << byteTableData("gtab", gbytes);
    std::vector<uint32_t> gwords(4, 0);
    for (unsigned j = 0; j < 2 * t; ++j)
        gwords[j / 4] |= static_cast<uint32_t>(g[j]) << (8 * (j % 4));
    d << wordTableData("gwords", gwords);
    if (baseline)
        d << logDomainTables("gf", field);
    return d.str();
}

} // anonymous namespace

std::string
rsEncodeAsmBaseline(const GFField &field, unsigned t,
                    BaselineFlavor flavor)
{
    GFP_ASSERT(t >= 1 && t <= 8);
    const unsigned n = field.groupOrder();
    const unsigned k = n - 2 * t;
    const unsigned two_t = 2 * t;
    const unsigned group = field.groupOrder();
    const bool compiled = flavor == BaselineFlavor::kCompiled;

    std::ostringstream s;
    s << "; baseline RS encoder: LFSR division by g(x), log-domain\n";
    s << "    la   r1, infodata\n";
    s << "    la   r2, parbuf\n";
    s << "    la   r3, gtab\n";
    if (!compiled) {
        s << "    la   r12, gf_log\n";
        s << "    la   lr, gf_alog\n";
    }
    s << strprintf("    movi r0, #%u\n", k);
    s << "enc_loop:\n";
    s << "    subi r0, r0, #1\n";
    // fb = info[i] ^ par[2t-1]
    s << "    ldrb r4, [r1, r0]\n";
    s << strprintf("    ldrb r5, [r2, #%u]\n", two_t - 1);
    s << "    eor  r4, r4, r5\n";
    // shift-and-accumulate, j = 2t-1 .. 1 then j = 0.
    s << strprintf("    movi r8, #%u\n", two_t - 1);
    s << "enc_j:\n";
    s << "    subi r5, r8, #1\n";
    s << "    ldrb r6, [r2, r5]\n";  // par[j-1]
    s << "    ldrb r5, [r3, r8]\n";  // g[j]
    if (compiled) {
        s << compiledMulCall("r5", "r4", "r5");
    } else {
        s << baselineMulSnippet("r5", "r4", "r5", "r12", "lr", "r9",
                                "r15", group, "ge");
    }
    s << "    eor  r6, r6, r5\n";
    s << "    strb r6, [r2, r8]\n";
    s << "    subi r8, r8, #1\n";
    s << "    cmpi r8, #0\n";
    s << "    bne  enc_j\n";
    s << "    ldrb r5, [r3, #0]\n";  // g[0]
    if (compiled) {
        s << compiledMulCall("r5", "r4", "r5");
    } else {
        s << baselineMulSnippet("r5", "r4", "r5", "r12", "lr", "r9",
                                "r15", group, "g0");
    }
    s << "    strb r5, [r2, #0]\n";
    s << "    cmpi r0, #0\n";
    s << "    bne  enc_loop\n";
    // cwdata = parbuf | infodata
    s << "    la   r3, cwdata\n";
    s << "    movi r0, #0\n";
    s << "cp_par:\n";
    s << "    ldrb r4, [r2, r0]\n";
    s << "    strb r4, [r3, r0]\n";
    s << "    addi r0, r0, #1\n";
    s << strprintf("    cmpi r0, #%u\n", two_t);
    s << "    bne  cp_par\n";
    s << "    movi r0, #0\n";
    s << strprintf("    addi r3, r3, #%u\n", two_t);
    s << "cp_inf:\n";
    s << "    ldrb r4, [r1, r0]\n";
    s << "    strb r4, [r3, r0]\n";
    s << "    addi r0, r0, #1\n";
    s << strprintf("    cmpi r0, #%u\n", k);
    s << "    bne  cp_inf\n";
    s << "    halt\n";
    if (compiled)
        s << gfHelperRoutines(group);
    s << encoderData(field, t, true);
    return s.str();
}

std::string
rsEncodeAsmGfcore(const GFField &field, unsigned t)
{
    GFP_ASSERT(t >= 1 && t <= 8 && (2 * t) % 4 == 0,
               "GF-core encoder needs 2t to be a multiple of 4");
    const unsigned n = field.groupOrder();
    const unsigned k = n - 2 * t;
    const unsigned words = 2 * t / 4;

    std::ostringstream s;
    s << "; GF-core RS encoder: parity register in SIMD words, the\n";
    s << "; whole g(x) multiply-accumulate vectorized\n";
    s << "    gfcfg cfg\n";
    s << "    la   r1, infodata\n";
    s << "    la   r2, gwords\n";
    for (unsigned w = 0; w < words; ++w)
        s << strprintf("    ldr  r%u, [r2, #%u]\n", 8 + w, 4 * w);
    s << "    li   r12, #0x01010101\n";
    for (unsigned w = 0; w < words; ++w)
        s << strprintf("    movi r%u, #0\n", 4 + w); // parity words
    s << strprintf("    movi r0, #%u\n", k);
    s << "enc_loop:\n";
    s << "    subi r0, r0, #1\n";
    // fb = info[i] ^ par[2t-1]
    s << "    ldrb r2, [r1, r0]\n";
    s << strprintf("    lsri r3, r%u, #24\n", 4 + words - 1);
    s << "    eor  r2, r2, r3\n";
    s << "    mul  r2, r2, r12\n";     // splat(fb)
    // shift the parity register up one byte across words
    for (unsigned w = words; w-- > 1;) {
        s << strprintf("    lsli r%u, r%u, #8\n", 4 + w, 4 + w);
        s << strprintf("    lsri r3, r%u, #24\n", 4 + w - 1);
        s << strprintf("    orr  r%u, r%u, r3\n", 4 + w, 4 + w);
    }
    s << "    lsli r4, r4, #8\n";
    // par ^= fb (x) g, four coefficients per gfmuls
    for (unsigned w = 0; w < words; ++w) {
        s << strprintf("    gfmuls r3, r2, r%u\n", 8 + w);
        s << strprintf("    eor  r%u, r%u, r3\n", 4 + w, 4 + w);
    }
    s << "    cmpi r0, #0\n";
    s << "    bne  enc_loop\n";
    // cwdata = parity | info
    s << "    la   r2, cwdata\n";
    for (unsigned w = 0; w < words; ++w)
        s << strprintf("    str  r%u, [r2, #%u]\n", 4 + w, 4 * w);
    s << "    movi r0, #0\n";
    s << strprintf("    addi r2, r2, #%u\n", 2 * t);
    s << "cp_inf:\n";
    s << "    ldrb r4, [r1, r0]\n";
    s << "    strb r4, [r2, r0]\n";
    s << "    addi r0, r0, #1\n";
    s << strprintf("    cmpi r0, #%u\n", k);
    s << "    bne  cp_inf\n";
    s << "    halt\n";
    s << encoderData(field, t, false);
    return s.str();
}

// ---------------------------------------------------------------------
// Lane-width ablation for the syndrome kernel
// ---------------------------------------------------------------------

std::string
syndromeAsmGfcoreLanes(const GFField &field, unsigned n, unsigned two_t,
                       unsigned lanes)
{
    GFP_ASSERT(lanes == 1 || lanes == 2 || lanes == 4);
    GFP_ASSERT(two_t >= 1 && two_t <= 16 && n <= field.groupOrder());

    std::ostringstream s;
    s << strprintf("; syndrome kernel restricted to %u live SIMD "
                   "lane(s)\n", lanes);
    s << "    gfcfg cfg\n";
    s << "    la   r1, rxdata\n";
    s << "    la   r2, synd\n";
    s << "    li   r4, #0x01010101\n";
    for (unsigned base = 0; base < two_t; base += lanes) {
        unsigned live = std::min(lanes, two_t - base);
        uint32_t mult = 0;
        for (unsigned l = 0; l < live; ++l)
            mult = withLane(mult, l,
                            static_cast<uint8_t>(field.exp(base + 1 + l)));
        std::string tag = strprintf("g%u", base);
        s << strprintf("    li   r6, #0x%x\n", mult);
        s << "    movi r7, #0\n";
        s << strprintf("    movi r8, #%u\n", n);
        s << strprintf("in_%s:\n", tag.c_str());
        s << "    subi r8, r8, #1\n";
        s << "    gfmuls r7, r7, r6\n";
        s << "    ldrb r9, [r1, r8]\n";
        s << "    mul  r9, r9, r4\n";
        s << "    gfadds r7, r7, r9\n";
        s << "    cmpi r8, #0\n";
        s << strprintf("    bne  in_%s\n", tag.c_str());
        for (unsigned l = 0; l < live; ++l) {
            s << strprintf("    strb r7, [r2, #%u]\n", base + l);
            if (l + 1 < live)
                s << "    lsri r7, r7, #8\n";
        }
    }
    s << "    halt\n";
    s << decoderData(field, n, two_t, false);
    return s.str();
}


} // namespace gfp
