/**
 * @file
 * Shared helpers for generating assembly kernels.
 *
 * Kernels come in pairs, mirroring the paper's methodology (Sec. 3.3.1):
 * a *baseline* variant using the log-domain table-lookup idiom of
 * Table 6 (what an optimized Cortex M0+ implementation does), and a
 * *GF-core* variant using the Table 1 GF instructions.  Control
 * structure is kept as similar as possible so the measured delta is the
 * GF arithmetic itself.
 *
 * These helpers emit the common data blocks: gfConfig blobs, log /
 * antilog tables, and byte/word arrays.
 */

#ifndef GFP_KERNELS_KERNELLIB_H
#define GFP_KERNELS_KERNELLIB_H

#include <cstdint>
#include <string>
#include <vector>

#include "gf/field.h"
#include "gfau/config_reg.h"

namespace gfp {

/** Emit ".align 8 / <label>: .word lo, hi" holding a gfConfig blob. */
std::string gfConfigData(const std::string &label, const GFField &field);

/** Same, for an explicit (possibly non-field, e.g. circulant-ring)
 *  configuration. */
std::string gfConfigDataRaw(const std::string &label,
                            const GFConfig &cfg);

/** Emit "<label>:" followed by .byte lines (16 values per line). */
std::string byteTableData(const std::string &label,
                          const std::vector<uint8_t> &bytes);

/** Emit "<label>:" followed by .word lines (4 values per line). */
std::string wordTableData(const std::string &label,
                          const std::vector<uint32_t> &words);

/** Emit "<label>: .space <n>" reserving zeroed bytes. */
std::string spaceData(const std::string &label, size_t bytes);

/**
 * Log/antilog tables for the baseline's log-domain multiply
 * (Table 6 left column):
 *  - "<prefix>_log":  2^m bytes, log[v] for v >= 1 (log[0] unused = 0)
 *  - "<prefix>_alog": 2^m - 1 bytes, alog[i] = g^i
 */
std::string logDomainTables(const std::string &prefix, const GFField &field);

/**
 * Baseline log-domain multiply-accumulate snippet:
 * computes acc = (acc (x) constant alpha^log_const) ^ loaded_byte,
 * the exact Table 6 inner-loop body.  Registers are caller-chosen:
 *
 * @param acc        register holding the running value (updated)
 * @param log_const  log of the constant multiplicand
 * @param rlog       register holding the log-table base
 * @param ralog      register holding the antilog-table base
 * @param scratch    scratch register
 * @param group      2^m - 1 (the modulo)
 * @param tag        unique label suffix
 */
std::string baselineMulAccSnippet(const std::string &acc,
                                  unsigned log_const,
                                  const std::string &rlog,
                                  const std::string &ralog,
                                  const std::string &scratch,
                                  unsigned group, const std::string &tag);

/**
 * Baseline log-domain multiply of two *variables*:
 * rd = ra (x) rb (any of the registers may alias).  Uses the zero checks
 * and conditional-subtract modulo of the optimized software idiom.
 */
std::string baselineMulSnippet(const std::string &rd, const std::string &ra,
                               const std::string &rb,
                               const std::string &rlog,
                               const std::string &ralog,
                               const std::string &s1, const std::string &s2,
                               unsigned group, const std::string &tag);

/** Pack four consecutive field elements exp(j)..exp(j+3) into a word. */
uint32_t packedAlphaWord(const GFField &field, unsigned first_exp);

/**
 * Two fidelity levels for the baseline (Cortex M0+-class) kernels.
 *
 * kCompiled mirrors what the paper actually measured: Keil-compiled C
 * where every GF multiply funnels through a log-domain helper whose
 * modulo is a generic software division (the M0+ has no divider, so
 * `% field_size` becomes a runtime-library call).  kHandOptimized is a
 * stronger baseline: multiplies inlined, modulo by one conditional
 * subtract.  Benchmarks report both; the paper's speedups correspond
 * to kCompiled.
 */
enum class BaselineFlavor { kHandOptimized, kCompiled };

/**
 * The gfmul/gfdiv helper routines for kCompiled baselines.
 * Contract: operands in r9/r10, result in r9; r10 and r15 clobbered;
 * called with bl (uses lr).  Zero operands give a zero result.
 */
std::string gfHelperRoutines(unsigned group);

/** rd = ra (x) rb via `bl gfmul` (rd/ra/rb outside r9/r10/r15/lr, or
 *  equal to r9/r10 in the natural positions). */
std::string compiledMulCall(const std::string &rd, const std::string &ra,
                            const std::string &rb);

/** acc = acc (x) constant via `bl gfmul`. */
std::string compiledMulConstCall(const std::string &acc,
                                 uint8_t const_value);

/** rd = ra / rb via `bl gfdiv`. */
std::string compiledDivCall(const std::string &rd, const std::string &ra,
                            const std::string &rb);

} // namespace gfp

#endif // GFP_KERNELS_KERNELLIB_H
