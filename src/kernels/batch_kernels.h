/**
 * @file
 * Batch entry points: package the decoder and AES assembly kernels as
 * (shared program, per-item Job) pairs for the batch execution engine
 * (engine/batch_engine.h).
 *
 * Each *BatchProgram() assembles the kernel once; the matching *Job()
 * helpers build the data-driven jobs — one per codeword / syndrome
 * vector / locator / counter block — with the kernel's label
 * conventions (see kernels/coding_kernels.h) filled in, so callers
 * never repeat buffer names or lengths.
 *
 * The AES helpers implement CTR-style multi-block encryption: every
 * counter block is an independent job (CTR has no inter-block
 * dependency, which is exactly why it batches), and aesCtrApply() XORs
 * the resulting keystream onto a buffer of any length, matching
 * Aes::applyCtr bit for bit.
 */

#ifndef GFP_KERNELS_BATCH_KERNELS_H
#define GFP_KERNELS_BATCH_KERNELS_H

#include <vector>

#include "crypto/aes.h"
#include "engine/batch_engine.h"
#include "gf/field.h"

namespace gfp {

// ------------------------- decoder kernels ---------------------------

/** Syndrome kernel (GF core): job input "rxdata", output "synd". */
BatchProgram syndromeBatchProgram(const GFField &field, unsigned n,
                                  unsigned two_t);
Job syndromeJob(const std::vector<GFElem> &received, unsigned two_t);

/** Berlekamp-Massey kernel: input "synd", outputs "lambda" + "llen". */
BatchProgram bmaBatchProgram(const GFField &field, unsigned two_t);
Job bmaJob(const std::vector<uint8_t> &synd);

/** Chien-search kernel: input "lambda", outputs "locs" + "nloc". */
BatchProgram chienBatchProgram(const GFField &field, unsigned n,
                               unsigned t);
Job chienJob(const std::vector<uint8_t> &lambda);

/** Forney kernel: inputs "synd"/"lambda"/"locs"/"nloc", output
 *  "evals". */
BatchProgram forneyBatchProgram(const GFField &field, unsigned two_t);
Job forneyJob(const std::vector<uint8_t> &synd,
              const std::vector<uint8_t> &lambda,
              const std::vector<uint8_t> &locs, uint32_t nloc);

// ------------------------ AES-CTR multi-block ------------------------

/** Full-block AES encrypt kernel (GF core), shared by all CTR jobs. */
BatchProgram aesBlockBatchProgram(unsigned rounds = 10);

/**
 * One job per counter block: block i encrypts iv + i (big-endian
 * increment, the Aes::applyCtr convention).  Covers
 * ceil(data_len / 16) blocks.
 */
std::vector<Job> aesCtrJobs(const Aes &aes, const AesBlock &iv,
                            size_t data_len);

/**
 * XOR the keystream produced by a batch of aesCtrJobs() results onto
 * @p data (encrypt == decrypt).  Fatal if any job trapped or the
 * result count does not cover @p data.
 */
std::vector<uint8_t> aesCtrApply(const std::vector<JobResult> &results,
                                 const std::vector<uint8_t> &data);

} // namespace gfp

#endif // GFP_KERNELS_BATCH_KERNELS_H
