#include "kernels/wide_kernels.h"

#include <sstream>

#include "common/logging.h"
#include "common/strutil.h"
#include "kernels/kernellib.h"

namespace gfp {

namespace {

// ---------------------------------------------------------------------
// Shared data and reduction
// ---------------------------------------------------------------------

/** Field-element and scratch buffers shared by the wide kernels. */
std::string
wideData(bool karatsuba)
{
    std::ostringstream d;
    d << ".data\n.align 8\n";
    for (const char *buf : {"opa", "opb", "result", "qx", "qy", "px",
                            "py", "pz", "t1", "t2", "t3", "t4", "t5",
                            "t6", "resx", "resy", "iv_a", "iv_t", "iv_u"})
        d << spaceData(buf, 32);
    d << spaceData("prodbuf", 64);
    d << spaceData("hbuf", 32);
    d << spaceData("cbuf", 40);
    d << spaceData("kwords", 16);
    d << spaceData("kbits", 4);
    d << spaceData("smi", 4);
    d << spaceData("iv_cnt", 4);
    d << spaceData("iv_lr", 8);
    d << spaceData("pd_lr", 4);
    d << spaceData("pa_lr", 4);
    if (karatsuba) {
        d << spaceData("kfsave", 16);
        d << spaceData("kfta", 16);
        d << spaceData("kftb", 16);
        d << spaceData("kfp0", 32);
        d << spaceData("kfp1", 32);
        d << spaceData("kfp2", 32);
    }
    return d.str();
}

/**
 * Sparse reduction of the 466-bit product in prodbuf modulo
 * x^233 + x^74 + 1, result to [r2].  233 = 7*32 + 9, 74 = 2*32 + 10.
 * Uses r0, r1, r3..r10; preserves r2 and lr.  The label arguments let
 * the direct-product kernel expose Table 7's phase boundaries.
 */
std::string
reduce233Snippet(const std::string &tag)
{
    // Sparse reduction of the 466-bit product in prodbuf modulo
    // x^233 + x^74 + 1, result to [r2].  233 = 7*32 + 9, 74 = 2*32+10.
    // The 232-bit high part H lives entirely in r4..r11; the short
    // second fold H2 in r15/r1/r12.  Preserves r2 and lr.
    std::ostringstream s;
    auto H = [](unsigned i) { return strprintf("r%u", 4 + i); };
    const char *h2[3] = {"r15", "r1", "r12"};

    // Phase: rearrange — H[i] = (c[7+i] >> 9) | (c[8+i] << 23).
    s << tag << "_rearrange:\n";
    s << "    la   r0, prodbuf\n";
    s << "    ldr  r3, [r0, #28]\n"; // rolling c[7+i]
    for (unsigned i = 0; i < 8; ++i) {
        s << strprintf("    ldr  r1, [r0, #%u]\n", 32 + 4 * i);
        s << strprintf("    lsri %s, r3, #9\n", H(i).c_str());
        s << "    lsli r12, r1, #23\n";
        s << strprintf("    orr  %s, %s, r12\n", H(i).c_str(),
                       H(i).c_str());
        s << "    mov  r3, r1\n";
    }

    // Phase: polynomial reduction.
    // cp7..cp9 (the only c' words at/above bit 224) => H2, then one
    // streaming pass emits result[i] = L[i]^H[i]^(H<<74)[i]^H2 terms.
    s << tag << "_reduce:\n";
    s << "    ldr  r3, [r0, #28]\n";
    s << "    andi r3, r3, #0x1ff\n";          // L7
    s << strprintf("    eor  r3, r3, %s\n", H(7).c_str());
    s << strprintf("    lsli r1, %s, #10\n", H(5).c_str());
    s << "    eor  r3, r3, r1\n";
    s << strprintf("    lsri r1, %s, #22\n", H(4).c_str());
    s << "    eor  r3, r3, r1\n";               // cp7 in r3
    s << strprintf("    lsli r1, %s, #10\n", H(6).c_str());
    s << strprintf("    lsri r12, %s, #22\n", H(5).c_str());
    s << "    orr  r1, r1, r12\n";              // cp8 in r1
    s << strprintf("    lsli r12, %s, #10\n", H(7).c_str());
    s << strprintf("    lsri r13, %s, #22\n", H(6).c_str());
    s << "    orr  r12, r12, r13\n";            // cp9 in r12
    // H2 = cp' >> 233 over cp7..cp9.
    s << "    lsri r15, r3, #9\n";
    s << "    lsli r13, r1, #23\n";
    s << "    orr  r15, r15, r13\n";            // H2_0
    s << "    lsri r1, r1, #9\n";
    s << "    lsli r13, r12, #23\n";
    s << "    orr  r1, r1, r13\n";              // H2_1
    s << "    lsri r12, r12, #9\n";             // H2_2
    // result[7] = cp7 & 0x1ff  ((H2<<74) only reaches words 2..5).
    s << "    andi r3, r3, #0x1ff\n";
    s << "    str  r3, [r2, #28]\n";
    // words 0..6, v in r13, shift scratch r3.
    for (unsigned i = 0; i < 7; ++i) {
        s << strprintf("    ldr  r13, [r0, #%u]\n", 4 * i);
        s << strprintf("    eor  r13, r13, %s\n", H(i).c_str());
        if (i >= 2) {
            s << strprintf("    lsli r3, %s, #10\n", H(i - 2).c_str());
            s << "    eor  r13, r13, r3\n";
        }
        if (i >= 3) {
            s << strprintf("    lsri r3, %s, #22\n", H(i - 3).c_str());
            s << "    eor  r13, r13, r3\n";
        }
        if (i < 3)
            s << strprintf("    eor  r13, r13, %s\n", h2[i]);
        if (i >= 2 && i - 2 <= 2) { // (H2 << 74): H2[i-2] << 10
            s << strprintf("    lsli r3, %s, #10\n", h2[i - 2]);
            s << "    eor  r13, r13, r3\n";
        }
        if (i >= 3 && i - 3 <= 2) { // (H2 << 74): H2[i-3] >> 22
            s << strprintf("    lsri r3, %s, #22\n", h2[i - 3]);
            s << "    eor  r13, r13, r3\n";
        }
        s << strprintf("    str  r13, [r2, #%u]\n", 4 * i);
    }
    return s.str();
}

// ---------------------------------------------------------------------
// Field-operation subroutines
// ---------------------------------------------------------------------

/**
 * fmul: [r2] = [r0] (x) [r1] via the direct product.  A is pinned in
 * r4..r11; carries ping-pong between r12 and r15, reproducing the
 * Table 7 operation counts exactly.  Leaf routine (lr preserved).
 */
std::string
fmulRoutine()
{
    std::ostringstream s;
    s << "fmul:\n";
    for (unsigned j = 0; j < 8; ++j)
        s << strprintf("    ldr  r%u, [r0, #%u]\n", 4 + j, 4 * j);
    s << "    la   r0, prodbuf\n";
    for (unsigned i = 0; i < 8; ++i) {
        s << strprintf("    ldr  r3, [r1, #%u]\n", 4 * i);
        for (unsigned j = 0; j < 8; ++j) {
            const char *hi = (j % 2 == 0) ? "r15" : "r12";
            const char *consumed = (j % 2 == 0) ? "r12" : "r15";
            s << strprintf("    gf32mul %s, r13, r%u, r3\n", hi, 4 + j);
            if (j > 0)
                s << strprintf("    eor  r13, r13, %s\n", consumed);
            if (i > 0) {
                s << strprintf("    ldr  %s, [r0, #%u]\n", consumed,
                               4 * (i + j));
                s << strprintf("    eor  r13, r13, %s\n", consumed);
            }
            s << strprintf("    str  r13, [r0, #%u]\n", 4 * (i + j));
        }
        if (i < 7)
            s << strprintf("    str  r12, [r0, #%u]\n", 4 * (i + 8));
    }
    s << reduce233Snippet("fm");
    s << "    ret\n";
    return s.str();
}

/**
 * fsqr: [r2] = [r0]^2 — 8 partial products with the high half of the
 * product and the rearranged H kept entirely in registers (the paper's
 * "interleave the full partial product operations and then rearrange
 * results together", Sec. 3.3.4).  c15 is identically zero (the square
 * of a 233-bit element has degree <= 464) and is elided.  Leaf.
 */
std::string
fsqrRoutine()
{
    std::ostringstream s;
    s << "fsqr:\n";
    // Low half: c0..c6 to prodbuf, c7 kept in r12.
    s << "    la   r1, prodbuf\n";
    for (unsigned i = 0; i < 4; ++i) {
        s << strprintf("    ldr  r3, [r0, #%u]\n", 4 * i);
        if (i < 3) {
            s << "    gf32mul r5, r4, r3, r3\n";
            s << strprintf("    str  r4, [r1, #%u]\n", 8 * i);
            s << strprintf("    str  r5, [r1, #%u]\n", 8 * i + 4);
        } else {
            s << "    gf32mul r12, r4, r3, r3\n"; // c7 stays in r12
            s << strprintf("    str  r4, [r1, #%u]\n", 8 * i);
        }
    }
    // High half: c8..c14 in r4..r10 (c15 == 0).
    s << "    ldr  r3, [r0, #16]\n";
    s << "    gf32mul r5, r4, r3, r3\n";   // c8, c9
    s << "    ldr  r3, [r0, #20]\n";
    s << "    gf32mul r7, r6, r3, r3\n";   // c10, c11
    s << "    ldr  r3, [r0, #24]\n";
    s << "    gf32mul r9, r8, r3, r3\n";   // c12, c13
    s << "    ldr  r3, [r0, #28]\n";
    s << "    gf32mul r11, r10, r3, r3\n"; // c14 (c15 in r11: zero)
    // L7 before c7 is consumed.
    s << "    andi r11, r12, #0x1ff\n";
    // H[i] = (c[7+i] >> 9) | (c[8+i] << 23), built in place:
    // H0->r12, H1->r4, ..., H6->r9, H7 = c14 >> 9 -> r10.
    const char *c_reg[8] = {"r12", "r4", "r5", "r6", "r7", "r8", "r9",
                            "r10"};
    for (unsigned i = 0; i < 7; ++i) {
        s << strprintf("    lsri %s, %s, #9\n", c_reg[i], c_reg[i]);
        s << strprintf("    lsli r3, %s, #23\n", c_reg[i + 1]);
        s << strprintf("    orr  %s, %s, r3\n", c_reg[i], c_reg[i]);
    }
    s << "    lsri r10, r10, #9\n";
    // H map for the fold: H[0..7] = r12,r4,r5,r6,r7,r8,r9,r10.
    const char *H[8] = {"r12", "r4", "r5", "r6", "r7", "r8", "r9",
                        "r10"};
    // cp7 = L7 ^ H7 ^ (H5 << 10) ^ (H4 >> 22)   -> r3
    s << strprintf("    eor  r3, r11, %s\n", H[7]);
    s << strprintf("    lsli r13, %s, #10\n", H[5]);
    s << "    eor  r3, r3, r13\n";
    s << strprintf("    lsri r13, %s, #22\n", H[4]);
    s << "    eor  r3, r3, r13\n";
    // cp8 = (H6 << 10) | (H5 >> 22)             -> r13
    s << strprintf("    lsli r13, %s, #10\n", H[6]);
    s << strprintf("    lsri r15, %s, #22\n", H[5]);
    s << "    orr  r13, r13, r15\n";
    // cp9 = (H7 << 10) | (H6 >> 22)             -> r11
    s << strprintf("    lsli r11, %s, #10\n", H[7]);
    s << strprintf("    lsri r15, %s, #22\n", H[6]);
    s << "    orr  r11, r11, r15\n";
    // H2_0 -> r15, H2_1 -> r13, H2_2 -> r11
    s << "    lsri r15, r3, #9\n";
    s << "    lsli r1, r13, #23\n";
    s << "    orr  r15, r15, r1\n";
    s << "    lsri r13, r13, #9\n";
    s << "    lsli r1, r11, #23\n";
    s << "    orr  r13, r13, r1\n";
    s << "    lsri r11, r11, #9\n";
    const char *h2[3] = {"r15", "r13", "r11"};
    // result[7] = cp7 & 0x1ff
    s << "    andi r3, r3, #0x1ff\n";
    s << "    str  r3, [r2, #28]\n";
    // words 0..6: v in r0 (operand pointer is dead), scratch r3.
    s << "    la   r1, prodbuf\n";
    for (unsigned i = 0; i < 7; ++i) {
        s << strprintf("    ldr  r0, [r1, #%u]\n", 4 * i);
        s << strprintf("    eor  r0, r0, %s\n", H[i]);
        if (i >= 2) {
            s << strprintf("    lsli r3, %s, #10\n", H[i - 2]);
            s << "    eor  r0, r0, r3\n";
        }
        if (i >= 3) {
            s << strprintf("    lsri r3, %s, #22\n", H[i - 3]);
            s << "    eor  r0, r0, r3\n";
        }
        if (i < 3)
            s << strprintf("    eor  r0, r0, %s\n", h2[i]);
        if (i >= 2 && i - 2 <= 2) {
            s << strprintf("    lsli r3, %s, #10\n", h2[i - 2]);
            s << "    eor  r0, r0, r3\n";
        }
        if (i >= 3 && i - 3 <= 2) {
            s << strprintf("    lsri r3, %s, #22\n", h2[i - 3]);
            s << "    eor  r0, r0, r3\n";
        }
        s << strprintf("    str  r0, [r2, #%u]\n", 4 * i);
    }
    s << "    ret\n";
    return s.str();
}

/** fadd: [r2] = [r0] ^ [r1].  Leaf. */
std::string
faddRoutine()
{
    std::ostringstream s;
    s << "fadd:\n";
    for (unsigned i = 0; i < 8; ++i) {
        s << strprintf("    ldr  r3, [r0, #%u]\n", 4 * i);
        s << strprintf("    ldr  r4, [r1, #%u]\n", 4 * i);
        s << "    eor  r3, r3, r4\n";
        s << strprintf("    str  r3, [r2, #%u]\n", 4 * i);
    }
    s << "    ret\n";
    return s.str();
}

/** fcpy: [r2] = [r0].  Leaf. */
std::string
fcpyRoutine()
{
    std::ostringstream s;
    s << "fcpy:\n";
    for (unsigned i = 0; i < 8; ++i) {
        s << strprintf("    ldr  r3, [r0, #%u]\n", 4 * i);
        s << strprintf("    str  r3, [r2, #%u]\n", 4 * i);
    }
    s << "    ret\n";
    return s.str();
}

// ---------------------------------------------------------------------
// Karatsuba multiplier (36 partial products)
// ---------------------------------------------------------------------

/**
 * One flat 4-word x 4-word carry-free product with all eight result
 * words register-resident (o0..o7 = r8,r9,r10,r11,r12,r15,r13,r0).
 * @p load_pa / @p load_pb emit code leaving the operand base in r1;
 * the result is stored to @p pout.  Uses every register except lr.
 */
std::string
block4x4(const std::string &load_pa, unsigned pa_off,
         const std::string &load_pb, unsigned pb_off,
         const std::string &pout)
{
    const char *o[8] = {"r8", "r9", "r10", "r11", "r12", "r15", "r13",
                        "r0"};
    std::ostringstream s;
    s << load_pa;
    for (unsigned j = 0; j < 4; ++j)
        s << strprintf("    ldr  r%u, [r1, #%u]\n", 4 + j,
                       pa_off + 4 * j);
    s << load_pb;
    for (unsigned i = 0; i < 4; ++i) {
        s << strprintf("    ldr  r3, [r1, #%u]\n", pb_off + 4 * i);
        for (unsigned j = 0; j < 4; ++j) {
            unsigned lo_pos = i + j, hi_pos = i + j + 1;
            bool hi_fresh = (i == 0) || (j == 3);
            if (i == 0 && j == 0) {
                s << strprintf("    gf32mul %s, %s, r4, r3\n", o[1],
                               o[0]);
            } else if (hi_fresh) {
                s << strprintf("    gf32mul %s, r2, r%u, r3\n",
                               o[hi_pos], 4 + j);
                s << strprintf("    eor  %s, %s, r2\n", o[lo_pos],
                               o[lo_pos]);
            } else {
                // both positions accumulate: hi via temp r0 (o7 is not
                // live until row 3's last product)
                s << strprintf("    gf32mul r0, r2, r%u, r3\n", 4 + j);
                s << strprintf("    eor  %s, %s, r2\n", o[lo_pos],
                               o[lo_pos]);
                s << strprintf("    eor  %s, %s, r0\n", o[hi_pos],
                               o[hi_pos]);
            }
        }
    }
    s << strprintf("    la   r1, %s\n", pout.c_str());
    for (unsigned w = 0; w < 8; ++w)
        s << strprintf("    str  %s, [r1, #%u]\n", o[w], 4 * w);
    return s.str();
}

/**
 * kfmul: [r2] = [r0] (x) [r1] via one Karatsuba level over flat 4x4
 * blocks — 3 * 12 = 36 gf32bMult partial products — plus the sparse
 * reduction.  Saves its arguments in kfsave (no nested calls).
 */
std::string
kfmulRoutine()
{
    auto fromSave = [](unsigned slot, unsigned extra) {
        std::string out = "    la   r1, kfsave\n";
        out += strprintf("    ldr  r1, [r1, #%u]\n", slot);
        if (extra)
            out += strprintf("    addi r1, r1, #%u\n", extra);
        return out;
    };
    std::ostringstream s;
    s << "kfmul:\n";
    s << "    la   r3, kfsave\n";
    s << "    str  lr, [r3, #0]\n";
    s << "    str  r0, [r3, #4]\n";
    s << "    str  r1, [r3, #8]\n";
    s << "    str  r2, [r3, #12]\n";
    // kfta = A_lo ^ A_hi; kftb = B_lo ^ B_hi (4 words each).
    s << "    la   r2, kfta\n";
    for (unsigned w = 0; w < 4; ++w) {
        s << strprintf("    ldr  r4, [r0, #%u]\n", 4 * w);
        s << strprintf("    ldr  r5, [r0, #%u]\n", 4 * w + 16);
        s << "    eor  r4, r4, r5\n";
        s << strprintf("    str  r4, [r2, #%u]\n", 4 * w);
    }
    s << "    la   r2, kftb\n";
    for (unsigned w = 0; w < 4; ++w) {
        s << strprintf("    ldr  r4, [r1, #%u]\n", 4 * w);
        s << strprintf("    ldr  r5, [r1, #%u]\n", 4 * w + 16);
        s << "    eor  r4, r4, r5\n";
        s << strprintf("    str  r4, [r2, #%u]\n", 4 * w);
    }
    // Three block products.
    s << block4x4(fromSave(4, 0), 0, fromSave(8, 0), 0, "kfp0");
    s << block4x4(fromSave(4, 16), 0, fromSave(8, 16), 0, "kfp2");
    s << block4x4("    la   r1, kfta\n", 0, "    la   r1, kftb\n", 0,
                  "kfp1");
    // prodbuf = P0 + (P0^P1^P2) << 128 + P2 << 256.
    s << "    la   r4, kfp0\n";
    s << "    la   r5, kfp1\n";
    s << "    la   r6, kfp2\n";
    s << "    la   r0, prodbuf\n";
    for (unsigned w = 0; w < 16; ++w) {
        if (w < 8)
            s << strprintf("    ldr  r7, [r4, #%u]\n", 4 * w);
        else
            s << strprintf("    ldr  r7, [r6, #%u]\n", 4 * (w - 8));
        if (w >= 4 && w <= 11) {
            unsigned k = w - 4;
            s << strprintf("    ldr  r8, [r4, #%u]\n", 4 * k);
            s << strprintf("    ldr  r9, [r5, #%u]\n", 4 * k);
            s << "    eor  r8, r8, r9\n";
            s << strprintf("    ldr  r9, [r6, #%u]\n", 4 * k);
            s << "    eor  r8, r8, r9\n";
            s << "    eor  r7, r7, r8\n";
        }
        s << strprintf("    str  r7, [r0, #%u]\n", 4 * w);
    }
    s << "    la   r3, kfsave\n";
    s << "    ldr  r2, [r3, #12]\n";
    s << reduce233Snippet("kf");
    s << "    la   r3, kfsave\n";
    s << "    ldr  lr, [r3, #0]\n";
    s << "    ret\n";
    return s.str();
}

// ---------------------------------------------------------------------
// Inverse and point operations
// ---------------------------------------------------------------------

/**
 * finv: [r2] = [r0]^-1 by the Itoh-Tsujii chain on e = 232
 * (10 multiplies, 232 squarings).  @p mul is "fmul" or "kfmul".
 */
std::string
finvRoutine(const std::string &mul)
{
    std::ostringstream s;
    unsigned tag = 0;

    auto sqrN = [&](unsigned count) {
        std::ostringstream k;
        unsigned t = tag++;
        k << strprintf("    movi r3, #%u\n", count);
        k << "    la   r4, iv_cnt\n";
        k << "    str  r3, [r4]\n";
        k << strprintf("ivs_%u:\n", t);
        k << "    la   r0, iv_u\n";
        k << "    mov  r2, r0\n";
        k << "    bl   fsqr\n";
        k << "    la   r4, iv_cnt\n";
        k << "    ldr  r3, [r4]\n";
        k << "    subi r3, r3, #1\n";
        k << "    str  r3, [r4]\n";
        k << "    cmpi r3, #0\n";
        k << strprintf("    bne  ivs_%u\n", t);
        return k.str();
    };
    auto copy = [&](const char *from, const char *to) {
        return strprintf("    la   r0, %s\n    la   r2, %s\n"
                         "    bl   fcpy\n", from, to);
    };
    auto mulInto = [&](const char *a, const char *b, const char *out) {
        return strprintf("    la   r0, %s\n    la   r1, %s\n"
                         "    la   r2, %s\n    bl   %s\n",
                         a, b, out, mul.c_str());
    };

    // Callers jump here through a wrapper that has already stashed lr
    // and the output pointer in iv_lr and the operand in iv_a.
    // Chain on e = 232 = 0b11101000:
    // T(1)=a; T2; T3; T6; T7; T14; T28; T29; T58; T116; T232; out=T232^2.
    s << "finv_entry:\n";
    // have = 1: iv_t = a
    s << copy("iv_a", "iv_t");
    unsigned have = 1;
    const unsigned e = 232;
    int top = 31 - __builtin_clz(e);
    for (int i = top - 1; i >= 0; --i) {
        // iv_u = iv_t; iv_u = iv_u^(2^have); iv_t = iv_u * iv_t
        s << copy("iv_t", "iv_u");
        s << sqrN(have);
        s << mulInto("iv_u", "iv_t", "iv_t");
        have *= 2;
        if ((e >> i) & 1) {
            // iv_t = iv_t^2 * a
            s << "    la   r0, iv_t\n";
            s << "    la   r2, iv_t\n";
            s << "    bl   fsqr\n";
            s << mulInto("iv_t", "iv_a", "iv_t");
            have += 1;
        }
    }
    GFP_ASSERT(have == e);
    // out = iv_t^2
    s << "    la   r0, iv_t\n";
    s << "    la   r3, iv_lr\n";
    s << "    ldr  r2, [r3, #4]\n";
    s << "    bl   fsqr\n";
    s << "    la   r3, iv_lr\n";
    s << "    ldr  lr, [r3, #0]\n";
    s << "    ret\n";
    return s.str();
}

/** Point doubling on K-233 (a=0, b=1): 3 multiplies + 5 squarings. */
std::string
pdoubleRoutine(const std::string &mul)
{
    auto sqr = [](const char *in, const char *out) {
        return strprintf("    la   r0, %s\n    la   r2, %s\n"
                         "    bl   fsqr\n", in, out);
    };
    auto mulp = [&](const char *a, const char *b, const char *out) {
        return strprintf("    la   r0, %s\n    la   r1, %s\n"
                         "    la   r2, %s\n    bl   %s\n",
                         a, b, out, mul.c_str());
    };
    auto add = [](const char *a, const char *b, const char *out) {
        return strprintf("    la   r0, %s\n    la   r1, %s\n"
                         "    la   r2, %s\n    bl   fadd\n", a, b, out);
    };
    std::ostringstream s;
    s << "pdouble:\n";
    s << "    la   r3, pd_lr\n";
    s << "    str  lr, [r3]\n";
    // t1 = X^2; t2 = Z^2; t5 = Y^2
    s << sqr("px", "t1");
    s << sqr("pz", "t2");
    s << sqr("py", "t5");
    // t3 = b*Z^4 = (Z^2)^2   (b = 1)
    s << sqr("t2", "t3");
    // Z3 = X^2 * Z^2 -> t2
    s << mulp("t1", "t2", "t2");
    // X3 = X^4 ^ b*Z^4 -> t4
    s << sqr("t1", "t4");
    s << add("t4", "t3", "t4");
    // inner = a*Z3 ^ Y^2 ^ b*Z^4 = t5 ^ t3  (a = 0)
    s << add("t5", "t3", "t5");
    // Y3 = b*Z^4 * Z3 ^ X3 * inner -> t1
    s << mulp("t3", "t2", "t1");
    s << mulp("t4", "t5", "t3");
    s << add("t1", "t3", "t1");
    // commit
    s << "    la   r0, t4\n    la   r2, px\n    bl   fcpy\n";
    s << "    la   r0, t1\n    la   r2, py\n    bl   fcpy\n";
    s << "    la   r0, t2\n    la   r2, pz\n    bl   fcpy\n";
    s << "    la   r3, pd_lr\n";
    s << "    ldr  lr, [r3]\n";
    s << "    ret\n";
    return s.str();
}

/** Mixed addition on K-233 (a=0): 8 multiplies + 5 squarings. */
std::string
paddRoutine(const std::string &mul)
{
    auto sqr = [](const char *in, const char *out) {
        return strprintf("    la   r0, %s\n    la   r2, %s\n"
                         "    bl   fsqr\n", in, out);
    };
    auto mulp = [&](const char *a, const char *b, const char *out) {
        return strprintf("    la   r0, %s\n    la   r1, %s\n"
                         "    la   r2, %s\n    bl   %s\n",
                         a, b, out, mul.c_str());
    };
    auto add = [](const char *a, const char *b, const char *out) {
        return strprintf("    la   r0, %s\n    la   r1, %s\n"
                         "    la   r2, %s\n    bl   fadd\n", a, b, out);
    };
    std::ostringstream s;
    s << "paddmixed:\n";
    s << "    la   r3, pa_lr\n";
    s << "    str  lr, [r3]\n";
    // A = qy*Z1^2 ^ Y1 -> t2
    s << sqr("pz", "t1");
    s << mulp("qy", "t1", "t2");
    s << add("t2", "py", "t2");
    // B = qx*Z1 ^ X1 -> t3
    s << mulp("qx", "pz", "t3");
    s << add("t3", "px", "t3");
    // C = Z1*B -> t4
    s << mulp("pz", "t3", "t4");
    // D = B^2 * C -> t3   (a = 0 drops the a*Z1^2 term)
    s << sqr("t3", "t3");
    s << mulp("t3", "t4", "t3");
    // Z3 = C^2 -> t1
    s << sqr("t4", "t1");
    // E = A*C -> t4
    s << mulp("t2", "t4", "t4");
    // X3 = A^2 ^ D ^ E -> t2
    s << sqr("t2", "t2");
    s << add("t2", "t3", "t2");
    s << add("t2", "t4", "t2");
    // F = X3 ^ qx*Z3 -> t3
    s << mulp("qx", "t1", "t3");
    s << add("t3", "t2", "t3");
    // G = (qx ^ qy) * Z3^2 -> t5
    s << add("qx", "qy", "t5");
    s << sqr("t1", "t6");
    s << mulp("t5", "t6", "t5");
    // Y3 = (E ^ Z3)*F ^ G -> t4
    s << add("t4", "t1", "t4");
    s << mulp("t4", "t3", "t4");
    s << add("t4", "t5", "t4");
    // commit
    s << "    la   r0, t2\n    la   r2, px\n    bl   fcpy\n";
    s << "    la   r0, t4\n    la   r2, py\n    bl   fcpy\n";
    s << "    la   r0, t1\n    la   r2, pz\n    bl   fcpy\n";
    s << "    la   r3, pa_lr\n";
    s << "    ldr  lr, [r3]\n";
    s << "    ret\n";
    return s.str();
}

/** The field-op routine bundle every wide program links in. */
std::string
fieldRoutines(bool karatsuba)
{
    std::string out = fmulRoutine() + fsqrRoutine() + faddRoutine() +
                      fcpyRoutine();
    if (karatsuba)
        out += kfmulRoutine();
    return out;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Standalone programs
// ---------------------------------------------------------------------

std::string
mult233DirectAsm()
{
    std::ostringstream s;
    s << "; GF(2^233) multiply: direct product (64 gf32bMult) + sparse\n";
    s << "; reduction for x^233 + x^74 + 1  (paper Table 7)\n";
    s << "    la   r0, opa\n";
    s << "    la   r1, opb\n";
    s << "    la   r2, result\n";
    s << "    bl   fmul\n";
    s << "    halt\n";
    s << fieldRoutines(false);
    s << wideData(false);
    return s.str();
}


std::string
mult233BaselineAsm()
{
    std::ostringstream s;
    auto xor8 = [&](const char *dst_base, unsigned dst_off,
                    const char *a_base, unsigned a_off,
                    const char *b_base, unsigned b_off) {
        // dst = a ^ b, 8 words, via the named pointer registers.
        std::ostringstream k;
        for (unsigned w = 0; w < 8; ++w) {
            k << strprintf("    ldr  r7, [%s, #%u]\n", a_base,
                           a_off + 4 * w);
            k << strprintf("    ldr  r8, [%s, #%u]\n", b_base,
                           b_off + 4 * w);
            k << "    eor  r7, r7, r8\n";
            k << strprintf("    str  r7, [%s, #%u]\n", dst_base,
                           dst_off + 4 * w);
        }
        return k.str();
    };
    auto shl8 = [&](const char *dst_base, unsigned dst_off,
                    const char *src_base, unsigned src_off, unsigned k) {
        // dst = src << k (k < 32), 8 words, low to high with a rolling
        // previous word in r8.
        std::ostringstream o;
        o << "    movi r8, #0\n"; // bits shifted in from below
        for (unsigned w = 0; w < 8; ++w) {
            o << strprintf("    ldr  r7, [%s, #%u]\n", src_base,
                           src_off + 4 * w);
            o << strprintf("    lsli r9, r7, #%u\n", k);
            o << "    orr  r9, r9, r8\n";
            o << strprintf("    lsri r8, r7, #%u\n", 32 - k);
            o << strprintf("    str  r9, [%s, #%u]\n", dst_base,
                           dst_off + 4 * w);
        }
        return o.str();
    };

    s << "; M0+-class GF(2^233) multiply: 4-bit-window comb over a\n";
    s << "; 16-entry premultiplied table (no GF instructions)\n";
    // ---- precompute T[v] = v(x) * B(x), v = 0..15, 8 words each ----
    s << "    la   r2, wtab\n";
    s << "    la   r1, opb\n";
    // T[0] = 0
    s << "    movi r7, #0\n";
    for (unsigned w = 0; w < 8; ++w)
        s << strprintf("    str  r7, [r2, #%u]\n", 4 * w);
    // T[1] = B
    for (unsigned w = 0; w < 8; ++w) {
        s << strprintf("    ldr  r7, [r1, #%u]\n", 4 * w);
        s << strprintf("    str  r7, [r2, #%u]\n", 32 + 4 * w);
    }
    // T[2] = B<<1, T[4] = B<<2, T[8] = B<<3
    s << shl8("r2", 2 * 32, "r1", 0, 1);
    s << shl8("r2", 4 * 32, "r1", 0, 2);
    s << shl8("r2", 8 * 32, "r1", 0, 3);
    // Composites by single XOR: v = hi_bit + rest.
    for (unsigned v : {3u, 5u, 6u, 7u, 9u, 10u, 11u, 12u, 13u, 14u,
                       15u}) {
        unsigned hi = 1u << (31 - __builtin_clz(v));
        unsigned rest = v - hi;
        s << xor8("r2", v * 32, "r2", hi * 32, "r2", rest * 32);
    }

    // ---- comb accumulation into prodbuf ----
    s << "    la   r1, opa\n";
    s << "    la   r3, prodbuf\n";
    s << "    movi r7, #0\n";
    for (unsigned w = 0; w < 16; ++w)
        s << strprintf("    str  r7, [r3, #%u]\n", 4 * w);
    s << "    movi r0, #7\n";          // nibble index k
    s << "bm_outer:\n";
    s << "    movi r4, #0\n";          // word index j
    s << "bm_j:\n";
    // v = (A[j] >> 4k) & 0xf
    s << "    lsli r5, r4, #2\n";
    s << "    ldr  r5, [r1, r5]\n";
    s << "    lsli r6, r0, #2\n";
    s << "    lsr  r5, r5, r6\n";
    s << "    andi r5, r5, #0xf\n";
    // acc[j..j+7] ^= T[v]
    s << "    lsli r5, r5, #5\n";
    s << "    add  r5, r5, r2\n";      // &T[v]
    s << "    lsli r6, r4, #2\n";
    s << "    add  r6, r6, r3\n";      // &acc[j]
    for (unsigned w = 0; w < 8; ++w) {
        s << strprintf("    ldr  r7, [r5, #%u]\n", 4 * w);
        s << strprintf("    ldr  r8, [r6, #%u]\n", 4 * w);
        s << "    eor  r7, r7, r8\n";
        s << strprintf("    str  r7, [r6, #%u]\n", 4 * w);
    }
    s << "    addi r4, r4, #1\n";
    s << "    cmpi r4, #8\n";
    s << "    bne  bm_j\n";
    // last nibble group: no trailing shift
    s << "    cmpi r0, #0\n";
    s << "    beq  bm_done\n";
    // acc <<= 4 (16 words, top down)
    for (unsigned i = 16; i-- > 1;) {
        s << strprintf("    ldr  r5, [r3, #%u]\n", 4 * i);
        s << "    lsli r5, r5, #4\n";
        s << strprintf("    ldr  r6, [r3, #%u]\n", 4 * (i - 1));
        s << "    lsri r6, r6, #28\n";
        s << "    orr  r5, r5, r6\n";
        s << strprintf("    str  r5, [r3, #%u]\n", 4 * i);
    }
    s << "    ldr  r5, [r3, #0]\n";
    s << "    lsli r5, r5, #4\n";
    s << "    str  r5, [r3, #0]\n";
    s << "    subi r0, r0, #1\n";
    s << "    b    bm_outer\n";
    s << "bm_done:\n";
    // ---- sparse reduction (identical code, pure ALU) ----
    s << "    la   r2, result\n";
    s << reduce233Snippet("bm");
    s << "    halt\n";
    s << wideData(false);
    s << spaceData("wtab", 512);
    return s.str();
}

std::string
mult233KaratsubaAsm()
{
    std::ostringstream s;
    s << "; GF(2^233) multiply: two-level Karatsuba (36 gf32bMult)\n";
    s << "    la   r0, opa\n";
    s << "    la   r1, opb\n";
    s << "    la   r2, result\n";
    s << "    bl   kfmul\n";
    s << "    halt\n";
    s << fieldRoutines(true);
    s << wideData(true);
    return s.str();
}

std::string
square233Asm()
{
    std::ostringstream s;
    s << "; GF(2^233) square: 8 gf32bMult partial products\n";
    s << "    la   r0, opa\n";
    s << "    la   r2, result\n";
    s << "    bl   fsqr\n";
    s << "    halt\n";
    s << fieldRoutines(false);
    s << wideData(false);
    return s.str();
}

std::string
inverse233Asm(bool karatsuba)
{
    std::ostringstream s;
    s << "; GF(2^233) Itoh-Tsujii inverse (10 mult + 232 sqr)\n";
    s << "    la   r0, opa\n";
    s << "    la   r2, iv_a\n";
    s << "    bl   fcpy\n";
    s << "    la   r2, result\n";
    s << "    bl   finv_entry_w\n";
    s << "    halt\n";
    // finv takes its operand from iv_a; wrap so the entry saves state.
    s << "finv_entry_w:\n";
    s << "    la   r3, iv_lr\n";
    s << "    str  lr, [r3, #0]\n";
    s << "    str  r2, [r3, #4]\n";
    s << "    b    finv_entry\n";
    s << finvRoutine(karatsuba ? "kfmul" : "fmul");
    s << fieldRoutines(karatsuba);
    s << wideData(karatsuba);
    return s.str();
}

std::string
pointDoubleAsm(bool karatsuba)
{
    std::ostringstream s;
    s << "; K-233 Lopez-Dahab point doubling\n";
    s << "    bl   pdouble\n";
    s << "    halt\n";
    s << pdoubleRoutine(karatsuba ? "kfmul" : "fmul");
    s << fieldRoutines(karatsuba);
    s << wideData(karatsuba);
    return s.str();
}

std::string
pointAddAsm(bool karatsuba)
{
    std::ostringstream s;
    s << "; K-233 Lopez-Dahab mixed point addition\n";
    s << "    bl   paddmixed\n";
    s << "    halt\n";
    s << paddRoutine(karatsuba ? "kfmul" : "fmul");
    s << fieldRoutines(karatsuba);
    s << wideData(karatsuba);
    return s.str();
}

std::string
scalarMultAsm(bool karatsuba)
{
    const char *mul = karatsuba ? "kfmul" : "fmul";
    std::ostringstream s;
    s << "; K-233 double-and-add scalar multiplication (+ final\n";
    s << "; projective-to-affine conversion via Itoh-Tsujii inverse)\n";
    // acc = (qx, qy, 1)
    s << "    la   r0, qx\n    la   r2, px\n    bl   fcpy\n";
    s << "    la   r0, qy\n    la   r2, py\n    bl   fcpy\n";
    s << "    la   r2, pz\n";
    s << "    movi r3, #1\n";
    s << "    str  r3, [r2, #0]\n";
    s << "    movi r3, #0\n";
    for (unsigned i = 1; i < 8; ++i)
        s << strprintf("    str  r3, [r2, #%u]\n", 4 * i);
    // i = kbits - 2
    s << "    la   r3, kbits\n";
    s << "    ldr  r4, [r3]\n";
    s << "    subi r4, r4, #2\n";
    s << "    la   r3, smi\n";
    s << "    str  r4, [r3]\n";
    s << "sm_loop:\n";
    s << "    la   r3, smi\n";
    s << "    ldr  r4, [r3]\n";
    s << "    cmpi r4, #0\n";
    s << "    blt  sm_done\n";
    s << "    bl   pdouble\n";
    s << "    la   r3, smi\n";
    s << "    ldr  r4, [r3]\n";
    s << "    lsri r5, r4, #5\n";
    s << "    lsli r5, r5, #2\n";
    s << "    la   r6, kwords\n";
    s << "    ldr  r5, [r6, r5]\n";
    s << "    andi r6, r4, #31\n";
    s << "    lsr  r5, r5, r6\n";
    s << "    andi r5, r5, #1\n";
    s << "    cmpi r5, #0\n";
    s << "    beq  sm_next\n";
    s << "    bl   paddmixed\n";
    s << "sm_next:\n";
    s << "    la   r3, smi\n";
    s << "    ldr  r4, [r3]\n";
    s << "    subi r4, r4, #1\n";
    s << "    str  r4, [r3]\n";
    s << "    b    sm_loop\n";
    s << "sm_done:\n";
    // affine: zinv = 1/pz; resx = px*zinv; resy = py*zinv^2
    s << "    la   r0, pz\n    la   r2, iv_a\n    bl   fcpy\n";
    s << "    la   r2, t6\n";
    s << "    bl   finv_entry_w\n";
    s << strprintf("    la   r0, px\n    la   r1, t6\n"
                   "    la   r2, resx\n    bl   %s\n", mul);
    s << "    la   r0, t6\n    la   r2, t6\n    bl   fsqr\n";
    s << strprintf("    la   r0, py\n    la   r1, t6\n"
                   "    la   r2, resy\n    bl   %s\n", mul);
    s << "    halt\n";
    s << "finv_entry_w:\n";
    s << "    la   r3, iv_lr\n";
    s << "    str  lr, [r3, #0]\n";
    s << "    str  r2, [r3, #4]\n";
    s << "    b    finv_entry\n";
    s << finvRoutine(mul);
    s << pdoubleRoutine(mul);
    s << paddRoutine(mul);
    s << fieldRoutines(karatsuba);
    s << wideData(karatsuba);
    return s.str();
}

} // namespace gfp
