/**
 * @file
 * Assembly kernel generators for the RS/BCH decoder datapath: syndrome
 * calculation, Berlekamp-Massey, Chien search, and Forney's algorithm
 * (paper Table 5 / Fig. 9).
 *
 * Each kernel comes in a baseline variant (log-domain table lookups on
 * the M0+-class core, in one of two fidelity flavors — see
 * BaselineFlavor) and a GF-processor variant (Table 1 instructions).
 * Data-layout conventions (shared by both so runner code is identical):
 *
 *   rxdata  n bytes      received word (one symbol per byte; for binary
 *                        BCH the symbols are 0/1)
 *   synd    2t bytes     computed syndromes S_1..S_2t (syndrome kernel
 *                        output, BMA/Forney input)
 *   lambda  12 bytes     error-locator coefficients, zero padded
 *   llen    1 word       L = deg Lambda (BMA output)
 *   locs    12 bytes     error locations (Chien output), zero padded
 *   nloc    1 word       number of locations found
 *   evals   12 bytes     error values (Forney output)
 */

#ifndef GFP_KERNELS_CODING_KERNELS_H
#define GFP_KERNELS_CODING_KERNELS_H

#include <string>

#include "gf/field.h"
#include "kernels/kernellib.h"

namespace gfp {

/** Syndrome computation: rxdata -> synd. */
std::string syndromeAsmBaseline(
    const GFField &field, unsigned n, unsigned two_t,
    BaselineFlavor flavor = BaselineFlavor::kCompiled);
std::string syndromeAsmGfcore(const GFField &field, unsigned n,
                              unsigned two_t);

/** Berlekamp-Massey: synd -> lambda, llen. */
std::string bmaAsmBaseline(
    const GFField &field, unsigned two_t,
    BaselineFlavor flavor = BaselineFlavor::kCompiled);
std::string bmaAsmGfcore(const GFField &field, unsigned two_t);

/** Chien search: lambda -> locs, nloc. */
std::string chienAsmBaseline(
    const GFField &field, unsigned n, unsigned t,
    BaselineFlavor flavor = BaselineFlavor::kCompiled);
std::string chienAsmGfcore(const GFField &field, unsigned n, unsigned t);

/** Forney: synd + lambda + locs/nloc -> evals. */
std::string forneyAsmBaseline(
    const GFField &field, unsigned two_t,
    BaselineFlavor flavor = BaselineFlavor::kCompiled);
std::string forneyAsmGfcore(const GFField &field, unsigned two_t);

/**
 * Systematic RS encoder (LFSR division by the generator polynomial):
 * info (k bytes at `infodata`) -> codeword (n bytes at `cwdata`).
 * The paper notes encoding "is also feasible with the proposed
 * architecture"; the GF-core variant vectorizes the parity-register
 * update four coefficients at a time.
 */
std::string rsEncodeAsmBaseline(
    const GFField &field, unsigned t,
    BaselineFlavor flavor = BaselineFlavor::kCompiled);
std::string rsEncodeAsmGfcore(const GFField &field, unsigned t);

/**
 * Syndrome kernel with a configurable number of live SIMD lanes
 * (1, 2, or 4) — the ablation behind the paper's "four-way is enough"
 * design choice (Sec. 2.4.3).  lanes == 4 is syndromeAsmGfcore.
 */
std::string syndromeAsmGfcoreLanes(const GFField &field, unsigned n,
                                   unsigned two_t, unsigned lanes);

} // namespace gfp

#endif // GFP_KERNELS_CODING_KERNELS_H
