/**
 * @file
 * Cyclotomic cosets and minimal polynomials over GF(2) — the machinery
 * that constructs binary BCH generator polynomials for arbitrary
 * (n = 2^m - 1, t) parameter choices, the coding-flexibility knob the
 * paper's processor exists to serve.
 */

#ifndef GFP_CODING_MINPOLY_H
#define GFP_CODING_MINPOLY_H

#include <vector>

#include "gf/field.h"
#include "gf/gf2x.h"

namespace gfp {

/** The 2-cyclotomic coset of @p s modulo 2^m - 1, smallest member first. */
std::vector<uint32_t> cyclotomicCoset(uint32_t s, unsigned m);

/**
 * Minimal polynomial of alpha^s over GF(2), where alpha is the primitive
 * element of @p field (which must use a primitive polynomial).  The
 * result is the binary polynomial prod_{j in coset(s)} (x + alpha^j),
 * whose coefficients provably lie in GF(2).
 */
Gf2x minimalPolynomial(const GFField &field, uint32_t s);

/**
 * Binary BCH generator polynomial for designed distance 2t+1:
 * lcm of the minimal polynomials of alpha^1 .. alpha^2t.
 */
Gf2x bchGenerator(const GFField &field, unsigned t);

} // namespace gfp

#endif // GFP_CODING_MINPOLY_H
