#include "coding/minpoly.h"

#include <algorithm>

#include "common/logging.h"
#include "gf/poly.h"

namespace gfp {

std::vector<uint32_t>
cyclotomicCoset(uint32_t s, unsigned m)
{
    const uint32_t n = (1u << m) - 1;
    s %= n;
    std::vector<uint32_t> coset;
    uint32_t v = s;
    do {
        coset.push_back(v);
        v = (v * 2) % n;
    } while (v != s);
    std::sort(coset.begin(), coset.end());
    return coset;
}

Gf2x
minimalPolynomial(const GFField &field, uint32_t s)
{
    GFP_ASSERT(field.primitive(),
               "minimal polynomials need a primitive field polynomial");
    // prod (x + alpha^j) over the conjugates alpha^(s*2^i).
    GFPoly p = GFPoly::constant(field, 1);
    for (uint32_t j : cyclotomicCoset(s, field.m())) {
        GFPoly factor(field, {field.exp(j), 1}); // x + alpha^j
        p = p * factor;
    }
    // The coefficients must land in GF(2); convert to a binary poly.
    Gf2x out;
    for (int i = 0; i <= p.degree(); ++i) {
        GFElem c = p.coeff(i);
        GFP_ASSERT(c <= 1, "minimal polynomial coefficient %u not binary",
                   c);
        if (c)
            out.setBit(i, 1);
    }
    return out;
}

Gf2x
bchGenerator(const GFField &field, unsigned t)
{
    GFP_ASSERT(t >= 1);
    // lcm of minimal polynomials: multiply in each coset's polynomial
    // once (conjugate exponents share one minimal polynomial).
    std::vector<uint32_t> seen;
    Gf2x g(uint64_t{1});
    for (unsigned i = 1; i <= 2 * t; ++i) {
        auto coset = cyclotomicCoset(i, field.m());
        uint32_t leader = coset.front();
        if (std::find(seen.begin(), seen.end(), leader) != seen.end())
            continue;
        seen.push_back(leader);
        g = g * minimalPolynomial(field, i);
    }
    return g;
}

} // namespace gfp
