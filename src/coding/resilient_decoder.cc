#include "coding/resilient_decoder.h"

#include <algorithm>

#include "coding/decoder_kernels.h"
#include "common/strutil.h"
#include "gfau/config_reg.h"

namespace gfp {

namespace {

/** Watchdog for one screen attempt: generous for any n <= 255 screen,
 *  but bounds a fault that corrupts the kernel's loop counter. */
constexpr uint64_t kScreenMaxInstrs = 4'000'000;

std::vector<GFElem>
toSymbols(const std::vector<uint8_t> &bytes)
{
    return std::vector<GFElem>(bytes.begin(), bytes.end());
}

} // anonymous namespace

const char *
resilientOutcomeName(ResilientOutcome outcome)
{
    switch (outcome) {
      case ResilientOutcome::kCorrected:             return "corrected";
      case ResilientOutcome::kRecoveredAfterScrub:
        return "recovered_after_scrub";
      case ResilientOutcome::kDetectedUncorrectable:
        return "detected_uncorrectable";
    }
    return "?";
}

std::string
ResilientReport::summary() const
{
    std::string s = strprintf("%s errors=%u scrubs=%u",
                              resilientOutcomeName(outcome), errors,
                              scrubs);
    if (escalated_to_erasures)
        s += " (errors-and-erasures)";
    if (last_trap)
        s += " [last trap: " + last_trap.describe() + "]";
    return s;
}

SyndromeScreen::SyndromeScreen(const GFField &field, ScreenProgram spec,
                               unsigned two_t)
    : machine_(spec.asm_source, CoreKind::kGfProcessor),
      spec_(std::move(spec)), two_t_(two_t),
      good_blob_(GFConfig::derive(field.m(), field.poly()).pack())
{
}

void
SyndromeScreen::scrub(const std::vector<uint8_t> &rx)
{
    machine_.reset();
    machine_.writeBytes(spec_.rx_label, rx);
    // Re-issue the known-good configuration image: the gfcfg
    // instruction at the top of the kernel re-loads the live register
    // from this blob, clearing any upset in either copy.
    machine_.memory().write64(machine_.addr(spec_.cfg_label), good_blob_);
}

SyndromeScreen::Result
SyndromeScreen::run(const std::vector<uint8_t> &rx,
                    const std::vector<GFElem> &expected_synd,
                    unsigned max_scrubs)
{
    Result res;
    for (unsigned attempt = 0; attempt <= max_scrubs; ++attempt) {
        if (attempt > 0)
            ++res.scrubs;
        scrub(rx);
        RunResult r = machine_.runToHalt(kScreenMaxInstrs);
        if (!r.ok()) {
            res.last_trap = r.trap;
            continue;
        }
        res.synd = toSymbols(machine_.readBytes(spec_.synd_label, two_t_));
        // Redundant-recompute check: a silently wrong field (P-matrix
        // upset) shows up here as a syndrome mismatch.
        if (res.synd == expected_synd) {
            res.trusted = true;
            break;
        }
    }
    return res;
}

// ---------------------------------------------------------------- RS --

ResilientRsDecoder::ResilientRsDecoder(unsigned m, unsigned t,
                                       ScreenProgram screen,
                                       unsigned max_scrubs)
    : code_(m, t), screen_(code_.field(), std::move(screen), 2 * t),
      max_scrubs_(max_scrubs)
{
}

ResilientRsDecoder::Result
ResilientRsDecoder::decode(const std::vector<GFElem> &received,
                           const std::vector<unsigned> &erasure_hints)
{
    Result out;
    ResilientReport &rep = out.report;

    std::vector<GFElem> expected =
        syndromes(code_.field(), received, 2 * code_.t());

    std::vector<uint8_t> rx(received.size());
    std::transform(received.begin(), received.end(), rx.begin(),
                   [](GFElem s) { return static_cast<uint8_t>(s); });

    SyndromeScreen::Result sres =
        screen_.run(rx, expected, max_scrubs_);
    rep.scrubs = sres.scrubs;
    rep.screen_agreed = sres.trusted;
    rep.last_trap = sres.last_trap;

    // Fast-path accept: a trusted screen with all-zero syndromes means
    // the received word already is a codeword.
    if (sres.trusted &&
        std::all_of(expected.begin(), expected.end(),
                    [](GFElem s) { return s == 0; })) {
        rep.outcome = rep.scrubs ? ResilientOutcome::kRecoveredAfterScrub
                                 : ResilientOutcome::kCorrected;
        out.codeword = received;
        return out;
    }

    RSCode::DecodeResult dres = code_.decode(received);
    if (!dres.ok && !erasure_hints.empty()) {
        dres = code_.decodeWithErasures(received, erasure_hints);
        if (dres.ok)
            rep.escalated_to_erasures = true;
    }
    if (dres.ok) {
        rep.outcome = rep.scrubs ? ResilientOutcome::kRecoveredAfterScrub
                                 : ResilientOutcome::kCorrected;
        rep.errors = dres.errors;
        out.codeword = std::move(dres.codeword);
    } else {
        rep.outcome = ResilientOutcome::kDetectedUncorrectable;
    }
    return out;
}

// --------------------------------------------------------------- BCH --

ResilientBchDecoder::ResilientBchDecoder(unsigned m, unsigned t,
                                         ScreenProgram screen,
                                         unsigned max_scrubs)
    : code_(m, t), screen_(code_.field(), std::move(screen), 2 * t),
      max_scrubs_(max_scrubs)
{
}

ResilientBchDecoder::Result
ResilientBchDecoder::decode(const std::vector<uint8_t> &received)
{
    Result out;
    ResilientReport &rep = out.report;

    std::vector<GFElem> expected =
        syndromes(code_.field(), toSymbols(received), 2 * code_.t());

    SyndromeScreen::Result sres =
        screen_.run(received, expected, max_scrubs_);
    rep.scrubs = sres.scrubs;
    rep.screen_agreed = sres.trusted;
    rep.last_trap = sres.last_trap;

    if (sres.trusted &&
        std::all_of(expected.begin(), expected.end(),
                    [](GFElem s) { return s == 0; })) {
        rep.outcome = rep.scrubs ? ResilientOutcome::kRecoveredAfterScrub
                                 : ResilientOutcome::kCorrected;
        out.codeword = received;
        return out;
    }

    BCHCode::DecodeResult dres = code_.decode(received);
    if (dres.ok) {
        rep.outcome = rep.scrubs ? ResilientOutcome::kRecoveredAfterScrub
                                 : ResilientOutcome::kCorrected;
        rep.errors = dres.errors;
        out.codeword = std::move(dres.codeword);
    } else {
        rep.outcome = ResilientOutcome::kDetectedUncorrectable;
    }
    return out;
}

} // namespace gfp
