#include "coding/channel.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace gfp {

std::vector<uint8_t>
BscChannel::transmit(std::vector<uint8_t> bits)
{
    for (auto &b : bits) {
        if (rng_.chance(p_)) {
            b ^= 1;
            ++bit_errors_;
        }
    }
    return bits;
}

std::vector<GFElem>
BscChannel::transmitSymbols(std::vector<GFElem> symbols,
                            unsigned bits_per_symbol)
{
    for (auto &s : symbols) {
        for (unsigned b = 0; b < bits_per_symbol; ++b) {
            if (rng_.chance(p_)) {
                s ^= static_cast<GFElem>(1u << b);
                ++bit_errors_;
            }
        }
    }
    return symbols;
}

bool
GilbertElliottChannel::stepAndFlip()
{
    // State transition, then an error draw in the (new) state.
    if (bad_) {
        if (rng_.chance(p_bg_))
            bad_ = false;
    } else {
        if (rng_.chance(p_gb_))
            bad_ = true;
    }
    bool flip = rng_.chance(bad_ ? pe_bad_ : pe_good_);
    if (flip)
        ++bit_errors_;
    return flip;
}

std::vector<uint8_t>
GilbertElliottChannel::transmit(std::vector<uint8_t> bits)
{
    for (auto &b : bits)
        b ^= static_cast<uint8_t>(stepAndFlip());
    return bits;
}

std::vector<GFElem>
GilbertElliottChannel::transmitSymbols(std::vector<GFElem> symbols,
                                       unsigned bits_per_symbol)
{
    for (auto &s : symbols)
        for (unsigned b = 0; b < bits_per_symbol; ++b)
            if (stepAndFlip())
                s ^= static_cast<GFElem>(1u << b);
    return symbols;
}

GilbertElliottArrivals::GilbertElliottArrivals(double mean_good_s,
                                               double mean_bad_s,
                                               double rate_good_hz,
                                               double rate_bad_hz,
                                               uint64_t seed)
    : mean_good_s_(mean_good_s), mean_bad_s_(mean_bad_s),
      rate_good_hz_(rate_good_hz), rate_bad_hz_(rate_bad_hz), rng_(seed)
{
    GFP_ASSERT(mean_good_s > 0 && mean_bad_s > 0,
               "sojourn means must be positive");
    GFP_ASSERT(rate_good_hz >= 0 && rate_bad_hz >= 0,
               "arrival rates must be non-negative");
}

double
GilbertElliottArrivals::expDraw(double mean)
{
    // Uniform in (0, 1]: the 53-bit mantissa draw can return 0, which
    // log() must never see.
    double u =
        (static_cast<double>(rng_.next64() >> 11) + 1.0) * 0x1.0p-53;
    return -mean * std::log(u);
}

std::vector<double>
GilbertElliottArrivals::generate(double duration_s)
{
    std::vector<double> arrivals;
    bool bad = false;
    double t = 0, bad_time = 0;
    while (t < duration_s) {
        const double sojourn =
            expDraw(bad ? mean_bad_s_ : mean_good_s_);
        const double end = std::min(t + sojourn, duration_s);
        const double rate = bad ? rate_bad_hz_ : rate_good_hz_;
        if (bad)
            bad_time += end - t;
        if (rate > 0) {
            double at = t + expDraw(1.0 / rate);
            while (at < end) {
                arrivals.push_back(at);
                at += expDraw(1.0 / rate);
            }
        }
        t = end;
        bad = !bad;
    }
    bad_fraction_ = duration_s > 0 ? bad_time / duration_s : 0;
    return arrivals;
}

std::vector<unsigned>
ExactErrorInjector::pickPositions(unsigned n, unsigned count)
{
    GFP_ASSERT(count <= n, "cannot pick %u of %u positions", count, n);
    std::vector<unsigned> all(n);
    for (unsigned i = 0; i < n; ++i)
        all[i] = i;
    // Partial Fisher-Yates.
    for (unsigned i = 0; i < count; ++i) {
        unsigned j = i + static_cast<unsigned>(rng_.below(n - i));
        std::swap(all[i], all[j]);
    }
    all.resize(count);
    return all;
}

std::vector<uint8_t>
ExactErrorInjector::flipBits(std::vector<uint8_t> bits, unsigned count)
{
    for (unsigned pos : pickPositions(static_cast<unsigned>(bits.size()),
                                      count)) {
        bits[pos] ^= 1;
    }
    return bits;
}

std::vector<GFElem>
ExactErrorInjector::corruptSymbols(std::vector<GFElem> symbols,
                                   unsigned count, unsigned m)
{
    for (unsigned pos : pickPositions(static_cast<unsigned>(symbols.size()),
                                      count)) {
        // A nonzero error pattern guarantees the symbol changes.
        GFElem e = static_cast<GFElem>(1 + rng_.below((1u << m) - 1));
        symbols[pos] ^= e;
    }
    return symbols;
}

} // namespace gfp
