#include "coding/rs.h"

#include <algorithm>

#include "coding/decoder_kernels.h"
#include "common/logging.h"

namespace gfp {

RSCode::RSCode(unsigned m, unsigned t, uint32_t poly)
    : t_(t), field_(std::make_shared<GFField>(m, poly)),
      generator_(*field_)
{
    if (!field_->primitive())
        GFP_FATAL("RS construction requires a primitive field polynomial");
    n_ = field_->groupOrder();
    if (2 * t >= n_)
        GFP_FATAL("RS(m=%u, t=%u): 2t leaves no information symbols", m, t);
    k_ = n_ - 2 * t;

    // g(x) = prod_{j=1..2t} (x + alpha^j)
    generator_ = GFPoly::constant(*field_, 1);
    for (unsigned j = 1; j <= 2 * t; ++j)
        generator_ = generator_ * GFPoly(*field_, {field_->exp(j), 1});
    GFP_ASSERT(generator_.degree() == static_cast<int>(2 * t));
}

std::vector<GFElem>
RSCode::encode(const std::vector<GFElem> &info) const
{
    if (info.size() != k_)
        GFP_FATAL("RS encode: expected %u info symbols, got %zu", k_,
                  info.size());
    for (GFElem s : info)
        GFP_ASSERT(field_->contains(s), "info symbol 0x%x out of field", s);

    GFPoly ipoly(*field_, info);
    GFPoly shifted = ipoly.shift(2 * t_);
    GFPoly parity = shifted.mod(generator_);
    GFPoly cw = shifted + parity;

    std::vector<GFElem> out(n_, 0);
    for (unsigned i = 0; i < n_; ++i)
        out[i] = cw.coeff(i);
    return out;
}

std::vector<GFElem>
RSCode::extractInfo(const std::vector<GFElem> &cw) const
{
    GFP_ASSERT(cw.size() == n_);
    return std::vector<GFElem>(cw.begin() + 2 * t_, cw.end());
}

bool
RSCode::isCodeword(const std::vector<GFElem> &word) const
{
    GFP_ASSERT(word.size() == n_);
    for (GFElem s : syndromes(*field_, word, 2 * t_))
        if (s != 0)
            return false;
    return true;
}

RSCode::DecodeResult
RSCode::decodeWithErasures(const std::vector<GFElem> &received,
                           const std::vector<unsigned> &erasures) const
{
    if (received.size() != n_)
        GFP_FATAL("RS decode: expected %u symbols, got %zu", n_,
                  received.size());
    for (unsigned i : erasures)
        GFP_ASSERT(i < n_, "erasure position %u out of range", i);

    DecodeResult res;
    res.codeword = received;
    if (erasures.size() > 2 * t_)
        return res; // beyond the design distance outright

    // Ignore the received values at erased positions.
    std::vector<GFElem> rx = received;
    for (unsigned i : erasures)
        rx[i] = 0;

    std::vector<GFElem> synd = syndromes(*field_, rx, 2 * t_);
    bool all_zero = true;
    for (GFElem s : synd)
        all_zero &= (s == 0);
    if (all_zero && erasures.empty()) {
        res.ok = true;
        return res;
    }

    GFPoly psi = berlekampMasseyErasures(*field_, synd, erasures);
    unsigned nu = static_cast<unsigned>(psi.degree());
    if (nu > 2 * t_)
        return res;

    std::vector<unsigned> locations = chienSearch(*field_, psi, n_);
    if (locations.size() != nu)
        return res;

    std::vector<GFElem> values = forney(*field_, synd, psi, locations);
    res.codeword = rx;
    for (size_t i = 0; i < locations.size(); ++i)
        res.codeword[locations[i]] ^= values[i];

    if (!isCodeword(res.codeword)) {
        res.codeword = received;
        return res;
    }
    res.ok = true;
    res.errors = nu;
    return res;
}

RSCode::DecodeResult
RSCode::decode(const std::vector<GFElem> &received) const
{
    if (received.size() != n_)
        GFP_FATAL("RS decode: expected %u symbols, got %zu", n_,
                  received.size());

    DecodeResult res;
    res.codeword = received;

    std::vector<GFElem> synd = syndromes(*field_, received, 2 * t_);
    bool all_zero = true;
    for (GFElem s : synd)
        all_zero &= (s == 0);
    if (all_zero) {
        res.ok = true;
        return res;
    }

    GFPoly lambda = berlekampMassey(*field_, synd);
    unsigned nu = static_cast<unsigned>(lambda.degree());
    if (nu > t_)
        return res;

    std::vector<unsigned> locations = chienSearch(*field_, lambda, n_);
    if (locations.size() != nu)
        return res;

    std::vector<GFElem> values = forney(*field_, synd, lambda, locations);
    for (size_t i = 0; i < locations.size(); ++i)
        res.codeword[locations[i]] ^= values[i];

    if (!isCodeword(res.codeword)) {
        res.codeword = received;
        return res;
    }

    res.ok = true;
    res.errors = nu;
    return res;
}

ShortenedRSCode::ShortenedRSCode(unsigned m, unsigned t, unsigned n_short,
                                 uint32_t poly)
    : parent_(m, t, poly), n_(n_short)
{
    if (n_short <= 2 * t || n_short >= parent_.n())
        GFP_FATAL("shortened length %u must be in (2t, %u)", n_short,
                  parent_.n());
    k_ = n_ - 2 * t;
}

std::vector<GFElem>
ShortenedRSCode::encode(const std::vector<GFElem> &info) const
{
    if (info.size() != k_)
        GFP_FATAL("shortened RS encode: expected %u symbols, got %zu",
                  k_, info.size());
    // Pad the parent's information block with zeros in the top
    // (never-transmitted) positions.
    std::vector<GFElem> full(parent_.k(), 0);
    std::copy(info.begin(), info.end(), full.begin());
    auto cw = parent_.encode(full);
    cw.resize(n_); // the dropped symbols are all zero by construction
    return cw;
}

RSCode::DecodeResult
ShortenedRSCode::decode(const std::vector<GFElem> &received) const
{
    if (received.size() != n_)
        GFP_FATAL("shortened RS decode: expected %u symbols, got %zu",
                  n_, received.size());
    std::vector<GFElem> full = received;
    full.resize(parent_.n(), 0);
    auto res = parent_.decode(full);
    // A "correction" that lands in the never-transmitted zero tail is a
    // miscorrection: those symbols are zero by construction.
    if (res.ok) {
        for (unsigned i = n_; i < parent_.n(); ++i) {
            if (res.codeword[i] != 0) {
                res.ok = false;
                res.codeword = full;
                break;
            }
        }
    }
    res.codeword.resize(n_);
    return res;
}

std::vector<GFElem>
ShortenedRSCode::extractInfo(const std::vector<GFElem> &cw) const
{
    GFP_ASSERT(cw.size() == n_);
    return std::vector<GFElem>(cw.begin() + 2 * t(), cw.end());
}

} // namespace gfp
