#include "coding/decoder_kernels.h"

#include "common/logging.h"

namespace gfp {

std::vector<GFElem>
syndromes(const GFField &field, const std::vector<GFElem> &received,
          unsigned two_t)
{
    // S_j = r(alpha^j), computed with Horner's rule exactly as the
    // kernels on the processor do (Table 6):
    //   S = S * alpha^j + r_i, scanning from the top coefficient down.
    std::vector<GFElem> out(two_t, 0);
    for (unsigned j = 1; j <= two_t; ++j) {
        GFElem aj = field.exp(j);
        GFElem s = 0;
        for (size_t i = received.size(); i-- > 0;)
            s = field.mul(s, aj) ^ received[i];
        out[j - 1] = s;
    }
    return out;
}

GFPoly
berlekampMassey(const GFField &field, const std::vector<GFElem> &synd)
{
    // Massey's iterative construction of the shortest LFSR generating
    // the syndrome sequence.
    GFPoly c = GFPoly::constant(field, 1); // current connection poly
    GFPoly b = GFPoly::constant(field, 1); // copy at last length change
    unsigned l = 0;                        // current LFSR length
    unsigned m = 1;                        // gap since last length change
    GFElem bb = 1;                         // discrepancy at that point

    for (size_t n = 0; n < synd.size(); ++n) {
        // Discrepancy d = S_n + sum_{i=1..l} c_i S_{n-i}.
        GFElem d = synd[n];
        for (unsigned i = 1; i <= l; ++i)
            d ^= field.mul(c.coeff(i), synd[n - i]);

        if (d == 0) {
            ++m;
        } else if (2 * l <= n) {
            GFPoly t = c;
            GFElem coef = field.div(d, bb);
            c = c + (b * coef).shift(m);
            l = static_cast<unsigned>(n + 1 - l);
            b = t;
            bb = d;
            m = 1;
        } else {
            GFElem coef = field.div(d, bb);
            c = c + (b * coef).shift(m);
            ++m;
        }
    }
    return c;
}

std::vector<unsigned>
chienSearch(const GFField &field, const GFPoly &lambda, unsigned n)
{
    // Evaluate Lambda at alpha^-i for each position i.  (A hardware
    // Chien search keeps per-coefficient accumulators multiplied by
    // alpha^j each step; evaluation order does not change the result.)
    std::vector<unsigned> locations;
    const uint32_t group = field.groupOrder();
    for (unsigned i = 0; i < n; ++i) {
        GFElem x = field.exp((group - i) % group); // alpha^-i
        if (lambda.eval(x) == 0)
            locations.push_back(i);
    }
    return locations;
}

GFPoly
erasureLocator(const GFField &field, const std::vector<unsigned> &erasures)
{
    GFPoly gamma = GFPoly::constant(field, 1);
    for (unsigned i : erasures)
        gamma = gamma * GFPoly(field, {1, field.exp(i)});
    return gamma;
}

GFPoly
berlekampMasseyErasures(const GFField &field,
                        const std::vector<GFElem> &synd,
                        const std::vector<unsigned> &erasures)
{
    const unsigned e = static_cast<unsigned>(erasures.size());
    GFP_ASSERT(e <= synd.size(), "more erasures than syndromes");

    // Initialize both registers to the erasure locator and run the
    // Massey iterations only for the remaining 2t - e steps.
    GFPoly c = erasureLocator(field, erasures);
    GFPoly b = c;
    unsigned l = e;

    for (size_t r = e + 1; r <= synd.size(); ++r) {
        // discrepancy = sum_i c_i * S_{r-i}  (S_j = synd[j-1])
        GFElem d = 0;
        for (unsigned i = 0; i <= static_cast<unsigned>(c.degree()) &&
                             i < r; ++i) {
            d ^= field.mul(c.coeff(i), synd[r - i - 1]);
        }
        if (d == 0) {
            b = b.shift(1);
        } else if (2 * l <= r + e - 1) {
            GFPoly t = c;
            c = c + b.shift(1) * d;
            l = static_cast<unsigned>(r + e - l);
            b = t * field.inv(d);
        } else {
            c = c + b.shift(1) * d;
            b = b.shift(1);
        }
    }
    return c;
}

GFPoly
closedFormElpBch(const GFField &field, const std::vector<GFElem> &synd,
                 unsigned t)
{
    GFP_ASSERT(t >= 1 && t <= 3,
               "closed-form ELP covers t <= 3 (use BMA beyond)");
    GFP_ASSERT(synd.size() >= 2 * t);
    const GFElem s1 = synd[0];
    const GFElem s3 = t >= 2 ? synd[2] : 0;
    const GFElem s5 = t >= 3 ? synd[4] : 0;

    // nu = 3:  L1 = S1, L2 = (S1^2 S3 + S5)/(S1^3 + S3),
    //          L3 = (S1^3 + S3) + S1 L2        (Newton identities)
    if (t >= 3) {
        GFElem denom = field.mul(field.mul(s1, s1), s1) ^ s3;
        if (denom != 0) {
            GFElem num = field.mul(field.sqr(s1), s3) ^ s5;
            GFElem l1 = s1;
            GFElem l2 = field.div(num, denom);
            GFElem l3 = denom ^ field.mul(s1, l2);
            if (l3 != 0)
                return GFPoly(field, {1, l1, l2, l3});
            // fall through to nu = 2 forms when L3 degenerates
        }
    }
    // nu = 2:  L1 = S1, L2 = (S3 + S1^3)/S1
    if (t >= 2 && s1 != 0) {
        GFElem l2 = field.div(s3 ^ field.mul(field.sqr(s1), s1), s1);
        if (l2 != 0)
            return GFPoly(field, {1, s1, l2});
    }
    // nu = 1:  L = 1 + S1 x
    if (s1 != 0)
        return GFPoly(field, {1, s1});
    return GFPoly::constant(field, 1);
}

std::vector<GFElem>
forney(const GFField &field, const std::vector<GFElem> &synd,
       const GFPoly &lambda, const std::vector<unsigned> &locations)
{
    // Omega(x) = S(x) * Lambda(x) mod x^2t.
    GFPoly s_poly(field, synd);
    GFPoly omega = (s_poly * lambda).truncated(synd.size());
    GFPoly lambda_prime = lambda.derivative();

    const uint32_t group = field.groupOrder();
    std::vector<GFElem> values;
    values.reserve(locations.size());
    for (unsigned i : locations) {
        GFElem x_inv = field.exp((group - i) % group); // X_k^-1
        GFElem denom = lambda_prime.eval(x_inv);
        if (denom == 0) {
            GFP_FATAL("Forney: Lambda'(X^-1) == 0 at location %u "
                      "(malformed locator polynomial)", i);
        }
        values.push_back(field.div(omega.eval(x_inv), denom));
    }
    return values;
}

} // namespace gfp
