#include "coding/bch.h"

#include "coding/decoder_kernels.h"
#include "coding/minpoly.h"
#include "common/logging.h"

namespace gfp {

BCHCode::BCHCode(unsigned m, unsigned t, uint32_t poly)
    : t_(t), field_(std::make_shared<GFField>(m, poly))
{
    if (!field_->primitive())
        GFP_FATAL("BCH construction requires a primitive field polynomial");
    n_ = field_->groupOrder();
    generator_ = bchGenerator(*field_, t);
    int deg = generator_.degree();
    if (deg >= static_cast<int>(n_))
        GFP_FATAL("BCH(m=%u, t=%u): generator degree %d leaves no "
                  "information bits", m, t, deg);
    k_ = n_ - static_cast<unsigned>(deg);
}

std::vector<uint8_t>
BCHCode::encode(const std::vector<uint8_t> &info) const
{
    if (info.size() != k_)
        GFP_FATAL("BCH encode: expected %u info bits, got %zu", k_,
                  info.size());
    // Systematic: c(x) = info(x) * x^(n-k) + (info(x) * x^(n-k) mod g).
    Gf2x ipoly;
    for (unsigned i = 0; i < k_; ++i)
        if (info[i] & 1)
            ipoly.setBit(i, 1);
    Gf2x shifted = ipoly.shiftLeft(n_ - k_);
    Gf2x cw = shifted ^ shifted.mod(generator_);

    std::vector<uint8_t> out(n_, 0);
    for (unsigned i = 0; i < n_; ++i)
        out[i] = static_cast<uint8_t>(cw.getBit(i));
    return out;
}

std::vector<uint8_t>
BCHCode::extractInfo(const std::vector<uint8_t> &cw) const
{
    GFP_ASSERT(cw.size() == n_);
    return std::vector<uint8_t>(cw.begin() + (n_ - k_), cw.end());
}

bool
BCHCode::isCodeword(const std::vector<uint8_t> &word) const
{
    GFP_ASSERT(word.size() == n_);
    std::vector<GFElem> r(word.begin(), word.end());
    for (GFElem s : syndromes(*field_, r, 2 * t_))
        if (s != 0)
            return false;
    return true;
}

BCHCode::DecodeResult
BCHCode::decode(const std::vector<uint8_t> &received) const
{
    if (received.size() != n_)
        GFP_FATAL("BCH decode: expected %u bits, got %zu", n_,
                  received.size());

    DecodeResult res;
    res.codeword = received;

    std::vector<GFElem> r(received.begin(), received.end());
    std::vector<GFElem> synd = syndromes(*field_, r, 2 * t_);

    bool all_zero = true;
    for (GFElem s : synd)
        all_zero &= (s == 0);
    if (all_zero) {
        res.ok = true;
        return res; // no errors: skip the rest of the datapath
    }

    GFPoly lambda = berlekampMassey(*field_, synd);
    unsigned nu = static_cast<unsigned>(lambda.degree());
    if (nu > t_)
        return res; // more errors than the designed distance covers

    std::vector<unsigned> locations = chienSearch(*field_, lambda, n_);
    if (locations.size() != nu)
        return res; // locator didn't split over the field: uncorrectable

    for (unsigned i : locations)
        res.codeword[i] ^= 1; // binary errors: flipping corrects

    // Re-check: a miscorrection beyond the designed distance could
    // still leave a non-codeword.
    if (!isCodeword(res.codeword))
        return res;

    res.ok = true;
    res.errors = nu;
    return res;
}

} // namespace gfp
