/**
 * @file
 * Reed-Solomon codes over GF(2^m) — the multi-burst-error scheme of the
 * paper's flexible-coding story (its running example is RS(255,239,8)
 * on GF(2^8)).  Symbols are field elements; codewords store the
 * coefficient of x^i at index i, with the k information symbols in the
 * top positions (systematic encoding).
 */

#ifndef GFP_CODING_RS_H
#define GFP_CODING_RS_H

#include <memory>
#include <vector>

#include "gf/field.h"
#include "gf/poly.h"

namespace gfp {

class RSCode
{
  public:
    /**
     * The (n = 2^m - 1, k = n - 2t) narrow-sense Reed-Solomon code.
     * @param poly optional primitive field polynomial.
     */
    RSCode(unsigned m, unsigned t, uint32_t poly = 0);

    unsigned n() const { return n_; }
    unsigned k() const { return k_; }
    unsigned t() const { return t_; }
    double rate() const { return static_cast<double>(k_) / n_; }
    const GFField &field() const { return *field_; }
    const GFPoly &generator() const { return generator_; }

    /** Systematic encode of k information symbols. */
    std::vector<GFElem> encode(const std::vector<GFElem> &info) const;

    /** Extract the k information symbols from a corrected codeword. */
    std::vector<GFElem> extractInfo(const std::vector<GFElem> &cw) const;

    struct DecodeResult
    {
        std::vector<GFElem> codeword;
        bool ok = false;
        unsigned errors = 0; ///< symbols corrected
    };

    /**
     * Full decode: syndromes, Berlekamp-Massey, Chien search, Forney.
     * Corrects up to t symbol errors; flags uncorrectable words.
     */
    DecodeResult decode(const std::vector<GFElem> &received) const;

    /**
     * Errors-and-erasures decode: positions in @p erasures are known
     * to be unreliable (their received values are ignored).  Corrects
     * nu errors plus e erasures whenever 2*nu + e <= 2t — e.g. a full
     * 2t = 16 erased symbols with no other errors for RS(255,239,8).
     */
    DecodeResult decodeWithErasures(
        const std::vector<GFElem> &received,
        const std::vector<unsigned> &erasures) const;

    bool isCodeword(const std::vector<GFElem> &word) const;

  private:
    unsigned n_, k_, t_;
    std::shared_ptr<GFField> field_;
    GFPoly generator_;
};

/**
 * A shortened Reed-Solomon code RS(n', k') with n' < 2^m - 1: the top
 * n - n' information symbols of the parent code are fixed at zero and
 * never transmitted.  Shortening is how the flexible-coding story
 * matches codeword length to IoT packet sizes (Sec. 1.1's "short
 * (<100s bits) codeword"): the same decoder datapath serves every n'.
 */
class ShortenedRSCode
{
  public:
    /** Shorten the (2^m - 1, 2^m - 1 - 2t) parent down to length n'. */
    ShortenedRSCode(unsigned m, unsigned t, unsigned n_short,
                    uint32_t poly = 0);

    unsigned n() const { return n_; }
    unsigned k() const { return k_; }
    unsigned t() const { return parent_.t(); }
    double rate() const { return static_cast<double>(k_) / n_; }
    const RSCode &parent() const { return parent_; }

    std::vector<GFElem> encode(const std::vector<GFElem> &info) const;

    RSCode::DecodeResult decode(const std::vector<GFElem> &received) const;

    std::vector<GFElem> extractInfo(const std::vector<GFElem> &cw) const;

  private:
    RSCode parent_;
    unsigned n_, k_;
};

} // namespace gfp

#endif // GFP_CODING_RS_H
