/**
 * @file
 * Channel models for the coding-flexibility experiments: the paper's
 * motivation (Sec. 1.1) is that BCH suits uniformly distributed bit
 * errors while RS suits multi-burst errors, so the workload generator
 * provides both error statistics.
 */

#ifndef GFP_CODING_CHANNEL_H
#define GFP_CODING_CHANNEL_H

#include <vector>

#include "common/random.h"
#include "gf/field.h"

namespace gfp {

/** Binary symmetric channel: each bit flips independently w.p. p. */
class BscChannel
{
  public:
    BscChannel(double p, uint64_t seed) : p_(p), rng_(seed) {}

    /** Transmit a bit vector (entries 0/1), flipping bits in place. */
    std::vector<uint8_t> transmit(std::vector<uint8_t> bits);

    /** Flip bits inside the bit-packed symbols of an RS codeword. */
    std::vector<GFElem> transmitSymbols(std::vector<GFElem> symbols,
                                        unsigned bits_per_symbol);

    uint64_t bitErrors() const { return bit_errors_; }

  private:
    double p_;
    Rng rng_;
    uint64_t bit_errors_ = 0;
};

/**
 * Gilbert-Elliott burst channel: a two-state Markov chain (good/bad)
 * with per-state bit-error probabilities.  Produces the clustered
 * error patterns RS codes are built for.
 */
class GilbertElliottChannel
{
  public:
    /**
     * @param p_gb  P(good -> bad) per bit
     * @param p_bg  P(bad -> good) per bit
     * @param pe_good error probability in the good state
     * @param pe_bad  error probability in the bad state
     */
    GilbertElliottChannel(double p_gb, double p_bg, double pe_good,
                          double pe_bad, uint64_t seed)
        : p_gb_(p_gb), p_bg_(p_bg), pe_good_(pe_good), pe_bad_(pe_bad),
          rng_(seed)
    {
    }

    std::vector<uint8_t> transmit(std::vector<uint8_t> bits);

    std::vector<GFElem> transmitSymbols(std::vector<GFElem> symbols,
                                        unsigned bits_per_symbol);

    uint64_t bitErrors() const { return bit_errors_; }

  private:
    bool stepAndFlip();

    double p_gb_, p_bg_, pe_good_, pe_bad_;
    Rng rng_;
    bool bad_ = false;
    uint64_t bit_errors_ = 0;
};

/**
 * Bursty arrival-trace generator: the Gilbert-Elliott chain lifted from
 * bit errors to *request arrivals*.  A two-state continuous-time chain
 * (good/bad) with exponential sojourn times modulates a Poisson arrival
 * process — the good state models background telemetry traffic, the bad
 * state the burst that follows an outage or a retransmission storm (the
 * same burst-loss regime that motivates RS erasure repair).  The
 * service load generator (tools/gfp-loadgen --ge) replays the emitted
 * timestamps open-loop against gfp-serve.
 */
class GilbertElliottArrivals
{
  public:
    /**
     * @param mean_good_s  mean sojourn in the good state, seconds
     * @param mean_bad_s   mean sojourn in the bad (burst) state
     * @param rate_good_hz Poisson arrival rate while good
     * @param rate_bad_hz  Poisson arrival rate while bad (the burst)
     */
    GilbertElliottArrivals(double mean_good_s, double mean_bad_s,
                           double rate_good_hz, double rate_bad_hz,
                           uint64_t seed);

    /** Arrival timestamps in [0, duration_s), strictly increasing.
     *  Deterministic for a given (parameters, seed). */
    std::vector<double> generate(double duration_s);

    /** Fraction of the last generate() call spent in the bad state. */
    double badFraction() const { return bad_fraction_; }

  private:
    /** Exponential draw with mean @p mean (inverse-CDF on a uniform). */
    double expDraw(double mean);

    double mean_good_s_, mean_bad_s_, rate_good_hz_, rate_bad_hz_;
    Rng rng_;
    double bad_fraction_ = 0;
};

/**
 * Exact-weight error injector: flips exactly @p count random positions
 * (bits or symbols) — the deterministic workload used to exercise a
 * decoder at a chosen error weight.
 */
class ExactErrorInjector
{
  public:
    explicit ExactErrorInjector(uint64_t seed) : rng_(seed) {}

    /** Flip exactly @p count distinct bits. */
    std::vector<uint8_t> flipBits(std::vector<uint8_t> bits,
                                  unsigned count);

    /** Corrupt exactly @p count distinct symbols to random wrong values. */
    std::vector<GFElem> corruptSymbols(std::vector<GFElem> symbols,
                                       unsigned count, unsigned m);

    /** Pick @p count distinct positions in [0, n). */
    std::vector<unsigned> pickPositions(unsigned n, unsigned count);

  private:
    Rng rng_;
};

} // namespace gfp

#endif // GFP_CODING_CHANNEL_H
