/**
 * @file
 * Channel models for the coding-flexibility experiments: the paper's
 * motivation (Sec. 1.1) is that BCH suits uniformly distributed bit
 * errors while RS suits multi-burst errors, so the workload generator
 * provides both error statistics.
 */

#ifndef GFP_CODING_CHANNEL_H
#define GFP_CODING_CHANNEL_H

#include <vector>

#include "common/random.h"
#include "gf/field.h"

namespace gfp {

/** Binary symmetric channel: each bit flips independently w.p. p. */
class BscChannel
{
  public:
    BscChannel(double p, uint64_t seed) : p_(p), rng_(seed) {}

    /** Transmit a bit vector (entries 0/1), flipping bits in place. */
    std::vector<uint8_t> transmit(std::vector<uint8_t> bits);

    /** Flip bits inside the bit-packed symbols of an RS codeword. */
    std::vector<GFElem> transmitSymbols(std::vector<GFElem> symbols,
                                        unsigned bits_per_symbol);

    uint64_t bitErrors() const { return bit_errors_; }

  private:
    double p_;
    Rng rng_;
    uint64_t bit_errors_ = 0;
};

/**
 * Gilbert-Elliott burst channel: a two-state Markov chain (good/bad)
 * with per-state bit-error probabilities.  Produces the clustered
 * error patterns RS codes are built for.
 */
class GilbertElliottChannel
{
  public:
    /**
     * @param p_gb  P(good -> bad) per bit
     * @param p_bg  P(bad -> good) per bit
     * @param pe_good error probability in the good state
     * @param pe_bad  error probability in the bad state
     */
    GilbertElliottChannel(double p_gb, double p_bg, double pe_good,
                          double pe_bad, uint64_t seed)
        : p_gb_(p_gb), p_bg_(p_bg), pe_good_(pe_good), pe_bad_(pe_bad),
          rng_(seed)
    {
    }

    std::vector<uint8_t> transmit(std::vector<uint8_t> bits);

    std::vector<GFElem> transmitSymbols(std::vector<GFElem> symbols,
                                        unsigned bits_per_symbol);

    uint64_t bitErrors() const { return bit_errors_; }

  private:
    bool stepAndFlip();

    double p_gb_, p_bg_, pe_good_, pe_bad_;
    Rng rng_;
    bool bad_ = false;
    uint64_t bit_errors_ = 0;
};

/**
 * Exact-weight error injector: flips exactly @p count random positions
 * (bits or symbols) — the deterministic workload used to exercise a
 * decoder at a chosen error weight.
 */
class ExactErrorInjector
{
  public:
    explicit ExactErrorInjector(uint64_t seed) : rng_(seed) {}

    /** Flip exactly @p count distinct bits. */
    std::vector<uint8_t> flipBits(std::vector<uint8_t> bits,
                                  unsigned count);

    /** Corrupt exactly @p count distinct symbols to random wrong values. */
    std::vector<GFElem> corruptSymbols(std::vector<GFElem> symbols,
                                       unsigned count, unsigned m);

    /** Pick @p count distinct positions in [0, n). */
    std::vector<unsigned> pickPositions(unsigned n, unsigned count);

  private:
    Rng rng_;
};

} // namespace gfp

#endif // GFP_CODING_CHANNEL_H
