/**
 * @file
 * Binary BCH codes over GF(2^m) with arbitrary designed error-correcting
 * ability t — the uniformly-distributed-bit-error workhorse of the
 * paper's flexible-coding story (its running example is BCH(31,11,5)
 * on GF(2^5)).
 *
 * Codewords and information blocks are bit vectors (one 0/1 byte per
 * bit, index i = coefficient of x^i).  Encoding is systematic: the k
 * information bits occupy the top coefficients.
 */

#ifndef GFP_CODING_BCH_H
#define GFP_CODING_BCH_H

#include <memory>
#include <vector>

#include "gf/field.h"
#include "gf/gf2x.h"

namespace gfp {

class BCHCode
{
  public:
    /**
     * Construct the binary BCH code of length n = 2^m - 1 with designed
     * correcting ability t.  k follows from the generator degree
     * (e.g. m=5, t=5 gives BCH(31,11,5); m=6, t=2 gives BCH(63,51,2)).
     * @param poly optional field polynomial (must be primitive).
     */
    BCHCode(unsigned m, unsigned t, uint32_t poly = 0);

    unsigned n() const { return n_; }
    unsigned k() const { return k_; }
    unsigned t() const { return t_; }
    double rate() const { return static_cast<double>(k_) / n_; }
    const GFField &field() const { return *field_; }
    const Gf2x &generator() const { return generator_; }

    /** Systematic encode of @p info (k bits) into an n-bit codeword. */
    std::vector<uint8_t> encode(const std::vector<uint8_t> &info) const;

    /** Extract the k information bits from a (corrected) codeword. */
    std::vector<uint8_t> extractInfo(const std::vector<uint8_t> &cw) const;

    struct DecodeResult
    {
        std::vector<uint8_t> codeword; ///< corrected codeword
        bool ok = false;               ///< decoding succeeded
        unsigned errors = 0;           ///< number of bits corrected
    };

    /**
     * Decode an n-bit received word: syndromes, Berlekamp-Massey, Chien
     * search, bit flips.  ok == false flags a detected-but-uncorrectable
     * word (more than t errors that didn't alias onto a codeword).
     */
    DecodeResult decode(const std::vector<uint8_t> &received) const;

    /** True if @p word is a codeword (all syndromes zero). */
    bool isCodeword(const std::vector<uint8_t> &word) const;

  private:
    unsigned n_, k_, t_;
    std::shared_ptr<GFField> field_;
    Gf2x generator_;
};

} // namespace gfp

#endif // GFP_CODING_BCH_H
