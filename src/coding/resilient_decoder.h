/**
 * @file
 * Graceful degradation for the BCH/RS decode path under SEUs.
 *
 * The hardware syndrome screen (a Machine running a GF-core syndrome
 * kernel) is the fault-exposed stage: an injected upset can trap the
 * guest (config m-field flip, corrupted instruction, wild access) or —
 * the dangerous class — silently select a wrong reduction matrix and
 * produce valid-looking wrong syndromes.  The ResilientDecoder closes
 * the loop:
 *
 *   1. run the screen; on a trap, *scrub* — reset the core, re-issue
 *      the known-good gfConfig blob and the received word — and retry;
 *   2. cross-check the screen's syndromes against an independent
 *      software recomputation (redundant recompute, the standard SEU
 *      detection for unprotected datapaths); mismatch also scrubs;
 *   3. decode on the host reference codec; on an RS decode failure,
 *      escalate to errors-and-erasures using caller-provided erasure
 *      hints (e.g. channel burst-state flags);
 *   4. report a structured outcome:
 *        kCorrected             decoded without any scrub
 *        kRecoveredAfterScrub   decoded, but only after >= 1 scrub
 *        kDetectedUncorrectable decode failed; flagged, never silent
 *
 * The screen program is supplied by the caller (generated with
 * kernels/coding_kernels.h) so this layer stays independent of the
 * kernel generators.
 */

#ifndef GFP_CODING_RESILIENT_DECODER_H
#define GFP_CODING_RESILIENT_DECODER_H

#include <string>
#include <vector>

#include "coding/bch.h"
#include "coding/rs.h"
#include "sim/machine.h"

namespace gfp {

enum class ResilientOutcome
{
    kCorrected,
    kRecoveredAfterScrub,
    kDetectedUncorrectable,
};

const char *resilientOutcomeName(ResilientOutcome outcome);

/** The fault-exposed syndrome-screen stage and its data labels. */
struct ScreenProgram
{
    std::string asm_source;          ///< e.g. syndromeAsmGfcore(...)
    std::string rx_label = "rxdata"; ///< received word, 1 symbol/byte
    std::string synd_label = "synd"; ///< 2t output syndromes
    std::string cfg_label = "cfg";   ///< 64-bit gfConfig blob
};

/** What happened on one resilient decode. */
struct ResilientReport
{
    ResilientOutcome outcome = ResilientOutcome::kDetectedUncorrectable;
    unsigned errors = 0;        ///< bits/symbols corrected by the codec
    unsigned scrubs = 0;        ///< screen retries with config re-issue
    bool screen_agreed = false; ///< screen matched the software check
    bool escalated_to_erasures = false; ///< RS errors-and-erasures used
    Trap last_trap;             ///< last screen trap (kind kNone if none)

    std::string summary() const;
};

/**
 * Shared screen runner: executes the syndrome kernel on the simulated
 * GF core with scrub-and-retry.  Exposed so soak tests can drive the
 * screen directly; the decoders below own one each.
 */
class SyndromeScreen
{
  public:
    SyndromeScreen(const GFField &field, ScreenProgram spec,
                   unsigned two_t);

    /** The simulated core (attachment point for a FaultInjector). */
    Core &core() { return machine_.core(); }
    Machine &machine() { return machine_; }

    struct Result
    {
        bool trusted = false;       ///< screen agreed with the recompute
        std::vector<GFElem> synd;   ///< syndromes from the last attempt
        unsigned scrubs = 0;
        Trap last_trap;
    };

    /**
     * Run the screen over @p rx (one symbol per byte), retrying with a
     * scrub after each trap or after a mismatch against
     * @p expected_synd, up to @p max_scrubs times.
     */
    Result run(const std::vector<uint8_t> &rx,
               const std::vector<GFElem> &expected_synd,
               unsigned max_scrubs);

  private:
    void scrub(const std::vector<uint8_t> &rx);

    Machine machine_;
    ScreenProgram spec_;
    unsigned two_t_;
    uint64_t good_blob_; ///< known-good gfConfig image for scrubbing
};

class ResilientRsDecoder
{
  public:
    ResilientRsDecoder(unsigned m, unsigned t, ScreenProgram screen,
                       unsigned max_scrubs = 2);

    const RSCode &code() const { return code_; }
    Core &core() { return screen_.core(); }

    struct Result
    {
        ResilientReport report;
        std::vector<GFElem> codeword; ///< corrected (valid if decoded)
    };

    /**
     * Resiliently decode @p received.  @p erasure_hints are positions
     * the caller believes unreliable (channel state information); they
     * are used only if plain decoding fails.
     */
    Result decode(const std::vector<GFElem> &received,
                  const std::vector<unsigned> &erasure_hints = {});

  private:
    RSCode code_;
    SyndromeScreen screen_;
    unsigned max_scrubs_;
};

class ResilientBchDecoder
{
  public:
    ResilientBchDecoder(unsigned m, unsigned t, ScreenProgram screen,
                        unsigned max_scrubs = 2);

    const BCHCode &code() const { return code_; }
    Core &core() { return screen_.core(); }

    struct Result
    {
        ResilientReport report;
        std::vector<uint8_t> codeword;
    };

    Result decode(const std::vector<uint8_t> &received);

  private:
    BCHCode code_;
    SyndromeScreen screen_;
    unsigned max_scrubs_;
};

} // namespace gfp

#endif // GFP_CODING_RESILIENT_DECODER_H
