/**
 * @file
 * The four decoder kernels of the paper's Fig. 1 / Table 5, as
 * standalone reference functions over a GFField:
 *
 *   syndromes          — evaluate the received word at alpha^1..alpha^2t
 *   berlekampMassey    — solve the error-locator polynomial Lambda(x)
 *   chienSearch        — find Lambda's roots => error locations
 *   forney             — compute the error *values* (RS only)
 *
 * The assembly kernels that run on the simulated cores are validated
 * against these functions, and the BCH/RS codec classes are built from
 * them.
 */

#ifndef GFP_CODING_DECODER_KERNELS_H
#define GFP_CODING_DECODER_KERNELS_H

#include <vector>

#include "gf/field.h"
#include "gf/poly.h"

namespace gfp {

/**
 * Syndromes S_1..S_2t of a received word r (r[i] is the coefficient of
 * x^i, i = 0..n-1): S_j = r(alpha^j).  All-zero syndromes mean the word
 * is a codeword.
 */
std::vector<GFElem> syndromes(const GFField &field,
                              const std::vector<GFElem> &received,
                              unsigned two_t);

/**
 * Berlekamp-Massey: the minimal LFSR Lambda(x) (Lambda(0) = 1) with
 * sum_i Lambda_i S_{j-i} = 0 for all j.  Returns Lambda; its degree is
 * the number of errors when decodable.
 */
GFPoly berlekampMassey(const GFField &field,
                       const std::vector<GFElem> &synd);

/**
 * Chien search: positions i in [0, n) with Lambda(alpha^-i) == 0,
 * i.e. the error locations.
 */
std::vector<unsigned> chienSearch(const GFField &field, const GFPoly &lambda,
                                  unsigned n);

/**
 * Forney's algorithm: error values at the given locations, for
 * narrow-sense codes (first consecutive root alpha^1).
 * Omega(x) = S(x) Lambda(x) mod x^2t with S(x) = sum S_{j+1} x^j;
 * e_k = Omega(X_k^-1) / Lambda'(X_k^-1) with X_k = alpha^(i_k).
 */
std::vector<GFElem> forney(const GFField &field,
                           const std::vector<GFElem> &synd,
                           const GFPoly &lambda,
                           const std::vector<unsigned> &locations);

/** Erasure locator Gamma(x) = prod_{i in erasures} (1 + alpha^i x). */
GFPoly erasureLocator(const GFField &field,
                      const std::vector<unsigned> &erasures);

/**
 * Berlekamp-Massey with erasure initialization: returns the *errata*
 * locator psi(x) = lambda(x) * Gamma(x) covering both the unknown
 * errors and the declared erasures.  Decodable when
 * 2*(errors) + |erasures| <= |synd|.
 */
GFPoly berlekampMasseyErasures(const GFField &field,
                               const std::vector<GFElem> &synd,
                               const std::vector<unsigned> &erasures);

/**
 * Closed-form error-locator polynomial for binary BCH with t <= 3
 * (the "Closed Form ELP" kernel of the paper's Fig. 1(a)): solves the
 * Newton identities directly from the odd syndromes S1/S3/S5 instead
 * of iterating Berlekamp-Massey.  Returns the locator for the largest
 * consistent error count <= t.
 */
GFPoly closedFormElpBch(const GFField &field,
                        const std::vector<GFElem> &synd, unsigned t);

} // namespace gfp

#endif // GFP_CODING_DECODER_KERNELS_H
