/**
 * @file
 * Validation of the GF(2^233) and K-233 assembly kernels against the
 * BinaryField / EllipticCurve reference models, including the Table 7
 * operation-count budget of the direct product and the Karatsuba
 * partial-product saving.
 */

#include <gtest/gtest.h>

#include "crypto/ecc.h"
#include "gf/binary_field.h"
#include "kernels/wide_kernels.h"
#include "sim/machine.h"

namespace gfp {
namespace {

const BinaryField &
k233()
{
    static const BinaryField f = BinaryField::nist("233");
    return f;
}

std::vector<uint8_t>
elemBytes(const Gf2x &v)
{
    auto words = v.toWords32(8);
    std::vector<uint8_t> out;
    for (uint32_t w : words)
        for (unsigned b = 0; b < 4; ++b)
            out.push_back(static_cast<uint8_t>(w >> (8 * b)));
    return out;
}

Gf2x
readElem(Machine &m, const std::string &label)
{
    auto bytes = m.readBytes(label, 32);
    std::vector<uint32_t> words(8);
    for (unsigned i = 0; i < 8; ++i)
        for (unsigned b = 0; b < 4; ++b)
            words[i] |= static_cast<uint32_t>(bytes[4 * i + b]) << (8 * b);
    return Gf2x::fromWords32(words);
}

TEST(WideKernels, Mult233DirectMatchesReference)
{
    Machine m(mult233DirectAsm(), CoreKind::kGfProcessor);
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        Gf2x a = k233().randomElement(seed);
        Gf2x b = k233().randomElement(seed + 50);
        m.reset();
        m.writeBytes("opa", elemBytes(a));
        m.writeBytes("opb", elemBytes(b));
        m.runOk();
        EXPECT_EQ(readElem(m, "result"), k233().mul(a, b))
            << "seed=" << seed;
    }
}

TEST(WideKernels, Mult233DirectOperationBudget)
{
    // Table 7: the direct product issues exactly 64 gf32bMult partial
    // products; the whole multiply lands near the paper's 599 cycles.
    Machine m(mult233DirectAsm(), CoreKind::kGfProcessor);
    m.writeBytes("opa", elemBytes(k233().randomElement(3)));
    m.writeBytes("opb", elemBytes(k233().randomElement(4)));
    CycleStats s = m.runOk();
    EXPECT_EQ(s.gf32_ops, 64u);
    EXPECT_GT(s.cycles, 450u);
    EXPECT_LT(s.cycles, 800u);
}

TEST(WideKernels, Mult233KaratsubaMatchesAndSaves)
{
    Machine direct(mult233DirectAsm(), CoreKind::kGfProcessor);
    Machine kara(mult233KaratsubaAsm(), CoreKind::kGfProcessor);
    Gf2x a = k233().randomElement(7);
    Gf2x b = k233().randomElement(8);
    for (Machine *m : {&direct, &kara}) {
        m->writeBytes("opa", elemBytes(a));
        m->writeBytes("opb", elemBytes(b));
    }
    CycleStats sd = direct.runOk();
    CycleStats sk = kara.runOk();
    EXPECT_EQ(readElem(direct, "result"), k233().mul(a, b));
    EXPECT_EQ(readElem(kara, "result"), k233().mul(a, b));
    // One flat Karatsuba level: 3 * 16 = 48 partial products vs 64.
    // On this ISA gf32bMult costs one cycle — the same as an XOR — so
    // the saving is nearly cancelled by Karatsuba's extra additions
    // and the two implementations land at parity (the paper's 1.4x
    // implies its direct product carried relatively more memory
    // overhead).  Require Karatsuba to stay within a few percent.
    EXPECT_EQ(sk.gf32_ops, 48u);
    EXPECT_LT(sk.cycles, sd.cycles + sd.cycles / 20);
}

TEST(WideKernels, Square233MatchesReference)
{
    Machine m(square233Asm(), CoreKind::kGfProcessor);
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        Gf2x a = k233().randomElement(seed * 11);
        m.reset();
        m.writeBytes("opa", elemBytes(a));
        CycleStats s = m.runOk();
        EXPECT_EQ(readElem(m, "result"), k233().sqr(a));
        EXPECT_EQ(s.gf32_ops, 8u); // Table 7: 8 partial products
    }
}

TEST(WideKernels, SquareIsMuchCheaperThanMultiply)
{
    Machine mul(mult233DirectAsm(), CoreKind::kGfProcessor);
    mul.writeBytes("opa", elemBytes(k233().randomElement(1)));
    mul.writeBytes("opb", elemBytes(k233().randomElement(2)));
    uint64_t mul_cycles = mul.runOk().cycles;

    Machine sq(square233Asm(), CoreKind::kGfProcessor);
    sq.writeBytes("opa", elemBytes(k233().randomElement(1)));
    uint64_t sq_cycles = sq.runOk().cycles;

    // Paper: 599 vs 136 — about 4.4x; the interleaved square kernel
    // gets close to that ratio.
    EXPECT_GT(mul_cycles, 3 * sq_cycles);
}

TEST(WideKernels, Inverse233MatchesReference)
{
    for (bool kara : {false, true}) {
        Machine m(inverse233Asm(kara), CoreKind::kGfProcessor);
        Gf2x a = k233().randomElement(kara ? 21 : 20);
        m.writeBytes("opa", elemBytes(a));
        CycleStats s = m.runOk();
        EXPECT_EQ(readElem(m, "result"), k233().inv(a))
            << "karatsuba=" << kara;
        // 10 multiplies + 232 squarings; direct: 10*64 + 232*8 = 2496.
        if (!kara) {
            EXPECT_EQ(s.gf32_ops, 10u * 64 + 232u * 8);
        }
    }
}

TEST(WideKernels, PointDoubleMatchesReference)
{
    EllipticCurve curve = EllipticCurve::nist("K-233");
    // Start from a projective point with Z != 1 (double the base once).
    LdPoint p0 = curve.doubleLd(curve.toProjective(curve.basePoint()));
    LdPoint expect = curve.doubleLd(p0);

    for (bool kara : {false, true}) {
        Machine m(pointDoubleAsm(kara), CoreKind::kGfProcessor);
        m.writeBytes("px", elemBytes(p0.x));
        m.writeBytes("py", elemBytes(p0.y));
        m.writeBytes("pz", elemBytes(p0.z));
        m.runOk();
        EXPECT_EQ(readElem(m, "px"), expect.x) << "kara=" << kara;
        EXPECT_EQ(readElem(m, "py"), expect.y) << "kara=" << kara;
        EXPECT_EQ(readElem(m, "pz"), expect.z) << "kara=" << kara;
    }
}

TEST(WideKernels, PointAddMatchesReference)
{
    EllipticCurve curve = EllipticCurve::nist("K-233");
    const EcPoint &g = curve.basePoint();
    LdPoint p0 = curve.doubleLd(curve.toProjective(g));
    LdPoint expect = curve.addMixed(p0, g);

    for (bool kara : {false, true}) {
        Machine m(pointAddAsm(kara), CoreKind::kGfProcessor);
        m.writeBytes("px", elemBytes(p0.x));
        m.writeBytes("py", elemBytes(p0.y));
        m.writeBytes("pz", elemBytes(p0.z));
        m.writeBytes("qx", elemBytes(g.x));
        m.writeBytes("qy", elemBytes(g.y));
        m.runOk();
        EXPECT_EQ(readElem(m, "px"), expect.x) << "kara=" << kara;
        EXPECT_EQ(readElem(m, "py"), expect.y) << "kara=" << kara;
        EXPECT_EQ(readElem(m, "pz"), expect.z) << "kara=" << kara;
    }
}

TEST(WideKernels, PointOpCycleShape)
{
    // Table 9 shape: point addition costs roughly twice a doubling,
    // and Karatsuba shaves both.
    EllipticCurve curve = EllipticCurve::nist("K-233");
    LdPoint p0 = curve.doubleLd(curve.toProjective(curve.basePoint()));
    auto run = [&](const std::string &src) {
        Machine m(src, CoreKind::kGfProcessor);
        m.writeBytes("px", elemBytes(p0.x));
        m.writeBytes("py", elemBytes(p0.y));
        m.writeBytes("pz", elemBytes(p0.z));
        m.writeBytes("qx", elemBytes(curve.basePoint().x));
        m.writeBytes("qy", elemBytes(curve.basePoint().y));
        return m.runOk().cycles;
    };
    uint64_t pd = run(pointDoubleAsm(false));
    uint64_t pa = run(pointAddAsm(false));
    uint64_t pdk = run(pointDoubleAsm(true));
    uint64_t pak = run(pointAddAsm(true));
    EXPECT_GT(pa, 3 * pd / 2);
    // Karatsuba parity (see Mult233KaratsubaMatchesAndSaves).
    EXPECT_LT(pdk, pd + pd / 20);
    EXPECT_LT(pak, pa + pa / 20);
}

TEST(WideKernels, ScalarMultSmallKnownAnswer)
{
    EllipticCurve curve = EllipticCurve::nist("K-233");
    const EcPoint &g = curve.basePoint();
    for (uint64_t k : {2ull, 3ull, 5ull, 0x1234ull}) {
        EcPoint expect = curve.scalarMult(Gf2x(k), g);
        Machine m(scalarMultAsm(false), CoreKind::kGfProcessor);
        m.writeBytes("qx", elemBytes(g.x));
        m.writeBytes("qy", elemBytes(g.y));
        Gf2x kv(k);
        auto kb = elemBytes(kv);
        kb.resize(16);
        m.writeBytes("kwords", kb);
        m.writeWord("kbits", kv.bitLength());
        m.runOk();
        EXPECT_EQ(readElem(m, "resx"), expect.x) << "k=" << k;
        EXPECT_EQ(readElem(m, "resy"), expect.y) << "k=" << k;
    }
}

TEST(WideKernels, ScalarMultEvaluationWorkload)
{
    // The Sec. 3.3.4 headline: the 113-bit / 56-ones evaluation scalar
    // (112 PD + 56 PA).  The paper reports 617,120 cycles with the
    // Karatsuba multiplier; the shape requirement is the same order.
    EllipticCurve curve = EllipticCurve::nist("K-233");
    const EcPoint &g = curve.basePoint();
    Gf2x k = EllipticCurve::evaluationScalar(9);
    EcPoint expect = curve.scalarMult(k, g);

    Machine m(scalarMultAsm(true), CoreKind::kGfProcessor);
    m.writeBytes("qx", elemBytes(g.x));
    m.writeBytes("qy", elemBytes(g.y));
    auto kb = elemBytes(k);
    kb.resize(16);
    m.writeBytes("kwords", kb);
    m.writeWord("kbits", k.bitLength());
    CycleStats s = m.runOk();
    EXPECT_EQ(readElem(m, "resx"), expect.x);
    EXPECT_EQ(readElem(m, "resy"), expect.y);
    // Within 2x of the paper's 617,120 + inversion overhead.
    EXPECT_GT(s.cycles, 300'000u);
    EXPECT_LT(s.cycles, 1'500'000u);
}


TEST(WideKernels, Mult233SoftwareBaselineMatches)
{
    // The comb-method baseline (no GF instructions) must compute the
    // same product, and it runs on the *baseline* core.
    Machine m(mult233BaselineAsm(), CoreKind::kBaseline);
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        Gf2x a = k233().randomElement(seed + 300);
        Gf2x b = k233().randomElement(seed + 400);
        m.reset();
        m.writeBytes("opa", elemBytes(a));
        m.writeBytes("opb", elemBytes(b));
        m.runOk();
        EXPECT_EQ(readElem(m, "result"), k233().mul(a, b))
            << "seed=" << seed;
    }
}

TEST(WideKernels, Mult233BaselineVsGfCoreSpeedup)
{
    Gf2x a = k233().randomElement(91), b = k233().randomElement(92);
    Machine base(mult233BaselineAsm(), CoreKind::kBaseline);
    base.writeBytes("opa", elemBytes(a));
    base.writeBytes("opb", elemBytes(b));
    uint64_t bc = base.runOk().cycles;

    Machine gf(mult233DirectAsm(), CoreKind::kGfProcessor);
    gf.writeBytes("opa", elemBytes(a));
    gf.writeBytes("opb", elemBytes(b));
    uint64_t gc = gf.runOk().cycles;

    // Clercq's optimized M0+ code took 3672 cycles (paper: 6.1x); our
    // generic comb should land in the same few-thousand-cycle regime
    // and lose to the GF core by >= 5x.
    EXPECT_GT(bc, 3000u);
    EXPECT_LT(bc, 12000u);
    EXPECT_GT(bc, 5 * gc);
}

} // namespace
} // namespace gfp
