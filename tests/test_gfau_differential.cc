/**
 * @file
 * Differential test: the structural GFAU model vs. the GFField golden
 * model for EVERY irreducible polynomial of degree 2..8 (69 fields).
 *
 * Where tests/test_gfau.cc sweeps a handful of representative fields
 * exhaustively, this suite goes wide instead of deep: for each field it
 * drives a few thousand seeded random packed operands through each SIMD
 * operation (mul, square, power, inverse) with four *independent* lane
 * values, so the whole reduction-matrix catalog — including the
 * mapping-circuit reroute for sub-8-bit widths — is cross-checked
 * against the reference arithmetic.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "gf/field.h"
#include "gf/polys.h"
#include "gfau/gf_unit.h"

namespace gfp {
namespace {

uint8_t
lane(uint32_t v, unsigned l)
{
    return static_cast<uint8_t>(v >> (8 * l));
}

uint32_t
packLanes(Rng &rng, unsigned m)
{
    const uint32_t mask = (1u << m) - 1;
    uint32_t v = 0;
    for (unsigned l = 0; l < 4; ++l)
        v |= (rng.next32() & mask) << (8 * l);
    return v;
}

constexpr int kOpsPerField = 3000;

/** Run all four SIMD ops for every irreducible polynomial of degree m,
 *  each against the golden field, with per-field deterministic seeds. */
void
differentialSweep(unsigned m)
{
    const uint8_t mask = static_cast<uint8_t>((1u << m) - 1);
    for (uint32_t poly : irreduciblePolys(m)) {
        GFField field(m, poly);
        GFArithmeticUnit unit;
        unit.configureField(m, poly);
        Rng rng(0xd1ffu * m + poly);

        for (int i = 0; i < kOpsPerField; ++i) {
            uint32_t a = packLanes(rng, m);
            uint32_t b = packLanes(rng, m);
            uint32_t e = rng.next32(); // full-range integer exponents

            uint32_t mul = unit.simdMult(a, b);
            uint32_t sqr = unit.simdSquare(a);
            uint32_t pow = unit.simdPower(a, e);
            uint32_t inv = unit.simdInverse(a);
            for (unsigned l = 0; l < 4; ++l) {
                GFElem al = lane(a, l), bl = lane(b, l);
                ASSERT_EQ(lane(mul, l), field.mul(al, bl))
                    << "mul m=" << m << " poly=0x" << std::hex << poly
                    << std::dec << " a=" << +al << " b=" << +bl;
                ASSERT_EQ(lane(sqr, l), field.sqr(al))
                    << "sqr m=" << m << " poly=0x" << std::hex << poly
                    << std::dec << " a=" << +al;
                ASSERT_EQ(lane(pow, l), field.pow(al, lane(e, l)))
                    << "pow m=" << m << " poly=0x" << std::hex << poly
                    << std::dec << " a=" << +al << " e=" << +lane(e, l);
                ASSERT_EQ(lane(inv, l), field.inv(al))
                    << "inv m=" << m << " poly=0x" << std::hex << poly
                    << std::dec << " a=" << +al;
                // Results must be confined to the m live bits — the
                // mapping circuit may not leak into the padding.
                ASSERT_EQ(lane(mul, l) & ~mask, 0);
                ASSERT_EQ(lane(inv, l) & ~mask, 0);
            }
        }
    }
}

TEST(GfauDifferential, Degree2) { differentialSweep(2); }
TEST(GfauDifferential, Degree3) { differentialSweep(3); }
TEST(GfauDifferential, Degree4) { differentialSweep(4); }
TEST(GfauDifferential, Degree5) { differentialSweep(5); }
TEST(GfauDifferential, Degree6) { differentialSweep(6); }
TEST(GfauDifferential, Degree7) { differentialSweep(7); }
TEST(GfauDifferential, Degree8) { differentialSweep(8); }

TEST(GfauDifferential, CatalogCoversAllDegrees)
{
    // The sweep above is only as strong as the catalog: pin the known
    // irreducible-polynomial counts for degree 2..8 so a regression in
    // irreduciblePolys() cannot silently shrink the coverage.
    const unsigned expect[] = {1, 2, 3, 6, 9, 18, 30};
    for (unsigned m = 2; m <= 8; ++m)
        EXPECT_EQ(irreduciblePolys(m).size(), expect[m - 2]) << "m=" << m;
}

TEST(GfauDifferential, SubWidthRerouteIsEngaged)
{
    // For every m < 8 field there must exist products that differ from
    // the zero-padded GF(2^8) result — i.e. the m-bit reduction really
    // is rerouted through the mapping circuit, not just masked.
    GFArithmeticUnit u8;
    u8.configureField(8, kRsPoly);
    for (unsigned m = 2; m <= 7; ++m) {
        for (uint32_t poly : irreduciblePolys(m)) {
            GFArithmeticUnit um;
            um.configureField(m, poly);
            Rng rng(0xabcdu * m + poly);
            bool diverged = false;
            for (int i = 0; i < 2000 && !diverged; ++i) {
                uint32_t a = packLanes(rng, m), b = packLanes(rng, m);
                diverged = um.simdMult(a, b) != u8.simdMult(a, b);
            }
            EXPECT_TRUE(diverged)
                << "m=" << m << " poly=0x" << std::hex << poly;
        }
    }
}

} // namespace
} // namespace gfp
