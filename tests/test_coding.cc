/**
 * @file
 * Tests for the error-correction substrate: minimal polynomials, BCH and
 * RS construction (including the paper's BCH(31,11,5) and RS(255,239,8)
 * examples), the four decoder kernels, and end-to-end decode under
 * random correctable error patterns.
 */

#include <gtest/gtest.h>

#include "coding/bch.h"
#include "coding/channel.h"
#include "coding/decoder_kernels.h"
#include "coding/minpoly.h"
#include "coding/rs.h"
#include "common/random.h"

namespace gfp {
namespace {

TEST(Minpoly, CyclotomicCosets)
{
    // GF(2^4): coset of 1 is {1,2,4,8}; coset of 3 is {3,6,12,9}.
    auto c1 = cyclotomicCoset(1, 4);
    EXPECT_EQ(c1, (std::vector<uint32_t>{1, 2, 4, 8}));
    auto c3 = cyclotomicCoset(3, 4);
    EXPECT_EQ(c3, (std::vector<uint32_t>{3, 6, 9, 12}));
    auto c5 = cyclotomicCoset(5, 4);
    EXPECT_EQ(c5, (std::vector<uint32_t>{5, 10}));
}

TEST(Minpoly, MinimalPolyOfAlphaIsFieldPoly)
{
    // The minimal polynomial of alpha itself is the field polynomial.
    for (unsigned m = 3; m <= 8; ++m) {
        GFField f(m);
        EXPECT_EQ(minimalPolynomial(f, 1), Gf2x(f.poly())) << "m=" << m;
    }
}

TEST(Minpoly, RootsAreConjugates)
{
    GFField f(5);
    Gf2x mp = minimalPolynomial(f, 3);
    // Evaluate the binary polynomial at alpha^j for each conjugate.
    for (uint32_t j : cyclotomicCoset(3, 5)) {
        GFElem x = f.exp(j);
        GFElem acc = 0;
        for (int i = mp.degree(); i >= 0; --i)
            acc = f.mul(acc, x) ^ static_cast<GFElem>(mp.getBit(i));
        EXPECT_EQ(acc, 0) << "j=" << j;
    }
}

TEST(Minpoly, KnownBchGenerators)
{
    // BCH(15,7,2) generator: x^8+x^7+x^6+x^4+1 = 0x1d1 (standard).
    GFField f4(4);
    EXPECT_EQ(bchGenerator(f4, 2), Gf2x(0x1d1));
    // BCH(15,5,3): x^10+x^8+x^5+x^4+x^2+x+1 = 0x537.
    EXPECT_EQ(bchGenerator(f4, 3), Gf2x(0x537));
    // BCH(7,4,1) generator is the field polynomial x^3+x+1.
    GFField f3(3);
    EXPECT_EQ(bchGenerator(f3, 1), Gf2x(0xb));
}

TEST(Bch, PaperCodeParameters)
{
    // The paper's example: BCH(31,11,5) on GF(2^5).
    BCHCode code(5, 5);
    EXPECT_EQ(code.n(), 31u);
    EXPECT_EQ(code.k(), 11u);
    EXPECT_EQ(code.t(), 5u);
}

TEST(Bch, WellKnownCodeDimensions)
{
    struct { unsigned m, t, k; } cases[] = {
        {4, 1, 11}, {4, 2, 7}, {4, 3, 5},
        {5, 1, 26}, {5, 2, 21}, {5, 3, 16},
        {6, 1, 57}, {6, 2, 51}, {6, 3, 45},  // the WBAN (63,51,2) code
        {7, 1, 120}, {8, 2, 239},
    };
    for (auto c : cases) {
        BCHCode code(c.m, c.t);
        EXPECT_EQ(code.k(), c.k) << "m=" << c.m << " t=" << c.t;
    }
}

TEST(Bch, EncodeIsSystematicAndValid)
{
    BCHCode code(5, 5);
    Rng rng(1);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<uint8_t> info(code.k());
        for (auto &b : info)
            b = rng.below(2);
        auto cw = code.encode(info);
        EXPECT_EQ(cw.size(), code.n());
        EXPECT_TRUE(code.isCodeword(cw));
        EXPECT_EQ(code.extractInfo(cw), info);
    }
}

TEST(Bch, CorrectsUpToTErrors)
{
    for (auto [m, t] : {std::pair{5u, 5u}, {4u, 3u}, {6u, 2u}}) {
        BCHCode code(m, t);
        Rng rng(m * 100 + t);
        ExactErrorInjector inj(m * 7 + t);
        for (unsigned errors = 0; errors <= t; ++errors) {
            for (int trial = 0; trial < 10; ++trial) {
                std::vector<uint8_t> info(code.k());
                for (auto &b : info)
                    b = rng.below(2);
                auto cw = code.encode(info);
                auto rx = inj.flipBits(cw, errors);
                auto res = code.decode(rx);
                EXPECT_TRUE(res.ok) << "m=" << m << " t=" << t
                                    << " errors=" << errors;
                EXPECT_EQ(res.codeword, cw);
                EXPECT_EQ(res.errors, errors);
            }
        }
    }
}

TEST(Bch, DetectsBeyondTMostly)
{
    // t+1 errors must never be "corrected" into the wrong info silently
    // claiming the original; either flagged or corrected to a different
    // valid codeword (which we count — it must be a codeword).
    BCHCode code(5, 5);
    Rng rng(77);
    ExactErrorInjector inj(78);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<uint8_t> info(code.k());
        for (auto &b : info)
            b = rng.below(2);
        auto cw = code.encode(info);
        auto rx = inj.flipBits(cw, code.t() + 1);
        auto res = code.decode(rx);
        if (res.ok)
            EXPECT_TRUE(code.isCodeword(res.codeword));
    }
}

TEST(Rs, PaperCodeParameters)
{
    RSCode code(8, 8); // RS(255,239,8)
    EXPECT_EQ(code.n(), 255u);
    EXPECT_EQ(code.k(), 239u);
    EXPECT_EQ(code.generator().degree(), 16);
}

TEST(Rs, GeneratorHasRootsAtAlphaPowers)
{
    RSCode code(8, 8);
    const GFField &f = code.field();
    for (unsigned j = 1; j <= 16; ++j)
        EXPECT_EQ(code.generator().eval(f.exp(j)), 0) << "j=" << j;
    EXPECT_NE(code.generator().eval(f.exp(17)), 0);
}

TEST(Rs, EncodeSystematicAndValid)
{
    RSCode code(8, 8);
    Rng rng(5);
    std::vector<GFElem> info(code.k());
    for (auto &s : info)
        s = rng.nextByte();
    auto cw = code.encode(info);
    EXPECT_EQ(cw.size(), 255u);
    EXPECT_TRUE(code.isCodeword(cw));
    EXPECT_EQ(code.extractInfo(cw), info);
}

TEST(Rs, CorrectsUpToTSymbolErrors)
{
    for (auto [m, t] : {std::pair{8u, 8u}, {8u, 4u}, {4u, 3u}, {5u, 2u}}) {
        RSCode code(m, t);
        Rng rng(m * 31 + t);
        ExactErrorInjector inj(m * 17 + t);
        for (unsigned errors = 0; errors <= t; ++errors) {
            std::vector<GFElem> info(code.k());
            for (auto &s : info)
                s = rng.below(code.field().order());
            auto cw = code.encode(info);
            auto rx = inj.corruptSymbols(cw, errors, m);
            auto res = code.decode(rx);
            EXPECT_TRUE(res.ok) << "m=" << m << " t=" << t
                                << " errors=" << errors;
            EXPECT_EQ(res.codeword, cw);
            EXPECT_EQ(res.errors, errors);
        }
    }
}

TEST(Rs, CorrectsBurstWithinSymbolBudget)
{
    // A burst spanning up to t contiguous symbols is corrected — the
    // multi-burst robustness claim of Sec. 1.1.
    RSCode code(8, 8);
    Rng rng(9);
    std::vector<GFElem> info(code.k());
    for (auto &s : info)
        s = rng.nextByte();
    auto cw = code.encode(info);
    // 60-bit burst = 8 consecutive corrupted symbols (t = 8).
    auto rx = cw;
    for (unsigned i = 100; i < 108; ++i)
        rx[i] ^= static_cast<GFElem>(1 + rng.below(255));
    auto res = code.decode(rx);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.codeword, cw);
}

TEST(Rs, FlagsBeyondT)
{
    // Miscorrection probability beyond t falls roughly like 1/t!, so a
    // t=8 code flags essentially every (t+2)-error pattern.
    RSCode code(8, 8);
    Rng rng(10);
    ExactErrorInjector inj(11);
    unsigned flagged = 0, trials = 30;
    for (unsigned i = 0; i < trials; ++i) {
        std::vector<GFElem> info(code.k());
        for (auto &s : info)
            s = rng.nextByte();
        auto cw = code.encode(info);
        auto rx = inj.corruptSymbols(cw, code.t() + 2, 8);
        auto res = code.decode(rx);
        if (!res.ok)
            ++flagged;
        else
            EXPECT_TRUE(code.isCodeword(res.codeword));
    }
    EXPECT_GE(flagged, trials - 1);
}

TEST(Kernels, SyndromesZeroForCodeword)
{
    RSCode code(8, 8);
    std::vector<GFElem> info(code.k(), 0x42);
    auto cw = code.encode(info);
    for (GFElem s : syndromes(code.field(), cw, 16))
        EXPECT_EQ(s, 0);
}

TEST(Kernels, SyndromesMatchErrorTransform)
{
    // Syndromes of (codeword + e) equal syndromes of e alone:
    // S_j = sum_k e_k alpha^(j * i_k).
    RSCode code(8, 4);
    const GFField &f = code.field();
    std::vector<GFElem> info(code.k(), 7);
    auto cw = code.encode(info);
    auto rx = cw;
    rx[10] ^= 0x21;
    rx[200] ^= 0x05;
    auto synd = syndromes(f, rx, 8);
    for (unsigned j = 1; j <= 8; ++j) {
        GFElem expect = f.mul(0x21, f.pow(f.exp(1), 10 * j)) ^
                        f.mul(0x05, f.pow(f.exp(1), 200 * j));
        EXPECT_EQ(synd[j - 1], expect) << "j=" << j;
    }
}

TEST(Kernels, BmaRecoversLocatorDegree)
{
    RSCode code(8, 8);
    const GFField &f = code.field();
    ExactErrorInjector inj(3);
    std::vector<GFElem> cw(255, 0); // all-zero codeword
    auto rx = inj.corruptSymbols(cw, 5, 8);
    auto synd = syndromes(f, rx, 16);
    GFPoly lambda = berlekampMassey(f, synd);
    EXPECT_EQ(lambda.degree(), 5);
    EXPECT_EQ(lambda.coeff(0), 1);
}

TEST(Kernels, ChienFindsExactLocations)
{
    RSCode code(8, 8);
    const GFField &f = code.field();
    std::vector<GFElem> cw(255, 0);
    auto rx = cw;
    std::vector<unsigned> where{3, 77, 140, 254};
    for (unsigned i : where)
        rx[i] ^= 0x11;
    auto synd = syndromes(f, rx, 16);
    GFPoly lambda = berlekampMassey(f, synd);
    auto locs = chienSearch(f, lambda, 255);
    EXPECT_EQ(locs, where);
}

TEST(Kernels, ForneyRecoversValues)
{
    RSCode code(8, 8);
    const GFField &f = code.field();
    std::vector<GFElem> cw(255, 0);
    auto rx = cw;
    std::vector<std::pair<unsigned, GFElem>> errs{
        {5, 0xaa}, {100, 0x01}, {250, 0x80}};
    for (auto [i, v] : errs)
        rx[i] ^= v;
    auto synd = syndromes(f, rx, 16);
    GFPoly lambda = berlekampMassey(f, synd);
    auto locs = chienSearch(f, lambda, 255);
    ASSERT_EQ(locs.size(), errs.size());
    auto vals = forney(f, synd, lambda, locs);
    for (size_t k = 0; k < errs.size(); ++k) {
        EXPECT_EQ(locs[k], errs[k].first);
        EXPECT_EQ(vals[k], errs[k].second);
    }
}

TEST(Channel, BscStatistics)
{
    BscChannel ch(0.1, 42);
    std::vector<uint8_t> bits(20000, 0);
    auto out = ch.transmit(bits);
    uint64_t flips = 0;
    for (auto b : out)
        flips += b;
    EXPECT_EQ(flips, ch.bitErrors());
    EXPECT_GT(flips, 1600u); // ~2000 expected
    EXPECT_LT(flips, 2400u);
}

TEST(Channel, GilbertElliottBursts)
{
    // A bursty channel at matched average BER produces more clustered
    // errors than a BSC: measure mean run length of errors.
    auto meanRun = [](const std::vector<uint8_t> &v) {
        double runs = 0, errors = 0;
        bool in = false;
        for (auto b : v) {
            if (b) {
                ++errors;
                if (!in)
                    ++runs;
                in = true;
            } else {
                in = false;
            }
        }
        return runs ? errors / runs : 0.0;
    };
    std::vector<uint8_t> zeros(50000, 0);
    BscChannel bsc(0.02, 1);
    GilbertElliottChannel ge(0.002, 0.1, 0.0, 0.4, 2);
    double bsc_run = meanRun(bsc.transmit(zeros));
    double ge_run = meanRun(ge.transmit(zeros));
    EXPECT_GT(ge_run, bsc_run * 1.5);
}

TEST(Channel, ExactInjectorFlipsExactCount)
{
    ExactErrorInjector inj(9);
    std::vector<uint8_t> bits(100, 0);
    auto out = inj.flipBits(bits, 17);
    unsigned flips = 0;
    for (auto b : out)
        flips += b;
    EXPECT_EQ(flips, 17u);

    std::vector<GFElem> sym(50, 3);
    auto cs = inj.corruptSymbols(sym, 9, 8);
    unsigned changed = 0;
    for (size_t i = 0; i < sym.size(); ++i)
        changed += cs[i] != sym[i];
    EXPECT_EQ(changed, 9u);
}

TEST(Coding, RejectsBadParameters)
{
    EXPECT_DEATH(BCHCode(4, 8), "no\n? *information");
    EXPECT_DEATH(RSCode(4, 8), "no information");
    EXPECT_DEATH(BCHCode(8, 2, 0x11b), "primitive");
    // m=4, t=7 is the degenerate repetition code — legal, k = 1.
    BCHCode rep(4, 7);
    EXPECT_EQ(rep.k(), 1u);
}

} // namespace
} // namespace gfp
