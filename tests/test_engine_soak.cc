/**
 * @file
 * Bounded soak test for the sharded BatchEngine (ctest label `soak`):
 * sustained submit/drain cycles with pipelined tickets, periodic
 * engine-level worker refresh (the pool analogue of the per-job
 * Machine::fullReset()), and trapping jobs in every cycle.  At the end
 * the scheduler's metric invariants must hold exactly:
 *
 *   jobs_submitted_total == jobs_completed_total + jobs_trapped_total
 *   every shard<i>_queue_depth gauge back to zero
 *
 * and every sampled batch must stay bit-identical to the serial
 * reference across the whole run, machine rebuilds included.
 */

#include <gtest/gtest.h>

#include <chrono>

#include "coding/channel.h"
#include "coding/rs.h"
#include "common/random.h"
#include "engine/batch_engine.h"
#include "kernels/batch_kernels.h"

namespace gfp {
namespace {

std::vector<Job>
makeSyndromeJobs(unsigned count, uint64_t seed)
{
    RSCode code(8, 8);
    Rng rng(seed);
    std::vector<Job> jobs;
    for (unsigned j = 0; j < count; ++j) {
        std::vector<GFElem> info(code.k());
        for (auto &s : info)
            s = rng.nextByte();
        ExactErrorInjector inj(seed + j);
        auto rx = inj.corruptSymbols(code.encode(info),
                                     j % (code.t() + 1), 8);
        jobs.push_back(syndromeJob(rx, 2 * code.t()));
    }
    return jobs;
}

TEST(EngineSoak, SustainedSubmitDrainCyclesKeepInvariants)
{
    using Clock = std::chrono::steady_clock;
    constexpr auto kBudget = std::chrono::seconds(6);
    constexpr unsigned kJobsPerBatch = 64;
    constexpr unsigned kMaxInFlight = 3;

    GFField f(8);
    BatchEngine eng(syndromeBatchProgram(f, 255, 16),
                    BatchEngine::Options{.threads = 4});

    // Fixed job pool, reference computed once: every 9th job is
    // watchdog-poisoned so traps flow through every cycle.
    auto jobs = makeSyndromeJobs(kJobsPerBatch, 20260808);
    for (size_t i = 0; i < jobs.size(); i += 9)
        jobs[i].max_instrs = 10;
    auto reference = eng.runSerial(jobs);
    size_t traps_per_batch = 0;
    for (const auto &r : reference)
        traps_per_batch += r.ok() ? 0 : 1;
    ASSERT_GT(traps_per_batch, 0u);

    std::vector<BatchEngine::Ticket> in_flight;
    uint64_t batches = 0, drained = 0;
    auto verify = [&](const std::vector<JobResult> &results) {
        ASSERT_EQ(results.size(), reference.size());
        for (size_t i = 0; i < results.size(); ++i) {
            ASSERT_EQ(results[i].trap.kind, reference[i].trap.kind) << i;
            ASSERT_EQ(results[i].outputs, reference[i].outputs) << i;
            ASSERT_EQ(results[i].stats.cycles, reference[i].stats.cycles)
                << i;
        }
    };

    const auto deadline = Clock::now() + kBudget;
    while (Clock::now() < deadline) {
        in_flight.push_back(eng.submitBatch(jobs));
        ++batches;
        if (batches % 5 == 0)
            eng.refreshWorkers();
        if (in_flight.size() >= kMaxInFlight) {
            auto results = eng.wait(in_flight.front());
            in_flight.erase(in_flight.begin());
            ++drained;
            // Spot-check one in four drained batches bit-for-bit (every
            // batch is still structurally checked by the engine's
            // exactly-once merge assert).
            if (drained % 4 == 0)
                verify(results);
        }
    }
    while (!in_flight.empty()) {
        verify(eng.wait(in_flight.front()));
        in_flight.erase(in_flight.begin());
    }

    const Metrics &m = eng.metrics();
    const double submitted = m.counter("jobs_submitted_total");
    EXPECT_EQ(submitted, static_cast<double>(batches * kJobsPerBatch));
    EXPECT_EQ(m.counter("jobs_completed_total") +
                  m.counter("jobs_trapped_total"),
              submitted);
    EXPECT_EQ(m.counter("jobs_trapped_total"),
              static_cast<double>(batches * traps_per_batch));
    for (unsigned w = 0; w < eng.threads(); ++w)
        EXPECT_EQ(m.gauge("shard" + std::to_string(w) + "_queue_depth"),
                  0.0)
            << w;
    // A pipelined soak over a sharded pool must actually have exercised
    // the steal path somewhere along the way.
    EXPECT_GT(m.gauge("steals"), 0.0);
}

} // namespace
} // namespace gfp
