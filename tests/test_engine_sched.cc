/**
 * @file
 * Scheduler stress tests for the sharded work-stealing BatchEngine:
 *
 *  - skewed job-cost distributions (one ~100x-cost job among cheap
 *    ones) must be rebalanced over the steal path, including trapping
 *    jobs that reach their worker by being stolen;
 *  - seeded deterministic batches assert result-set bit-parity against
 *    serial execution under 2/4/8 workers with poisoned (SEU-injected)
 *    jobs mixed in;
 *  - a multi-producer property test: random interleavings of
 *    submitBatch() from several threads preserve exactly-once
 *    execution — no lost and no duplicated JobResult — which the TSan
 *    CI job runs under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "coding/channel.h"
#include "coding/rs.h"
#include "common/random.h"
#include "engine/batch_engine.h"
#include "kernels/batch_kernels.h"

namespace gfp {
namespace {

/**
 * A kernel whose cost is data-driven: spins 'reps' times over an ALU
 * mixing loop, leaving a reps/seed-dependent word in 'acc'.  This is
 * what lets one job be made 100x more expensive than its neighbors —
 * the decoder kernels all cost the same per job.
 */
const char *kSpinKernel = R"(
; data-dependent-cost spin kernel: acc = mix(seedv, reps..1)
    la   r1, reps
    ldr  r2, [r1, #0]
    la   r1, seedv
    ldr  r4, [r1, #0]
loop:
    eor  r4, r4, r2
    lsri r5, r4, #7
    eor  r4, r4, r5
    addi r4, r4, #0x9e
    subi r2, r2, #1
    cmpi r2, #0
    bne  loop
    la   r1, acc
    str  r4, [r1, #0]
    halt
.data
.align 8
reps:
    .space 4
seedv:
    .space 4
acc:
    .space 4
)";

/** Host model of kSpinKernel (32-bit wrap-around arithmetic). */
uint32_t
spinReference(uint32_t reps, uint32_t seed)
{
    uint32_t acc = seed;
    for (uint32_t r = reps; r != 0; --r) {
        acc ^= r;
        acc ^= acc >> 7;
        acc += 0x9e;
    }
    return acc;
}

Job
spinJob(uint32_t reps, uint32_t seed)
{
    Job job;
    job.word_inputs = {{"reps", reps}, {"seedv", seed}};
    job.word_outputs = {"acc"};
    return job;
}

/** A deterministic batch of noisy RS(255,239) syndrome jobs. */
std::vector<Job>
makeSyndromeJobs(unsigned count, uint64_t seed)
{
    RSCode code(8, 8);
    Rng rng(seed);
    std::vector<Job> jobs;
    for (unsigned j = 0; j < count; ++j) {
        std::vector<GFElem> info(code.k());
        for (auto &s : info)
            s = rng.nextByte();
        ExactErrorInjector inj(seed + j);
        auto rx = inj.corruptSymbols(code.encode(info),
                                     j % (code.t() + 1), 8);
        jobs.push_back(syndromeJob(rx, 2 * code.t()));
    }
    return jobs;
}

BatchProgram
syndromeProgram()
{
    GFField f(8);
    return syndromeBatchProgram(f, 255, 16);
}

/** Config-register SEU that forces a GfConfigCorrupt trap (m=8 ->
 *  flipping bit 57 yields m=10, invalid). */
FaultEvent
configKillEvent()
{
    return FaultEvent{/*cycle=*/40, FaultTarget::kConfigReg,
                      /*index=*/0, /*bit=*/57};
}

TEST(EngineSched, SkewedCostsAreRebalancedByStealing)
{
    // 64 jobs, sliced 16 per shard at 4 workers.  Job 0 costs ~250x
    // its neighbors (tens of milliseconds — several OS timeslices even
    // on a single-CPU host, so the peer workers are guaranteed to run
    // while it executes), which pins its worker down while the rest of
    // its shard must drain over the steal path.  Jobs 8..15 land in
    // the back (stolen-first) half of that shard; three of them are
    // poisoned with a tiny watchdog so trapping jobs travel the steal
    // path too.
    constexpr uint32_t kCheapReps = 8000;
    constexpr uint32_t kHeavyReps = 250 * kCheapReps;
    std::vector<Job> jobs;
    jobs.push_back(spinJob(kHeavyReps, 0xdead0001));
    for (unsigned j = 1; j < 64; ++j)
        jobs.push_back(spinJob(kCheapReps + j, 0xbeef0000 + j));
    for (unsigned j : {9u, 12u, 15u})
        jobs[j].max_instrs = 10; // watchdog-poisoned

    BatchEngine eng(kSpinKernel, CoreKind::kGfProcessor,
                    BatchEngine::Options{.threads = 4});
    auto serial = eng.runSerial(jobs);
    auto parallel = eng.run(jobs);

    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(parallel[i].trap.kind, serial[i].trap.kind) << i;
        EXPECT_EQ(parallel[i].words, serial[i].words) << i;
        EXPECT_EQ(parallel[i].stats.cycles, serial[i].stats.cycles) << i;
    }
    for (unsigned j : {9u, 12u, 15u}) {
        EXPECT_EQ(parallel[j].trap.kind, TrapKind::kWatchdog) << j;
        EXPECT_TRUE(parallel[j].words.empty()) << j;
    }
    for (size_t i = 1; i < jobs.size(); ++i)
        if (parallel[i].ok())
            EXPECT_EQ(parallel[i].word("acc"),
                      spinReference(kCheapReps + static_cast<uint32_t>(i),
                                    0xbeef0000 +
                                        static_cast<uint32_t>(i)))
                << i;

    // The rebalance itself: steals happened, and some job that was
    // sliced into the heavy job's shard (indices 1..15 — submitBatch
    // slices contiguously) ran on a different worker than the heavy
    // job.  The heavy job's worker picks it up front-first and is then
    // busy for ~250 job-lengths, so its shard's remainder can only
    // drain over the steal path.
    const Metrics &m = eng.metrics();
    EXPECT_GT(m.gauge("steals"), 0.0);
    EXPECT_GT(m.gauge("jobs_stolen"), 0.0);
    const unsigned heavy_worker = parallel[0].worker;
    bool sibling_migrated = false;
    for (size_t i = 1; i <= 15; ++i)
        sibling_migrated |= parallel[i].worker != heavy_worker;
    EXPECT_TRUE(sibling_migrated)
        << "no job from the heavy shard was stolen";
}

TEST(EngineSched, BitParityAgainstSerialUnder248Workers)
{
    // Seeded deterministic batch with poisoned jobs sprinkled in; the
    // result set must be bit-for-bit the serial one at every pool
    // width (different widths exercise different slicings and steal
    // interleavings).
    auto jobs = makeSyndromeJobs(72, 2026);
    for (size_t i = 3; i < jobs.size(); i += 11)
        jobs[i].faults.push_back(configKillEvent());
    for (size_t i = 7; i < jobs.size(); i += 17)
        jobs[i].max_instrs = 10;

    BatchEngine ref(syndromeProgram(), BatchEngine::Options{.threads = 1});
    auto serial = ref.runSerial(jobs);
    for (unsigned workers : {2u, 4u, 8u}) {
        BatchEngine eng(syndromeProgram(),
                        BatchEngine::Options{.threads = workers});
        auto parallel = eng.run(jobs);
        ASSERT_EQ(parallel.size(), serial.size()) << workers;
        for (size_t i = 0; i < jobs.size(); ++i) {
            EXPECT_EQ(parallel[i].trap.kind, serial[i].trap.kind)
                << workers << "w job " << i;
            EXPECT_EQ(parallel[i].outputs, serial[i].outputs)
                << workers << "w job " << i;
            EXPECT_EQ(parallel[i].words, serial[i].words)
                << workers << "w job " << i;
            EXPECT_EQ(parallel[i].stats.cycles, serial[i].stats.cycles)
                << workers << "w job " << i;
        }
    }
}

TEST(EngineSched, SubmitBatchTicketsDrainOutOfOrder)
{
    // Async pipelining from one thread: submit three batches, redeem
    // the tickets newest-first; each batch's results stay job-ordered
    // and correct.
    BatchEngine eng(kSpinKernel, CoreKind::kGfProcessor,
                    BatchEngine::Options{.threads = 4});
    std::vector<BatchEngine::Ticket> tickets;
    for (uint32_t b = 0; b < 3; ++b) {
        std::vector<Job> jobs;
        for (uint32_t j = 0; j < 17 + b; ++j)
            jobs.push_back(spinJob(300 + j, b * 1000 + j));
        tickets.push_back(eng.submitBatch(std::move(jobs)));
    }
    for (uint32_t b = 3; b-- > 0;) {
        auto results = eng.wait(tickets[b]);
        ASSERT_EQ(results.size(), 17 + b);
        for (uint32_t j = 0; j < results.size(); ++j) {
            ASSERT_TRUE(results[j].ok()) << b << ":" << j;
            EXPECT_EQ(results[j].word("acc"),
                      spinReference(300 + j, b * 1000 + j))
                << b << ":" << j;
        }
    }
    // Everything drained: the shard gauges are back to zero and the
    // live counters balance.
    const Metrics &m = eng.metrics();
    EXPECT_EQ(m.counter("jobs_submitted_total"), 17.0 + 18 + 19);
    EXPECT_EQ(m.counter("jobs_completed_total") +
                  m.counter("jobs_trapped_total"),
              m.counter("jobs_submitted_total"));
    for (unsigned w = 0; w < eng.threads(); ++w)
        EXPECT_EQ(m.gauge("shard" + std::to_string(w) + "_queue_depth"),
                  0.0)
            << w;
}

TEST(EngineSched, EmptyBatchTicketIsRedeemable)
{
    BatchEngine eng(kSpinKernel, CoreKind::kGfProcessor,
                    BatchEngine::Options{.threads = 2});
    auto ticket = eng.submitBatch({});
    EXPECT_TRUE(eng.wait(ticket).empty());
}

/**
 * Property: random interleavings of submitBatch() from multiple
 * producer threads execute every job exactly once.  Losses surface as
 * default-constructed results (empty word set), duplicates as either a
 * wrong merge (caught by the engine's structural exactly-once assert)
 * or a counter imbalance; both are also cross-checked against the
 * per-job expected accumulator value.  The TSan CI job runs this suite
 * under ThreadSanitizer, where any unsynchronized shard/arena access
 * in the interleavings becomes a hard failure.
 */
TEST(EngineSchedProperty, ConcurrentProducersExecuteExactlyOnce)
{
    struct Variant
    {
        uint32_t reps, seed, expected;
        bool poisoned;
    };
    Rng rng(424242);
    std::vector<Variant> variants;
    for (unsigned v = 0; v < 96; ++v) {
        Variant var;
        var.reps = 150 + static_cast<uint32_t>(rng.below(650));
        var.seed = static_cast<uint32_t>(rng.next64());
        var.poisoned = v % 13 == 0;
        var.expected = spinReference(var.reps, var.seed);
        variants.push_back(var);
    }

    BatchEngine eng(kSpinKernel, CoreKind::kGfProcessor,
                    BatchEngine::Options{.threads = 4});
    constexpr unsigned kProducers = 4;
    constexpr unsigned kBatchesPerProducer = 12;
    std::atomic<uint64_t> jobs_submitted{0};
    std::atomic<uint64_t> traps_expected{0};
    std::atomic<unsigned> failures{0};

    auto producer = [&](unsigned p) {
        Rng prng(1000 + p);
        std::vector<BatchEngine::Ticket> outstanding;
        std::vector<std::vector<const Variant *>> shapes;
        auto redeem = [&]() {
            auto ticket = outstanding.front();
            auto shape = shapes.front();
            outstanding.erase(outstanding.begin());
            shapes.erase(shapes.begin());
            auto results = eng.wait(ticket);
            if (results.size() != shape.size()) {
                ++failures;
                return;
            }
            for (size_t j = 0; j < results.size(); ++j) {
                const Variant &v = *shape[j];
                const bool ok_shape =
                    v.poisoned
                        ? results[j].trap.kind == TrapKind::kWatchdog &&
                              results[j].words.empty()
                        : results[j].ok() &&
                              results[j].word("acc") == v.expected;
                if (!ok_shape)
                    ++failures;
            }
        };
        for (unsigned b = 0; b < kBatchesPerProducer; ++b) {
            const size_t count = 1 + prng.below(40);
            std::vector<Job> jobs;
            std::vector<const Variant *> shape;
            for (size_t j = 0; j < count; ++j) {
                const Variant &v = variants[prng.below(variants.size())];
                Job job = spinJob(v.reps, v.seed);
                if (v.poisoned) {
                    job.max_instrs = 5;
                    ++traps_expected;
                }
                jobs.push_back(std::move(job));
                shape.push_back(&v);
            }
            jobs_submitted += count;
            outstanding.push_back(eng.submitBatch(std::move(jobs)));
            shapes.push_back(std::move(shape));
            // Keep up to two tickets in flight so submissions from all
            // producers interleave while earlier batches still run.
            if (outstanding.size() > 2)
                redeem();
        }
        while (!outstanding.empty())
            redeem();
    };

    std::vector<std::thread> producers;
    for (unsigned p = 0; p < kProducers; ++p)
        producers.emplace_back(producer, p);
    for (auto &t : producers)
        t.join();

    EXPECT_EQ(failures.load(), 0u);
    const Metrics &m = eng.metrics();
    EXPECT_EQ(m.counter("jobs_submitted_total"),
              static_cast<double>(jobs_submitted.load()));
    EXPECT_EQ(m.counter("jobs_completed_total") +
                  m.counter("jobs_trapped_total"),
              static_cast<double>(jobs_submitted.load()));
    EXPECT_EQ(m.counter("jobs_trapped_total"),
              static_cast<double>(traps_expected.load()));
    for (unsigned w = 0; w < eng.threads(); ++w)
        EXPECT_EQ(m.gauge("shard" + std::to_string(w) + "_queue_depth"),
                  0.0)
            << w;
}

} // namespace
} // namespace gfp
