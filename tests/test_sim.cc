/**
 * @file
 * Tests for the two-stage core simulator: per-instruction semantics,
 * flags and branch conditions, the cycle model (LD/ST = 2, taken branch
 * = 2, everything else 1), subroutine calls, GF instructions through
 * the machine, and the statistics categories.
 */

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/strutil.h"
#include "gf/field.h"
#include "sim/machine.h"

namespace gfp {
namespace {

/** Run a snippet on the GF core and return the machine for inspection. */
Machine
runGf(const std::string &src)
{
    Machine m(src, CoreKind::kGfProcessor);
    m.runOk();
    return m;
}

TEST(Sim, MoviMovtLi)
{
    Machine m = runGf(R"(
        movi r1, #0x1234
        movt r1, #0xabcd
        li   r2, #0xdeadbeef
        li   r3, #7
        halt
    )");
    EXPECT_EQ(m.core().reg(1), 0xabcd1234u);
    EXPECT_EQ(m.core().reg(2), 0xdeadbeefu);
    EXPECT_EQ(m.core().reg(3), 7u);
}

TEST(Sim, AluOps)
{
    Machine m = runGf(R"(
        li   r1, #100
        li   r2, #7
        add  r3, r1, r2
        sub  r4, r1, r2
        and  r5, r1, r2
        orr  r6, r1, r2
        eor  r7, r1, r2
        mul  r8, r1, r2
        lsli r9, r1, #3
        lsri r10, r1, #2
        li   r11, #-64
        asri r11, r11, #3
        halt
    )");
    EXPECT_EQ(m.core().reg(3), 107u);
    EXPECT_EQ(m.core().reg(4), 93u);
    EXPECT_EQ(m.core().reg(5), 100u & 7u);
    EXPECT_EQ(m.core().reg(6), 100u | 7u);
    EXPECT_EQ(m.core().reg(7), 100u ^ 7u);
    EXPECT_EQ(m.core().reg(8), 700u);
    EXPECT_EQ(m.core().reg(9), 800u);
    EXPECT_EQ(m.core().reg(10), 25u);
    EXPECT_EQ(static_cast<int32_t>(m.core().reg(11)), -8);
}

TEST(Sim, RegisterShifts)
{
    Machine m = runGf(R"(
        li  r1, #1
        li  r2, #12
        lsl r3, r1, r2
        lsr r4, r3, r2
        halt
    )");
    EXPECT_EQ(m.core().reg(3), 1u << 12);
    EXPECT_EQ(m.core().reg(4), 1u);
}

TEST(Sim, MemoryAccessWidths)
{
    Machine m = runGf(R"(
        la   r1, buf
        li   r2, #0xa1b2c3d4
        str  r2, [r1]
        ldrb r3, [r1]
        ldrb r4, [r1, #3]
        ldrh r5, [r1]
        ldrh r6, [r1, #2]
        ldr  r7, [r1]
        li   r8, #0xff
        strb r8, [r1, #1]
        ldr  r9, [r1]
        halt
    .data
    buf: .space 8
    )");
    EXPECT_EQ(m.core().reg(3), 0xd4u);
    EXPECT_EQ(m.core().reg(4), 0xa1u);
    EXPECT_EQ(m.core().reg(5), 0xc3d4u);
    EXPECT_EQ(m.core().reg(6), 0xa1b2u);
    EXPECT_EQ(m.core().reg(7), 0xa1b2c3d4u);
    EXPECT_EQ(m.core().reg(9), 0xa1b2ffd4u);
}

TEST(Sim, RegisterOffsetAddressing)
{
    Machine m = runGf(R"(
        la    r1, arr
        movi  r2, #2
        ldrb  r3, [r1, r2]
        lsli  r4, r2, #1       ; byte offset 4 -> the word
        ldr   r5, [r1, r4]
        halt
    .data
    arr: .byte 9, 8, 7, 6
         .word 0x11223344
    )");
    EXPECT_EQ(m.core().reg(3), 7u);
    EXPECT_EQ(m.core().reg(5), 0x11223344u);
}

struct BranchCase
{
    const char *cond;
    int32_t a, b;
    bool taken;
};

class BranchTest : public ::testing::TestWithParam<BranchCase>
{
};

TEST_P(BranchTest, ConditionSemantics)
{
    const BranchCase &c = GetParam();
    std::string src = strprintf(R"(
        li   r1, #%d
        li   r2, #%d
        movi r0, #0
        cmp  r1, r2
        %s   yes
        halt
    yes:
        movi r0, #1
        halt
    )", c.a, c.b, c.cond);
    Machine m(src, CoreKind::kGfProcessor);
    m.runOk();
    EXPECT_EQ(m.core().reg(0), c.taken ? 1u : 0u)
        << c.cond << " " << c.a << "," << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    AllConds, BranchTest,
    ::testing::Values(
        BranchCase{"beq", 5, 5, true}, BranchCase{"beq", 5, 6, false},
        BranchCase{"bne", 5, 6, true}, BranchCase{"bne", 5, 5, false},
        BranchCase{"blt", -1, 0, true}, BranchCase{"blt", 0, -1, false},
        BranchCase{"bge", 3, 3, true}, BranchCase{"bge", -5, 3, false},
        BranchCase{"bgt", 4, 3, true}, BranchCase{"bgt", 3, 3, false},
        BranchCase{"ble", 3, 3, true}, BranchCase{"ble", 4, 3, false},
        BranchCase{"blo", 1, 2, true}, BranchCase{"blo", -1, 2, false},
        BranchCase{"bhs", -1, 2, true}, BranchCase{"bhs", 1, 2, false},
        BranchCase{"bhi", -1, 1, true}, BranchCase{"bhi", 2, 2, false},
        BranchCase{"bls", 2, 2, true}, BranchCase{"bls", -1, 1, false}),
    [](const ::testing::TestParamInfo<BranchCase> &info) {
        return std::string(info.param.cond) + "_" +
               std::to_string(info.index);
    });

TEST(Sim, CallReturn)
{
    Machine m = runGf(R"(
        li  r1, #5
        bl  double_it
        bl  double_it
        halt
    double_it:
        add r1, r1, r1
        ret
    )");
    EXPECT_EQ(m.core().reg(1), 20u);
}

TEST(Sim, NestedCallWithStack)
{
    Machine m = runGf(R"(
        li  r1, #3
        bl  outer
        halt
    outer:
        subi sp, sp, #4
        str  lr, [sp]
        bl   inner       ; clobbers lr
        addi r1, r1, #1
        ldr  lr, [sp]
        addi sp, sp, #4
        ret
    inner:
        lsli r1, r1, #1
        ret
    )");
    EXPECT_EQ(m.core().reg(1), 7u);
}

TEST(Sim, JrJumpsToRegister)
{
    Machine m = runGf(R"(
        la  r1, target
        jr  r1
        movi r0, #99
        halt
    target:
        movi r0, #1
        halt
    )");
    EXPECT_EQ(m.core().reg(0), 1u);
}

TEST(Sim, CycleModel)
{
    // movi(1) + ldr(2) + str(2) + add(1) + untaken bne(1) + halt(1) = 8
    Machine m(R"(
        movi r1, #0
        ldr  r2, [r1, #0x40]
        str  r2, [r1, #0x44]
        add  r3, r2, r2
        cmpi r3, #0
        beq  skip             ; taken: the loaded memory is zero
    skip:
        halt
    )", CoreKind::kGfProcessor);
    CycleStats s = m.runOk();
    // movi 1, ldr 2, str 2, add 1, cmpi 1, beq taken 2, halt 1 = 10
    EXPECT_EQ(s.cycles, 10u);
    EXPECT_EQ(s.instrs, 7u);
    EXPECT_EQ(s.load_ops, 1u);
    EXPECT_EQ(s.load_cycles, 2u);
    EXPECT_EQ(s.store_ops, 1u);
    EXPECT_EQ(s.store_cycles, 2u);
    EXPECT_EQ(s.branch_ops, 1u);
    EXPECT_EQ(s.branch_cycles, 2u);
}

TEST(Sim, UntakenBranchIsOneCycle)
{
    Machine m(R"(
        movi r1, #1
        cmpi r1, #2
        beq  nope
        halt
    nope:
        halt
    )", CoreKind::kGfProcessor);
    CycleStats s = m.runOk();
    EXPECT_EQ(s.branch_cycles, 1u);
}

TEST(Sim, GfInstructionsExecute)
{
    GFField aes(8, 0x11b);
    uint64_t blob = GFConfig::derive(8, 0x11b).pack();
    std::string src = strprintf(R"(
        gfcfg cfg
        li r1, #0x57575757
        li r2, #0x83838383
        gfmuls r3, r1, r2
        gfinvs r4, r1
        gfsqs  r5, r1
        gfadds r6, r1, r2
        li r7, #3
        gfpows r8, r1, r7
        li r9, #0xffffffff
        gf32mul r10, r11, r9, r9
        halt
    .data
    .align 8
    cfg: .word 0x%x, 0x%x
    )", static_cast<uint32_t>(blob), static_cast<uint32_t>(blob >> 32));

    Machine m = runGf(src);
    EXPECT_EQ(m.core().reg(3), splat(aes.mul(0x57, 0x83)));
    EXPECT_EQ(m.core().reg(4), splat(aes.inv(0x57)));
    EXPECT_EQ(m.core().reg(5), splat(aes.sqr(0x57)));
    EXPECT_EQ(m.core().reg(6), splat(0x57 ^ 0x83));
    EXPECT_EQ(lane(m.core().reg(8), 0), aes.pow(0x57, 3));
    uint64_t prod = clmul32(0xffffffff, 0xffffffff);
    EXPECT_EQ(m.core().reg(10), static_cast<uint32_t>(prod >> 32));
    EXPECT_EQ(m.core().reg(11), static_cast<uint32_t>(prod));
}

TEST(Sim, GfOpsAreSingleCycle)
{
    Machine m(R"(
        li r1, #0x01020304
        gfmuls r2, r1, r1
        gfinvs r3, r1
        gf32mul r4, r5, r1, r1
        halt
    )", CoreKind::kGfProcessor);
    CycleStats s = m.runOk();
    EXPECT_EQ(s.gf_simd_ops, 2u);
    EXPECT_EQ(s.gf_simd_cycles, 2u);
    EXPECT_EQ(s.gf32_ops, 1u);
    EXPECT_EQ(s.gf32_cycles, 1u);
}

TEST(Sim, BaselineCoreRejectsGfOps)
{
    Machine m("gfmuls r1, r2, r3\nhalt", CoreKind::kBaseline);
    RunResult r = m.runToHalt();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.trap.kind, TrapKind::kGfOnBaseline);
    EXPECT_EQ(r.trap.pc, 0u);
    EXPECT_TRUE(m.core().trapped());
}

TEST(Sim, BaselineRunsPlainCode)
{
    Machine m("li r1, #21\nadd r1, r1, r1\nhalt", CoreKind::kBaseline);
    m.runOk();
    EXPECT_EQ(m.core().reg(1), 42u);
}

TEST(Sim, RunawayGuardTraps)
{
    Machine m("loop: b loop", CoreKind::kBaseline);
    RunResult r = m.runToHalt(1000);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.trap.kind, TrapKind::kWatchdog);
    EXPECT_EQ(r.instrs, 1000u);
    // The watchdog is host policy, not core state: the core is still
    // runnable and the host may grant it more instructions.
    EXPECT_FALSE(m.core().trapped());
    EXPECT_FALSE(m.core().stopped());
}

TEST(Sim, MachineHelpers)
{
    Machine m(R"(
        la   r1, in
        ldr  r2, [r1]
        la   r3, out
        str  r2, [r3]
        halt
    .data
    in:  .word 0
    out: .word 0
    )", CoreKind::kGfProcessor);
    m.writeWord("in", 0xcafef00d);
    m.runOk();
    EXPECT_EQ(m.readWord("out"), 0xcafef00du);

    m.reset();
    m.writeWord("in", 0x12345678);
    m.runOk();
    EXPECT_EQ(m.readWord("out"), 0x12345678u);
}

TEST(Sim, ArgsInRegisters)
{
    Machine m("add r0, r0, r1\nhalt", CoreKind::kGfProcessor);
    m.setArgs({40, 2});
    m.runOk();
    EXPECT_EQ(m.core().reg(0), 42u);
}

TEST(Sim, MemoryBoundsTrap)
{
    Machine m(R"(
        li  r1, #0x7fffffff
        ldr r2, [r1]
        halt
    )", CoreKind::kGfProcessor);
    RunResult r = m.runToHalt();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.trap.kind, TrapKind::kOutOfRangeAccess);
    EXPECT_EQ(r.trap.addr, 0x7fffffffu);
    EXPECT_NE(r.trap.describe().find("OutOfRangeAccess"),
              std::string::npos);
}

TEST(Sim, IllegalInstructionTraps)
{
    // Jump into a data word: 0xffffffff decodes to no known opcode.
    Machine m(R"(
        la r1, bad
        jr r1
    .data
    .align 4
    bad: .word 0xffffffff
    )", CoreKind::kBaseline);
    RunResult r = m.runToHalt();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.trap.kind, TrapKind::kIllegalInstruction);
    EXPECT_EQ(r.trap.pc, m.addr("bad"));
    EXPECT_EQ(r.trap.addr, 0xffffffffu); // the undecodable word
}

TEST(Sim, PcFallsOffMemoryTraps)
{
    // No halt: execution runs off the end of the loaded image, through
    // zero-filled memory (opcode 0 = add), until the fetch itself goes
    // out of range — contained as a trap, never a host abort.
    Machine m("movi r1, #7", CoreKind::kBaseline, 1024);
    RunResult r = m.runToHalt();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.trap.kind, TrapKind::kOutOfRangeAccess);
    EXPECT_EQ(r.trap.addr, 1024u); // first fetch past the end
}

TEST(Sim, TrappedCoreRefusesFurtherSteps)
{
    Machine m("gfmuls r1, r2, r3\nhalt", CoreKind::kBaseline);
    ASSERT_FALSE(m.runToHalt().ok());
    // Repeated runs on a trapped core return the same trap instead of
    // re-executing.
    RunResult again = m.runToHalt();
    EXPECT_EQ(again.trap.kind, TrapKind::kGfOnBaseline);
    // reset() clears the trap and makes the core runnable again.
    m.reset();
    EXPECT_FALSE(m.core().trapped());
}

TEST(Sim, TrapDoesNotCommitSideEffects)
{
    // The faulting store must not advance pc or alter the target
    // register before the trap is taken.
    Machine m(R"(
        li  r1, #0x7fffffff
        li  r2, #0xdeadbeef
        str r2, [r1]
        halt
    )", CoreKind::kGfProcessor);
    RunResult r = m.runToHalt();
    ASSERT_EQ(r.trap.kind, TrapKind::kOutOfRangeAccess);
    EXPECT_EQ(m.core().pc(), r.trap.pc);
    EXPECT_EQ(m.core().reg(2), 0xdeadbeefu);
}

TEST(Sim, StatsSummaryRenders)
{
    Machine m("movi r1, #1\nhalt", CoreKind::kGfProcessor);
    CycleStats s = m.runOk();
    EXPECT_NE(s.summary().find("instrs=2"), std::string::npos);
}

} // namespace
} // namespace gfp
