/**
 * @file
 * Algebraic GFAU configuration verifier (analysis/config_verifier.h):
 * the basis-column proof over every supported field, independence of
 * the golden reduction, corruption detection, and blob classification.
 */

#include <gtest/gtest.h>

#include "analysis/config_verifier.h"
#include "gf/field.h"
#include "gf/polys.h"
#include "gfau/config_reg.h"

namespace gfp {
namespace {

TEST(ConfigVerifier, CatalogHasSixtyNineFields)
{
    // 1 + 2 + 3 + 6 + 9 + 18 + 30 irreducible polynomials, degrees 2..8.
    const unsigned expected[] = {0, 0, 1, 2, 3, 6, 9, 18, 30};
    unsigned total = 0;
    for (unsigned m = 2; m <= 8; ++m) {
        EXPECT_EQ(irreduciblePolys(m).size(), expected[m]) << "m=" << m;
        total += expected[m];
    }
    EXPECT_EQ(total, 69u);
}

TEST(ConfigVerifier, GoldenReductionMatchesFieldModel)
{
    // The verifier's private long-division reduction must agree with
    // the GFField golden model on every basis power of every field —
    // two independent implementations of the same algebra.
    for (unsigned m = 2; m <= 8; ++m) {
        for (uint32_t poly : irreduciblePolys(m)) {
            GFField field(m, poly);
            for (unsigned i = 0; i < 2 * m - 1; ++i) {
                EXPECT_EQ(polyModReduce(i, m, poly),
                          field.reduce(1u << i))
                    << "m=" << m << " poly=0x" << std::hex << poly
                    << " power=" << std::dec << i;
            }
        }
    }
}

TEST(ConfigVerifier, AllSixtyNineFieldsProve)
{
    VerifySummary s = verifyAllFields(false);
    EXPECT_EQ(s.fields_checked, 69u);
    for (const MatrixProof &p : s.failures)
        ADD_FAILURE() << p.describe();
    EXPECT_TRUE(s.ok());
}

TEST(ConfigVerifier, ExhaustiveSweepAgrees)
{
    // The linearity argument says the basis proof extends to all
    // 2^(2m-1) products; spot-prove that claim by brute force.
    VerifySummary s = verifyAllFields(true);
    EXPECT_EQ(s.fields_checked, 69u);
    EXPECT_TRUE(s.ok());
}

TEST(ConfigVerifier, EveryCorruptedColumnBitIsDetected)
{
    // Flip each bit of each used P column of each derived config: the
    // matrix proof and the structural proof must both refute it.
    for (unsigned m = 2; m <= 8; ++m) {
        for (uint32_t poly : irreduciblePolys(m)) {
            const GFConfig good = GFConfig::derive(m, poly);
            ASSERT_TRUE(verifyReductionMatrix(good, poly).ok);
            for (unsigned j = 0; j + 1 < m; ++j) {
                for (unsigned bit = 0; bit < m; ++bit) {
                    GFConfig bad = good;
                    bad.p_cols[j] ^= static_cast<uint8_t>(1u << bit);
                    MatrixProof alg = verifyReductionMatrix(bad, poly);
                    EXPECT_FALSE(alg.ok)
                        << "m=" << m << " poly=0x" << std::hex << poly;
                    EXPECT_FALSE(alg.detail.empty());
                    EXPECT_FALSE(verifyReductionStage(bad, poly).ok);
                }
            }
        }
    }
}

TEST(ConfigVerifier, WrongPolynomialRefuted)
{
    // A matrix derived for the RS polynomial is not a reduction mod the
    // AES polynomial, and vice versa.
    GFConfig rs = GFConfig::derive(8, 0x11d);
    GFConfig aes = GFConfig::derive(8, 0x11b);
    EXPECT_TRUE(verifyReductionMatrix(rs, 0x11d).ok);
    EXPECT_TRUE(verifyReductionMatrix(aes, 0x11b).ok);
    EXPECT_FALSE(verifyReductionMatrix(rs, 0x11b).ok);
    EXPECT_FALSE(verifyReductionMatrix(aes, 0x11d).ok);
}

TEST(ConfigVerifier, DegreeMismatchRefuted)
{
    GFConfig cfg = GFConfig::derive(8, 0x11d);
    MatrixProof p = verifyReductionMatrix(cfg, 0x43); // degree 6
    EXPECT_FALSE(p.ok);
}

TEST(ConfigVerifier, InvalidWidthRefuted)
{
    GFConfig cfg = GFConfig::derive(8, 0x11d);
    cfg.m = 12;
    EXPECT_FALSE(verifyReductionMatrix(cfg, 0x11d).ok);
    EXPECT_FALSE(verifyReductionStage(cfg, 0x11d).ok);
}

TEST(ConfigVerifier, ClassifyRecoversEveryDerivedField)
{
    // Distinct polynomials give distinct column-0 patterns (x^m mod r
    // is r's low bits), so classification is exact, not just "a field".
    for (unsigned m = 2; m <= 8; ++m) {
        for (uint32_t poly : irreduciblePolys(m)) {
            ConfigClassification c =
                classifyConfig(GFConfig::derive(m, poly));
            EXPECT_EQ(c.cls, ConfigClass::kField);
            EXPECT_EQ(c.m, m);
            EXPECT_EQ(c.poly, poly);
        }
    }
}

TEST(ConfigVerifier, ClassifyCirculantRing)
{
    for (unsigned m = 2; m <= 8; ++m) {
        ConfigClassification c = classifyConfig(GFConfig::circulant(m));
        EXPECT_EQ(c.cls, ConfigClass::kCirculant) << "m=" << m;
    }
}

TEST(ConfigVerifier, ClassifyInvalidAndUnknown)
{
    GFConfig cfg = GFConfig::derive(8, 0x11d);
    cfg.m = 0;
    EXPECT_EQ(classifyConfig(cfg).cls, ConfigClass::kInvalid);
    cfg.m = 9;
    EXPECT_EQ(classifyConfig(cfg).cls, ConfigClass::kInvalid);

    cfg.m = 8;
    cfg.p_cols.fill(0xff);
    EXPECT_EQ(classifyConfig(cfg).cls, ConfigClass::kUnknown);
}

TEST(ConfigVerifier, ClassifiedCorruptionOfKnownMatrix)
{
    // The acceptance scenario: a single flipped bit in a known-good
    // P matrix must stop classifying as that field.
    GFConfig cfg = GFConfig::derive(8, 0x11d);
    cfg.p_cols[3] ^= 0x10;
    ConfigClassification c = classifyConfig(cfg);
    EXPECT_FALSE(c.cls == ConfigClass::kField && c.poly == 0x11d);
}

} // namespace
} // namespace gfp
