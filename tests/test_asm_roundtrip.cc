/**
 * @file
 * Assembler/disassembler round-trip fuzzing at the *stream* level, and
 * malformed-source error reporting through Assembler::tryAssemble.
 *
 * tests/test_fuzz.cc round-trips single instructions; here a seeded
 * generator emits whole random instruction streams over the full opcode
 * space, assembles them, disassembles the resulting code image, and
 * re-assembles that text — the two code images must be identical word
 * for word (assemble ∘ disassemble is the identity on assembled code).
 * Malformed source must come back as a reported error with a line
 * number, never as a host abort.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/random.h"
#include "common/strutil.h"
#include "isa/assembler.h"
#include "isa/disasm.h"
#include "isa/encoding.h"

namespace gfp {
namespace {

/** Random instruction with in-range fields for its encoding shape. */
Instr
randomInstr(Rng &rng)
{
    Instr in;
    in.op = static_cast<Op>(rng.below(static_cast<unsigned>(Op::kNumOps)));
    in.rd = static_cast<uint8_t>(rng.below(kNumRegs));
    in.rs1 = static_cast<uint8_t>(rng.below(kNumRegs));
    in.rs2 = static_cast<uint8_t>(rng.below(kNumRegs));
    in.rd2 = static_cast<uint8_t>(rng.below(kNumRegs));
    switch (immKindOf(in.op)) {
      case ImmKind::kImm16:
        in.imm = static_cast<int32_t>(rng.below(0x10000));
        break;
      case ImmKind::kSImm16:
        in.imm = static_cast<int32_t>(rng.below(0x10000)) - 0x8000;
        break;
      case ImmKind::kImm12:
        in.imm = static_cast<int32_t>(rng.below(0x1000)) - 0x800;
        break;
      case ImmKind::kImm20:
        in.imm = static_cast<int32_t>(rng.below(0x100000));
        break;
      case ImmKind::kNone:
        break;
    }
    return in;
}

/** Disassemble one instruction to re-assemblable text (branches use
 *  the raw-offset syntax, since label reconstruction is out of scope). */
std::string
instrText(const Instr &in)
{
    if (isPcRelBranch(in.op))
        return strprintf("%s %d", opName(in.op), in.imm);
    return disassemble(in);
}

TEST(AsmRoundTrip, RandomStreamsAreAFixedPoint)
{
    // stream -> assemble -> disassemble -> re-assemble must reproduce
    // the code image exactly.
    Rng rng(0x5eed);
    for (int trial = 0; trial < 200; ++trial) {
        std::ostringstream src;
        const unsigned len = 1 + static_cast<unsigned>(rng.below(64));
        for (unsigned i = 0; i < len; ++i)
            src << instrText(randomInstr(rng)) << "\n";
        src << "halt\n";

        Program first = Assembler::assemble(src.str());
        ASSERT_GE(first.code.size(), len + 1) << src.str();

        std::ostringstream redisasm;
        for (uint32_t word : first.code)
            redisasm << instrText(decode(word)) << "\n";
        Program second = Assembler::assemble(redisasm.str());

        ASSERT_EQ(second.code, first.code)
            << "trial " << trial << "\n-- original --\n"
            << src.str() << "-- redisassembled --\n"
            << redisasm.str();
    }
}

TEST(AsmRoundTrip, TryAssembleMatchesAssembleOnValidSource)
{
    const std::string src = "start:\n"
                            "    li   r0, #0x1234\n"
                            "    la   r1, table\n"
                            "    ldrb r2, [r1, r0]\n"
                            "    halt\n"
                            ".data\n"
                            "table: .byte 1, 2, 3, 4\n";
    Program via_try;
    std::string error;
    ASSERT_TRUE(Assembler::tryAssemble(src, via_try, error)) << error;
    EXPECT_TRUE(error.empty());

    Program via_fatal = Assembler::assemble(src);
    EXPECT_EQ(via_try.code, via_fatal.code);
    EXPECT_EQ(via_try.data, via_fatal.data);
    EXPECT_EQ(via_try.symbols, via_fatal.symbols);
}

TEST(AsmRoundTrip, MalformedSourceReportsErrors)
{
    // Each of these must produce a reported diagnostic (carrying a line
    // number), not a host exit or an assertion failure.
    const char *broken[] = {
        "bogus r1, r2\nhalt\n",          // unknown mnemonic
        "movi r0\nhalt\n",               // missing operand
        "movi r99, #1\nhalt\n",          // register out of range
        "ldr r0, [r1\nhalt\n",           // unbalanced bracket
        "b nowhere\nhalt\n",             // undefined label
        ".data\n.byte 300\n",            // data value out of range
        ".align 3\nhalt\n",              // non-power-of-two alignment
        "add r0, r1, r2, r3, r4\nhalt\n" // too many operands
    };
    for (const char *src : broken) {
        Program out;
        std::string error;
        EXPECT_FALSE(Assembler::tryAssemble(src, out, error)) << src;
        EXPECT_NE(error.find("line"), std::string::npos)
            << "diagnostic for \"" << src << "\" was: " << error;
    }

    // Field-range checks live in encode(), after line numbers are gone;
    // they must still surface as a reported error, not an exit.
    Program out;
    std::string error;
    EXPECT_FALSE(
        Assembler::tryAssemble("movi r0, #0x12345678\nhalt\n", out, error));
    EXPECT_NE(error.find("16-bit"), std::string::npos) << error;
}

TEST(AsmRoundTrip, GarbageSourceNeverAborts)
{
    // Random printable garbage: tryAssemble must always return (either
    // outcome), never exit or assert.
    Rng rng(0xbadf00d);
    const char alphabet[] = "abcdefghijklmnopqrstuvwxyz"
                            "0123456789 ,#[]:.-+;\t";
    for (int trial = 0; trial < 500; ++trial) {
        std::string src;
        const unsigned lines = 1 + static_cast<unsigned>(rng.below(8));
        for (unsigned l = 0; l < lines; ++l) {
            const unsigned len = static_cast<unsigned>(rng.below(24));
            for (unsigned i = 0; i < len; ++i)
                src += alphabet[rng.below(sizeof(alphabet) - 1)];
            src += '\n';
        }
        Program out;
        std::string error;
        if (!Assembler::tryAssemble(src, out, error)) {
            EXPECT_FALSE(error.empty()) << src;
        }
    }
}

} // namespace
} // namespace gfp
