/**
 * @file
 * Tests for the ISA layer: instruction encode/decode round trips, the
 * disassembler, and the two-pass assembler (labels, sections,
 * directives, pseudo-instructions, error cases).
 */

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/disasm.h"
#include "isa/encoding.h"

namespace gfp {
namespace {

TEST(Encoding, RoundTripAllShapes)
{
    std::vector<Instr> cases = {
        {Op::kAdd, 1, 2, 3, 0, 0},
        {Op::kMov, 4, 5, 0, 0, 0},
        {Op::kCmp, 0, 6, 7, 0, 0},
        {Op::kAddi, 1, 2, 0, 0, -5},
        {Op::kAddi, 1, 2, 0, 0, 2047},
        {Op::kAddi, 1, 2, 0, 0, -2048},
        {Op::kMovi, 3, 0, 0, 0, 0xffff},
        {Op::kMovt, 3, 0, 0, 0, 0xabcd},
        {Op::kLdr, 4, 13, 0, 0, -8},
        {Op::kStrb, 5, 6, 0, 0, 100},
        {Op::kLdrr, 7, 8, 9, 0, 0},
        {Op::kB, 0, 0, 0, 0, -300},
        {Op::kBne, 0, 0, 0, 0, 32767},
        {Op::kBl, 0, 0, 0, 0, -32768},
        {Op::kJr, 0, 14, 0, 0, 0},
        {Op::kRet, 0, 0, 0, 0, 0},
        {Op::kHalt, 0, 0, 0, 0, 0},
        {Op::kGfMuls, 1, 2, 3, 0, 0},
        {Op::kGfInvs, 4, 5, 0, 0, 0},
        {Op::kGf32Mul, 6, 8, 9, 7, 0},
        {Op::kGfCfg, 0, 0, 0, 0, 0xabcde},
    };
    for (const Instr &in : cases) {
        Instr out = decode(encode(in));
        EXPECT_EQ(out, in) << disassemble(in);
    }
}

TEST(Encoding, RangeChecksDie)
{
    EXPECT_DEATH(encode({Op::kAddi, 0, 0, 0, 0, 2048}), "12-bit");
    EXPECT_DEATH(encode({Op::kMovi, 0, 0, 0, 0, 0x10000}), "16-bit");
    EXPECT_DEATH(encode({Op::kB, 0, 0, 0, 0, 40000}), "16-bit");
    EXPECT_DEATH(encode({Op::kGfCfg, 0, 0, 0, 0, 1 << 20}), "20-bit");
}

TEST(Encoding, DecodeUnknownOpcodeDies)
{
    EXPECT_DEATH(decode(0xff000000u), "unknown opcode");
}

TEST(Disasm, RepresentativeStrings)
{
    EXPECT_EQ(disassemble({Op::kAdd, 1, 2, 3, 0, 0}), "add     r1, r2, r3");
    EXPECT_EQ(disassemble({Op::kLdr, 4, 13, 0, 0, -8}),
              "ldr     r4, [sp, #-8]");
    EXPECT_EQ(disassemble({Op::kLdr, 4, 2, 0, 0, 0}), "ldr     r4, [r2]");
    EXPECT_EQ(disassemble({Op::kLdrbr, 1, 2, 3, 0, 0}),
              "ldrb    r1, [r2, r3]");
    EXPECT_EQ(disassemble({Op::kGf32Mul, 6, 8, 9, 7, 0}),
              "gf32mul r6, r7, r8, r9");
    EXPECT_EQ(disassemble({Op::kB, 0, 0, 0, 0, 4}, 0x100), "b       0x114");
    EXPECT_EQ(disassemble({Op::kRet, 0, 0, 0, 0, 0}), "ret");
}

TEST(Assembler, MinimalProgram)
{
    Program p = Assembler::assemble(R"(
        movi r0, #42
        halt
    )");
    ASSERT_EQ(p.code.size(), 2u);
    Instr i0 = decode(p.code[0]);
    EXPECT_EQ(i0.op, Op::kMovi);
    EXPECT_EQ(i0.rd, 0);
    EXPECT_EQ(i0.imm, 42);
    EXPECT_EQ(decode(p.code[1]).op, Op::kHalt);
}

TEST(Assembler, LabelsAndBranches)
{
    Program p = Assembler::assemble(R"(
        movi r0, #0
    loop:
        addi r0, r0, #1
        cmpi r0, #10
        bne  loop
        halt
    )");
    ASSERT_EQ(p.code.size(), 5u);
    EXPECT_EQ(p.symbol("loop"), 4u);
    Instr bne = decode(p.code[3]);
    EXPECT_EQ(bne.op, Op::kBne);
    // bne at byte 12; target 4: offset = (4 - 16)/4 = -3
    EXPECT_EQ(bne.imm, -3);
}

TEST(Assembler, ForwardReferences)
{
    Program p = Assembler::assemble(R"(
        b end
        nop
    end:
        halt
    )");
    Instr b0 = decode(p.code[0]);
    EXPECT_EQ(b0.imm, 1); // skip one instruction
}

TEST(Assembler, DataSectionAndSymbols)
{
    Program p = Assembler::assemble(R"(
        la   r1, table
        ldrb r2, [r1, #2]
        halt
    .data
    table:
        .byte 10, 20, 30, 40
    val:
        .word 0xdeadbeef
    buf:
        .space 8
    )");
    // la = 2 instrs + 2 = 4 instrs = 16 bytes; data base aligned to 16.
    EXPECT_EQ(p.data_base % 8, 0u);
    EXPECT_EQ(p.symbol("table"), p.data_base);
    EXPECT_EQ(p.symbol("val"), p.data_base + 4);
    EXPECT_EQ(p.symbol("buf"), p.data_base + 8);
    ASSERT_EQ(p.data.size(), 16u);
    EXPECT_EQ(p.data[0], 10);
    EXPECT_EQ(p.data[3], 40);
    EXPECT_EQ(p.data[4], 0xef);
    EXPECT_EQ(p.data[7], 0xde);
}

TEST(Assembler, AlignDirective)
{
    Program p = Assembler::assemble(R"(
        halt
    .data
        .byte 1
        .align 8
    blob:
        .word 1, 2
    )");
    EXPECT_EQ(p.symbol("blob") % 8, 0u);
}

TEST(Assembler, LiPseudoSizes)
{
    Program small = Assembler::assemble("li r0, #100\nhalt");
    EXPECT_EQ(small.code.size(), 2u);

    Program large = Assembler::assemble("li r0, #0x12345\nhalt");
    EXPECT_EQ(large.code.size(), 3u);
    EXPECT_EQ(decode(large.code[0]).op, Op::kMovi);
    EXPECT_EQ(decode(large.code[0]).imm, 0x2345);
    EXPECT_EQ(decode(large.code[1]).op, Op::kMovt);
    EXPECT_EQ(decode(large.code[1]).imm, 0x1);

    Program neg = Assembler::assemble("li r0, #-1\nhalt");
    EXPECT_EQ(neg.code.size(), 3u);
}

TEST(Assembler, WordDirectiveWithLabelRef)
{
    Program p = Assembler::assemble(R"(
        halt
    .data
    table:
        .word after
    after:
        .byte 1
    )");
    uint32_t stored = p.data[0] | (p.data[1] << 8) | (p.data[2] << 16) |
                      (p.data[3] << 24);
    EXPECT_EQ(stored, p.symbol("after"));
}

TEST(Assembler, MemoryOperandVariants)
{
    Program p = Assembler::assemble(R"(
        ldr  r1, [r2]
        ldr  r1, [r2, #4]
        ldr  r1, [r2, r3]
        strh r1, [r2, r3]
        halt
    )");
    EXPECT_EQ(decode(p.code[0]).op, Op::kLdr);
    EXPECT_EQ(decode(p.code[0]).imm, 0);
    EXPECT_EQ(decode(p.code[1]).imm, 4);
    EXPECT_EQ(decode(p.code[2]).op, Op::kLdrr);
    EXPECT_EQ(decode(p.code[3]).op, Op::kStrhr);
}

TEST(Assembler, GfInstructions)
{
    Program p = Assembler::assemble(R"(
        gfcfg cfg
        gfmuls r1, r2, r3
        gfinvs r4, r5
        gfsqs  r6, r7
        gfpows r8, r9, r10
        gfadds r11, r12, r1
        gf32mul r2, r3, r4, r5
        halt
    .data
    .align 8
    cfg:
        .word 0, 0
    )");
    EXPECT_EQ(decode(p.code[0]).op, Op::kGfCfg);
    EXPECT_EQ(static_cast<uint32_t>(decode(p.code[0]).imm), p.symbol("cfg"));
    Instr gf32 = decode(p.code[6]);
    EXPECT_EQ(gf32.rd, 2);   // high word
    EXPECT_EQ(gf32.rd2, 3);  // low word
    EXPECT_EQ(gf32.rs1, 4);
    EXPECT_EQ(gf32.rs2, 5);
}

TEST(Assembler, CommentsAndWhitespace)
{
    Program p = Assembler::assemble(R"(
        ; full-line comment
        movi r0, #1   ; trailing comment
        // c++ style
        halt          // done
    )");
    EXPECT_EQ(p.code.size(), 2u);
}

TEST(Assembler, SpAndLrAliases)
{
    Program p = Assembler::assemble(R"(
        str lr, [sp, #-4]
        halt
    )");
    Instr i = decode(p.code[0]);
    EXPECT_EQ(i.rd, kRegLr);
    EXPECT_EQ(i.rs1, kRegSp);
}

TEST(Assembler, ErrorsAreFatal)
{
    EXPECT_DEATH(Assembler::assemble("bogus r1, r2"), "unknown mnemonic");
    EXPECT_DEATH(Assembler::assemble("b nowhere"), "undefined label");
    EXPECT_DEATH(Assembler::assemble("add r1, r2"), "expects 3 operands");
    EXPECT_DEATH(Assembler::assemble("movi r16, #1"), "expected register");
    EXPECT_DEATH(Assembler::assemble("addi r1, r2, #9999"), "12-bit");
    EXPECT_DEATH(Assembler::assemble(".word 5"), "in .text");
    EXPECT_DEATH(Assembler::assemble(".data\nmovi r0, #1"), "in .data");
}

} // namespace
} // namespace gfp
