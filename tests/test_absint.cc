/**
 * @file
 * Abstract-interpretation engine tests (analysis/absint.h): the
 * interval / known-bits product domain, constant propagation, guard
 * refinement, loop-bound inference for register and memory-held
 * induction variables, derived affine clamps for stepped pointers,
 * tracked-memory-cell invalidation, and the indirect-jump refinement
 * regression fixtures (constant register and guarded jump table).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "analysis/absint.h"
#include "analysis/cfg.h"
#include "isa/assembler.h"
#include "isa/program.h"

namespace gfp {
namespace {

Program
assembleOrDie(const std::string &src)
{
    Program prog;
    AsmDiagnostic diag;
    if (!Assembler::tryAssemble(src, prog, diag))
        ADD_FAILURE() << "assembly failed: " << diag.message;
    return prog;
}

/** Word index of label @p name; labels live in the code section. */
uint32_t
wordOf(const Program &prog, const std::string &name)
{
    auto it = prog.symbols.find(name);
    EXPECT_NE(it, prog.symbols.end()) << "no label " << name;
    return it == prog.symbols.end() ? 0 : it->second / 4;
}

/** Run the interpreter over @p src; the CFG outlives the call via
 *  the fixture holding both. */
struct Analyzed
{
    Program prog;
    ControlFlowGraph cfg;
    AbsInterp ai;

    explicit Analyzed(const std::string &src)
        : prog(assembleOrDie(src)), cfg(prog), ai(cfg)
    {
        ai.run();
    }
};

TEST(AbsDomain, IntervalBasics)
{
    Interval t = Interval::top();
    EXPECT_TRUE(t.isTop());
    EXPECT_TRUE(t.contains(0));
    EXPECT_TRUE(t.contains(0xffffffffu));

    Interval c = Interval::constant(42);
    EXPECT_TRUE(c.isConst());
    EXPECT_TRUE(c.contains(42));
    EXPECT_FALSE(c.contains(43));
    EXPECT_EQ(c.width(), 1u);

    Interval r = Interval::range(10, 20);
    EXPECT_EQ(r.width(), 11u);
    EXPECT_FALSE(r.isTop());
    EXPECT_FALSE(r.isConst());
}

TEST(AbsDomain, KnownBitsAndReduction)
{
    AbsValue v = AbsValue::constant(0xa5);
    uint32_t k = 0;
    EXPECT_TRUE(v.isConst(&k));
    EXPECT_EQ(k, 0xa5u);
    // A constant knows every bit.
    EXPECT_EQ(v.kb.known(), 0xffffffffu);
    EXPECT_TRUE(v.kb.matches(0xa5));
    EXPECT_FALSE(v.kb.matches(0xa4));

    // A small range pins the high bits to zero.
    AbsValue r = AbsValue::range(0, 7);
    EXPECT_EQ(r.kb.zeros & ~7u, ~7u);
}

TEST(AbsInt, ConstantsPropagateToHalt)
{
    Analyzed a(R"(
    movi r1, #5
    li   r2, #70000
    la   r3, slot
    add  r4, r1, r1
done:
    halt
.data
.align 4
slot:
    .space 4
)");
    const AbsState &st = a.ai.inState(wordOf(a.prog, "done"));
    ASSERT_TRUE(st.reachable);
    uint32_t v = 0;
    EXPECT_TRUE(st.reg[1].isConst(&v));
    EXPECT_EQ(v, 5u);
    EXPECT_TRUE(st.reg[2].isConst(&v));
    EXPECT_EQ(v, 70000u);
    EXPECT_TRUE(st.reg[3].isConst(&v));
    EXPECT_EQ(v, a.prog.symbols.at("slot"));
    EXPECT_TRUE(st.reg[4].isConst(&v));
    EXPECT_EQ(v, 10u);
}

TEST(AbsInt, GuardRefinesComparedRegister)
{
    // r1 is unknown (loaded from memory); the blo guard bounds it on
    // the taken edge.
    Analyzed a(R"(
    la   r2, slot
    ldr  r1, [r2, #0]
    cmpi r1, #10
    blo  small
    halt
small:
    halt
.data
.align 4
slot:
    .space 4
)");
    const AbsState &st = a.ai.inState(wordOf(a.prog, "small"));
    ASSERT_TRUE(st.reachable);
    EXPECT_FALSE(st.reg[1].iv.isTop());
    EXPECT_LE(st.reg[1].iv.hi, 9u);
}

TEST(AbsInt, RegisterLoopBoundDownCount)
{
    Analyzed a(R"(
    movi r8, #10
loop:
    subi r8, r8, #1
    cmpi r8, #0
    bne  loop
    halt
)");
    ASSERT_EQ(a.ai.loops().size(), 1u);
    const LoopBound &lb = a.ai.loops()[0];
    EXPECT_TRUE(lb.bounded) << lb.reason;
    EXPECT_EQ(lb.max_head_visits, 10u);
    EXPECT_EQ(lb.iv_reg, 8);
}

TEST(AbsInt, RegisterLoopBoundUpCount)
{
    Analyzed a(R"(
    movi r8, #0
loop:
    addi r8, r8, #1
    cmpi r8, #16
    blo  loop
    halt
)");
    ASSERT_EQ(a.ai.loops().size(), 1u);
    const LoopBound &lb = a.ai.loops()[0];
    EXPECT_TRUE(lb.bounded) << lb.reason;
    EXPECT_EQ(lb.max_head_visits, 16u);
}

TEST(AbsInt, MemoryCellInductionVariable)
{
    // The counter lives in memory: load / step / store-back / compare.
    // No register carries it across the back edge, so only the tracked
    // cell domain can bound this loop.
    Analyzed a(R"(
    movi r3, #5
    la   r4, counter
    str  r3, [r4]
loop:
    la   r4, counter
    ldr  r3, [r4]
    subi r3, r3, #1
    str  r3, [r4]
    cmpi r3, #0
    bne  loop
    halt
.data
.align 4
counter:
    .space 4
)");
    ASSERT_EQ(a.ai.loops().size(), 1u);
    const LoopBound &lb = a.ai.loops()[0];
    EXPECT_TRUE(lb.bounded) << lb.reason;
    EXPECT_EQ(lb.max_head_visits, 5u);
    EXPECT_NE(lb.reason.find("memory induction"), std::string::npos)
        << lb.reason;
}

TEST(AbsInt, MemoryCellIvSurvivesCallWithBoundedStores)
{
    // Same memory-held counter, but with an interposed call whose
    // store summary (writes through its pointer arguments into buf)
    // must be proven to miss the counter cell.
    Analyzed a(R"(
    movi r3, #5
    la   r4, counter
    str  r3, [r4]
loop:
    la   r0, buf
    mov  r2, r0
    bl   work
    la   r4, counter
    ldr  r3, [r4]
    subi r3, r3, #1
    str  r3, [r4]
    cmpi r3, #0
    bne  loop
    halt
work:
    ldr  r5, [r0]
    addi r5, r5, #1
    str  r5, [r2]
    ret
.data
.align 4
buf:
    .space 32
counter:
    .space 4
)");
    ASSERT_EQ(a.ai.loops().size(), 1u);
    const LoopBound &lb = a.ai.loops()[0];
    EXPECT_TRUE(lb.bounded) << lb.reason;
    EXPECT_EQ(lb.max_head_visits, 5u);
}

TEST(AbsInt, DerivedClampKeepsSteppedPointerProven)
{
    // r1 walks buf one byte per iteration of a loop bounded at 8;
    // the derived affine clamp must keep the strb address inside
    // [buf, buf + 7] instead of widening to top.
    Analyzed a(R"(
    movi r8, #8
    la   r1, buf
loop:
    strb r0, [r1, #0]
    addi r1, r1, #1
    subi r8, r8, #1
    cmpi r8, #0
    bne  loop
    halt
.data
buf:
    .space 8
)");
    ASSERT_EQ(a.ai.loops().size(), 1u);
    EXPECT_TRUE(a.ai.loops()[0].bounded) << a.ai.loops()[0].reason;

    uint32_t buf = a.prog.symbols.at("buf");
    const MemAccess *ma = a.ai.memAccessAt(wordOf(a.prog, "loop"));
    ASSERT_NE(ma, nullptr);
    EXPECT_TRUE(ma->is_store);
    EXPECT_TRUE(ma->proven);
    EXPECT_GE(ma->addr.lo, buf);
    EXPECT_LE(ma->addr.hi, buf + 7);
}

TEST(AbsInt, ImpreciseStoreInvalidatesTrackedCell)
{
    // A store through an unknown pointer must drop the tracked cell:
    // r3 (reloaded before) stays constant, r5 (reloaded after) is top.
    Analyzed a(R"(
    la   r1, slot
    movi r2, #7
    str  r2, [r1, #0]
    ldr  r3, [r1, #0]
    la   r6, wild
    ldr  r4, [r6, #0]
    str  r2, [r4, #0]
    ldr  r5, [r1, #0]
done:
    halt
.data
.align 4
slot:
    .space 4
wild:
    .space 4
)");
    const AbsState &st = a.ai.inState(wordOf(a.prog, "done"));
    ASSERT_TRUE(st.reachable);
    uint32_t v = 0;
    EXPECT_TRUE(st.reg[3].isConst(&v));
    EXPECT_EQ(v, 7u);
    EXPECT_TRUE(st.reg[5].iv.isTop());
}

TEST(AbsInt, InputDependentLoopStaysUnbounded)
{
    // The trip count is host-written data: soundness demands the
    // bounder declines rather than guesses.
    Analyzed a(R"(
    la   r1, n
    ldr  r8, [r1, #0]
loop:
    subi r8, r8, #1
    cmpi r8, #0
    bne  loop
    halt
.data
.align 4
n:
    .space 4
)");
    ASSERT_EQ(a.ai.loops().size(), 1u);
    EXPECT_FALSE(a.ai.loops()[0].bounded);
    EXPECT_FALSE(a.ai.loops()[0].reason.empty());
}

TEST(AbsInt, IndirectJumpConstantRegisterRefined)
{
    Analyzed a(R"(
    la   r2, t0
    jr   r2
t0:
    halt
)");
    EXPECT_EQ(a.ai.refinedIndirects(), 1u);
    uint32_t jr = wordOf(a.prog, "t0") - 1;
    EXPECT_TRUE(a.ai.indirectTargetsOk(jr));
    auto succ = a.cfg.intraSucc(jr);
    ASSERT_EQ(succ.size(), 1u);
    EXPECT_EQ(succ[0], wordOf(a.prog, "t0"));
}

/** Regression fixture for jump-table refinement: a `jr` through a
 *  block-local load from a store-untouched table, index bounded by a
 *  guard, must get exactly the table's targets as CFG edges (and the
 *  loop after the join must still certify bounded). */
TEST(AbsInt, IndirectJumpTableRefined)
{
    Analyzed a(R"(
    la   r1, sel
    ldr  r3, [r1, #0]
    cmpi r3, #2
    bhs  out
    lsli r3, r3, #2
    la   r2, table
    ldr  r2, [r2, r3]
    jr   r2
t0:
    movi r4, #1
    b    join
t1:
    movi r4, #2
join:
    movi r8, #4
loop:
    subi r8, r8, #1
    cmpi r8, #0
    bne  loop
out:
    halt
.data
.align 4
sel:
    .space 4
table:
    .word t0, t1
)");
    EXPECT_EQ(a.ai.refinedIndirects(), 1u);
    uint32_t jr = wordOf(a.prog, "t0") - 1;
    EXPECT_TRUE(a.ai.indirectTargetsOk(jr));

    auto succ = a.cfg.intraSucc(jr);
    ASSERT_EQ(succ.size(), 2u);
    EXPECT_EQ(succ[0], wordOf(a.prog, "t0"));
    EXPECT_EQ(succ[1], wordOf(a.prog, "t1"));

    // Both arms reach the join; the loop behind it still bounds.
    bool found = false;
    for (const LoopBound &lb : a.ai.loops()) {
        if (lb.head != wordOf(a.prog, "loop"))
            continue;
        found = true;
        EXPECT_TRUE(lb.bounded) << lb.reason;
        EXPECT_EQ(lb.max_head_visits, 4u);
    }
    EXPECT_TRUE(found);
}

} // namespace
} // namespace gfp
