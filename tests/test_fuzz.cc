/**
 * @file
 * Property/fuzz tests across module boundaries:
 *  - encode -> disassemble -> re-assemble -> encode round trips for
 *    randomly generated instructions;
 *  - a differential test of the simulator's ALU against a host-side
 *    interpreter over random straight-line programs;
 *  - AES-192/256 full-block kernels against FIPS-197 vectors;
 *  - shortened RS codes;
 *  - randomized end-to-end RS decode through the four assembly kernels.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "coding/channel.h"
#include "coding/decoder_kernels.h"
#include "coding/rs.h"
#include "common/random.h"
#include "common/strutil.h"
#include "crypto/aes.h"
#include "isa/assembler.h"
#include "isa/disasm.h"
#include "isa/encoding.h"
#include "kernels/aes_kernels.h"
#include "kernels/coding_kernels.h"
#include "sim/machine.h"

namespace gfp {
namespace {

// ------------------- disasm/assembler round trip ---------------------

TEST(Fuzz, DisasmAssembleRoundTrip)
{
    // Any instruction we can generate must disassemble to text the
    // assembler maps back to the identical encoding.
    Rng rng(2024);
    std::vector<Op> ops;
    for (unsigned o = 0; o < static_cast<unsigned>(Op::kNumOps); ++o)
        ops.push_back(static_cast<Op>(o));

    unsigned checked = 0;
    for (int trial = 0; trial < 4000; ++trial) {
        Instr in;
        in.op = ops[rng.below(ops.size())];
        in.rd = static_cast<uint8_t>(rng.below(kNumRegs));
        in.rs1 = static_cast<uint8_t>(rng.below(kNumRegs));
        in.rs2 = static_cast<uint8_t>(rng.below(kNumRegs));
        in.rd2 = static_cast<uint8_t>(rng.below(kNumRegs));
        switch (immKindOf(in.op)) {
          case ImmKind::kImm16:
            in.imm = static_cast<int32_t>(rng.below(0x10000));
            break;
          case ImmKind::kSImm16:
            in.imm = static_cast<int32_t>(rng.below(0x10000)) - 0x8000;
            break;
          case ImmKind::kImm12:
            in.imm = static_cast<int32_t>(rng.below(0x1000)) - 0x800;
            break;
          case ImmKind::kImm20:
            in.imm = static_cast<int32_t>(rng.below(0x100000));
            break;
          case ImmKind::kNone:
            break;
        }
        // Branches disassemble as relative offsets only without a pc;
        // feed them through with a known pc of 0 and a matching label
        // is overkill — use the offset syntax directly.
        std::string text = disassemble(in);
        if (isPcRelBranch(in.op)) {
            text = strprintf("%s %d", opName(in.op), in.imm);
        }
        Program prog = Assembler::assemble(text + "\nhalt");
        ASSERT_GE(prog.code.size(), 2u) << text;
        Instr back = decode(prog.code[0]);

        // Normalize fields the encoding does not carry for this shape.
        Instr norm = in;
        switch (immKindOf(in.op)) {
          case ImmKind::kImm16:
            norm.rs1 = norm.rs2 = norm.rd2 = 0;
            break;
          case ImmKind::kSImm16:
          case ImmKind::kImm20:
            norm.rd = norm.rs1 = norm.rs2 = norm.rd2 = 0;
            break;
          case ImmKind::kImm12:
            norm.rs2 = norm.rd2 = 0;
            break;
          case ImmKind::kNone:
            norm.imm = 0;
            break;
        }
        // Shape-specific unused registers.
        switch (in.op) {
          case Op::kMov: case Op::kGfInvs: case Op::kGfSqs:
            norm.rs2 = norm.rd2 = 0; break;
          case Op::kCmp:
            norm.rd = norm.rd2 = 0; break;
          case Op::kCmpi:
            norm.rd = 0; break;
          case Op::kJr:
            norm.rd = norm.rs2 = norm.rd2 = 0; break;
          case Op::kRet: case Op::kNop: case Op::kHalt:
            norm.rd = norm.rs1 = norm.rs2 = norm.rd2 = 0; break;
          case Op::kAdd: case Op::kSub: case Op::kAnd: case Op::kOrr:
          case Op::kEor: case Op::kLsl: case Op::kLsr: case Op::kAsr:
          case Op::kMul: case Op::kGfMuls: case Op::kGfPows:
          case Op::kGfAdds:
            norm.rd2 = 0; break;
          case Op::kLdrr: case Op::kStrr: case Op::kLdrbr:
          case Op::kStrbr: case Op::kLdrhr: case Op::kStrhr:
            norm.rd2 = 0; break;
          default:
            break;
        }
        EXPECT_EQ(back, norm) << "text: " << text;
        ++checked;
    }
    EXPECT_EQ(checked, 4000u);
}

// ------------------ ALU differential vs host model -------------------

TEST(Fuzz, AluDifferentialAgainstHostModel)
{
    // Random straight-line register programs; the simulator must agree
    // with a direct host-side evaluation.
    Rng rng(777);
    struct OpSpec { Op op; const char *mn; };
    const OpSpec specs[] = {
        {Op::kAdd, "add"}, {Op::kSub, "sub"}, {Op::kAnd, "and"},
        {Op::kOrr, "orr"}, {Op::kEor, "eor"}, {Op::kLsl, "lsl"},
        {Op::kLsr, "lsr"}, {Op::kAsr, "asr"}, {Op::kMul, "mul"},
    };

    for (int trial = 0; trial < 60; ++trial) {
        uint32_t regs[8];
        std::ostringstream src;
        for (unsigned r = 0; r < 8; ++r) {
            regs[r] = rng.next32();
            src << strprintf("li r%u, #0x%x\n", r, regs[r]);
        }
        for (int step = 0; step < 40; ++step) {
            const OpSpec &spec = specs[rng.below(std::size(specs))];
            unsigned rd = rng.below(8), ra = rng.below(8),
                     rb = rng.below(8);
            src << strprintf("%s r%u, r%u, r%u\n", spec.mn, rd, ra, rb);
            uint32_t a = regs[ra], b = regs[rb];
            switch (spec.op) {
              case Op::kAdd: regs[rd] = a + b; break;
              case Op::kSub: regs[rd] = a - b; break;
              case Op::kAnd: regs[rd] = a & b; break;
              case Op::kOrr: regs[rd] = a | b; break;
              case Op::kEor: regs[rd] = a ^ b; break;
              case Op::kLsl: regs[rd] = a << (b & 31); break;
              case Op::kLsr: regs[rd] = a >> (b & 31); break;
              case Op::kAsr:
                regs[rd] = static_cast<uint32_t>(
                    static_cast<int32_t>(a) >> (b & 31));
                break;
              case Op::kMul: regs[rd] = a * b; break;
              default: break;
            }
        }
        src << "halt\n";
        Machine m(src.str(), CoreKind::kBaseline);
        m.runOk();
        for (unsigned r = 0; r < 8; ++r)
            ASSERT_EQ(m.core().reg(r), regs[r])
                << "trial " << trial << " r" << r;
    }
}

// ----------------------- AES-192/256 kernels -------------------------

class AesWideKeys : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AesWideKeys, FipsVectorsOnBothCores)
{
    unsigned key_bytes = GetParam();
    unsigned rounds = key_bytes == 24 ? 12 : 14;
    std::vector<uint8_t> key(key_bytes);
    for (unsigned i = 0; i < key_bytes; ++i)
        key[i] = static_cast<uint8_t>(i);
    Aes aes(key);

    auto pt = fromHex("00112233445566778899aabbccddeeff");
    AesBlock ptb{};
    std::copy(pt.begin(), pt.end(), ptb.begin());
    AesBlock ctb = aes.encryptBlock(ptb);
    std::string expect = key_bytes == 24
                             ? "dda97ca4864cdfe06eaf70a0ec0d7191"
                             : "8ea2b7ca516745bfeafc49904b496089";
    ASSERT_EQ(toHex(std::vector<uint8_t>(ctb.begin(), ctb.end())),
              expect);

    std::vector<uint8_t> rk;
    for (uint32_t w : aes.roundKeys())
        for (int b = 3; b >= 0; --b)
            rk.push_back(static_cast<uint8_t>(w >> (8 * b)));

    for (bool gf_core : {false, true}) {
        Machine enc(gf_core ? aesBlockAsmGfcore(false, rounds)
                            : aesBlockAsmBaseline(false, rounds),
                    gf_core ? CoreKind::kGfProcessor
                            : CoreKind::kBaseline);
        enc.writeBytes("rkeys", rk);
        enc.writeBytes("state", pt);
        enc.runOk();
        EXPECT_EQ(toHex(enc.readBytes("state", 16)), expect)
            << "enc gf=" << gf_core;

        Machine dec(gf_core ? aesBlockAsmGfcore(true, rounds)
                            : aesBlockAsmBaseline(true, rounds),
                    gf_core ? CoreKind::kGfProcessor
                            : CoreKind::kBaseline);
        dec.writeBytes("rkeys", rk);
        dec.writeBytes("state",
                       std::vector<uint8_t>(ctb.begin(), ctb.end()));
        dec.runOk();
        EXPECT_EQ(dec.readBytes("state", 16), pt)
            << "dec gf=" << gf_core;
    }
}

INSTANTIATE_TEST_SUITE_P(KeySizes, AesWideKeys,
                         ::testing::Values(24u, 32u),
                         [](const auto &info) {
                             return "aes" +
                                    std::to_string(info.param * 8);
                         });

// -------------------------- shortened RS -----------------------------

TEST(ShortenedRs, EncodeDecodeRoundTrip)
{
    // RS(64,48,8): a 64-byte IoT packet from the (255,239) parent.
    ShortenedRSCode code(8, 8, 64);
    EXPECT_EQ(code.n(), 64u);
    EXPECT_EQ(code.k(), 48u);
    Rng rng(5);
    ExactErrorInjector inj(6);
    for (unsigned errors = 0; errors <= 8; errors += 2) {
        std::vector<GFElem> info(code.k());
        for (auto &s : info)
            s = rng.nextByte();
        auto cw = code.encode(info);
        EXPECT_EQ(cw.size(), 64u);
        auto rx = inj.corruptSymbols(cw, errors, 8);
        auto res = code.decode(rx);
        EXPECT_TRUE(res.ok) << "errors=" << errors;
        EXPECT_EQ(res.codeword, cw);
        EXPECT_EQ(code.extractInfo(res.codeword), info);
    }
}

TEST(ShortenedRs, RejectsBadLengths)
{
    EXPECT_DEATH(ShortenedRSCode(8, 8, 16), "must be in");
    EXPECT_DEATH(ShortenedRSCode(8, 8, 255), "must be in");
}

// -------------- randomized end-to-end kernel pipeline -----------------

TEST(Fuzz, RandomRsDecodePipelinesOnGfCore)
{
    // Random error weights through the full 4-kernel chain; the
    // corrected word must match the reference decoder every time.
    GFField f(8);
    RSCode code(8, 8);
    Rng rng(31337);

    Machine synd_m(syndromeAsmGfcore(f, 255, 16), CoreKind::kGfProcessor);
    Machine bma_m(bmaAsmGfcore(f, 16), CoreKind::kGfProcessor);
    Machine chien_m(chienAsmGfcore(f, 255, 8), CoreKind::kGfProcessor);
    Machine forney_m(forneyAsmGfcore(f, 16), CoreKind::kGfProcessor);

    for (int trial = 0; trial < 12; ++trial) {
        unsigned errors = static_cast<unsigned>(rng.below(9));
        std::vector<GFElem> info(code.k());
        for (auto &s : info)
            s = rng.nextByte();
        ExactErrorInjector inj(1000 + trial);
        auto rx = inj.corruptSymbols(code.encode(info), errors, 8);

        synd_m.reset();
        synd_m.writeBytes("rxdata",
                          std::vector<uint8_t>(rx.begin(), rx.end()));
        synd_m.runOk();
        auto synd_out = synd_m.readBytes("synd", 16);

        bool clean = true;
        for (auto b : synd_out)
            clean &= b == 0;
        if (clean) {
            EXPECT_EQ(errors, 0u);
            continue;
        }

        bma_m.reset();
        bma_m.writeBytes("synd", synd_out);
        bma_m.runOk();
        auto lambda_out = bma_m.readBytes("lambda", 12);

        chien_m.reset();
        chien_m.writeBytes("lambda", lambda_out);
        chien_m.runOk();
        uint32_t nloc = chien_m.readWord("nloc");
        ASSERT_EQ(nloc, errors) << "trial " << trial;
        auto locs_out = chien_m.readBytes("locs", 12);

        forney_m.reset();
        forney_m.writeBytes("synd", synd_out);
        forney_m.writeBytes("lambda", lambda_out);
        forney_m.writeBytes("locs", locs_out);
        forney_m.writeWord("nloc", nloc);
        forney_m.runOk();
        auto evals_out = forney_m.readBytes("evals", nloc);

        auto fixed = rx;
        for (uint32_t i = 0; i < nloc; ++i)
            fixed[locs_out[i]] ^= evals_out[i];
        EXPECT_EQ(fixed, code.decode(rx).codeword) << "trial " << trial;
    }
}

} // namespace
} // namespace gfp
