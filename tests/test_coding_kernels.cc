/**
 * @file
 * End-to-end validation of the decoder assembly kernels on the
 * simulated cores: every kernel's memory outputs must match the
 * reference C++ decoder functions, on both the baseline core and the
 * GF processor, and the GF processor must be faster (the Fig. 9
 * claim, whose exact factors the fig09 bench reports).
 */

#include <gtest/gtest.h>

#include "coding/bch.h"
#include "coding/channel.h"
#include "coding/decoder_kernels.h"
#include "coding/rs.h"
#include "common/random.h"
#include "kernels/coding_kernels.h"
#include "sim/machine.h"

namespace gfp {
namespace {

std::vector<uint8_t>
toBytes(const std::vector<GFElem> &v)
{
    return std::vector<uint8_t>(v.begin(), v.end());
}

/** A noisy RS(2^m-1, k) word with @p errors injected, plus its
 *  reference decode intermediates. */
struct DecodeCase
{
    GFField field;
    unsigned n, two_t;
    std::vector<GFElem> rx;
    std::vector<GFElem> synd;
    GFPoly lambda;
    std::vector<unsigned> locs;
    std::vector<GFElem> evals;

    DecodeCase(unsigned m, unsigned t, unsigned errors, uint64_t seed)
        : field(m), n(field.groupOrder()), two_t(2 * t),
          lambda(field)
    {
        RSCode code(m, t);
        Rng rng(seed);
        std::vector<GFElem> info(code.k());
        for (auto &s : info)
            s = rng.below(field.order());
        ExactErrorInjector inj(seed + 1);
        rx = inj.corruptSymbols(code.encode(info), errors, m);
        synd = syndromes(field, rx, two_t);
        lambda = berlekampMassey(field, synd);
        locs = chienSearch(field, lambda, n);
        evals = forney(field, synd, lambda, locs);
    }
};

// --------------------------- syndromes ------------------------------

class SyndromeKernelTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(SyndromeKernelTest, BothCoresMatchReference)
{
    auto [m, t] = GetParam();
    DecodeCase c(m, t, t, /*seed=*/m * 100 + t);

    Machine base(syndromeAsmBaseline(c.field, c.n, c.two_t),
                 CoreKind::kBaseline);
    base.writeBytes("rxdata", toBytes(c.rx));
    CycleStats bs = base.runOk();
    EXPECT_EQ(base.readBytes("synd", c.two_t), toBytes(c.synd));

    Machine gf(syndromeAsmGfcore(c.field, c.n, c.two_t),
               CoreKind::kGfProcessor);
    gf.writeBytes("rxdata", toBytes(c.rx));
    CycleStats gs = gf.runOk();
    EXPECT_EQ(gf.readBytes("synd", c.two_t), toBytes(c.synd));

    // The SIMD version must win by a sizable factor.
    EXPECT_GT(bs.cycles, 4 * gs.cycles)
        << "baseline " << bs.cycles << " vs gf " << gs.cycles;
}

INSTANTIATE_TEST_SUITE_P(
    Codes, SyndromeKernelTest,
    ::testing::Values(std::tuple{8u, 8u},   // RS(255,239,8)
                      std::tuple{5u, 5u},   // BCH(31,11,5) field
                      std::tuple{8u, 4u},
                      std::tuple{6u, 3u}),  // odd syndrome tail
    [](const auto &info) {
        return "m" + std::to_string(std::get<0>(info.param)) + "_t" +
               std::to_string(std::get<1>(info.param));
    });

TEST(SyndromeKernel, ZeroSyndromesForCleanCodeword)
{
    GFField f(8);
    RSCode code(8, 8);
    std::vector<GFElem> info(code.k(), 0x5a);
    auto cw = code.encode(info);

    Machine gf(syndromeAsmGfcore(f, 255, 16), CoreKind::kGfProcessor);
    gf.writeBytes("rxdata", toBytes(cw));
    gf.runOk();
    EXPECT_EQ(gf.readBytes("synd", 16), std::vector<uint8_t>(16, 0));
}

// ------------------------- Berlekamp-Massey -------------------------

class BmaKernelTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned,
                                                 unsigned>>
{
};

TEST_P(BmaKernelTest, BothCoresMatchReference)
{
    auto [m, t, errors] = GetParam();
    DecodeCase c(m, t, errors, 7000 + m * 10 + errors);

    std::vector<uint8_t> expect_lambda(12, 0);
    for (int i = 0; i <= c.lambda.degree(); ++i)
        expect_lambda[i] = static_cast<uint8_t>(c.lambda.coeff(i));

    for (bool gf_core : {false, true}) {
        std::string src = gf_core ? bmaAsmGfcore(c.field, c.two_t)
                                  : bmaAsmBaseline(c.field, c.two_t);
        Machine mach(src, gf_core ? CoreKind::kGfProcessor
                                  : CoreKind::kBaseline);
        mach.writeBytes("synd", toBytes(c.synd));
        mach.runOk();
        EXPECT_EQ(mach.readBytes("lambda", 12), expect_lambda)
            << "gf_core=" << gf_core;
        EXPECT_EQ(mach.readWord("llen"),
                  static_cast<uint32_t>(c.lambda.degree()));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BmaKernelTest,
    ::testing::Values(std::tuple{8u, 8u, 8u}, std::tuple{8u, 8u, 3u},
                      std::tuple{8u, 8u, 1u}, std::tuple{5u, 5u, 5u},
                      std::tuple{5u, 5u, 2u}, std::tuple{4u, 3u, 3u}),
    [](const auto &info) {
        return "m" + std::to_string(std::get<0>(info.param)) + "_t" +
               std::to_string(std::get<1>(info.param)) + "_e" +
               std::to_string(std::get<2>(info.param));
    });

TEST(BmaKernel, GfCoreIsFaster)
{
    DecodeCase c(8, 8, 8, 99);
    Machine base(bmaAsmBaseline(c.field, 16), CoreKind::kBaseline);
    base.writeBytes("synd", toBytes(c.synd));
    CycleStats bs = base.runOk();

    Machine gf(bmaAsmGfcore(c.field, 16), CoreKind::kGfProcessor);
    gf.writeBytes("synd", toBytes(c.synd));
    CycleStats gs = gf.runOk();

    EXPECT_GT(bs.cycles, gs.cycles);
    // BMA is the least-speedup kernel (iterative, limited parallelism).
    EXPECT_LT(bs.cycles, 8 * gs.cycles);
}

// ----------------------------- Chien --------------------------------

class ChienKernelTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned,
                                                 unsigned>>
{
};

TEST_P(ChienKernelTest, BothCoresMatchReference)
{
    auto [m, t, errors] = GetParam();
    DecodeCase c(m, t, errors, 4200 + m + errors);

    std::vector<uint8_t> lambda_bytes(12, 0);
    for (int i = 0; i <= c.lambda.degree(); ++i)
        lambda_bytes[i] = static_cast<uint8_t>(c.lambda.coeff(i));

    for (bool gf_core : {false, true}) {
        std::string src = gf_core ? chienAsmGfcore(c.field, c.n, t)
                                  : chienAsmBaseline(c.field, c.n, t);
        Machine mach(src, gf_core ? CoreKind::kGfProcessor
                                  : CoreKind::kBaseline);
        mach.writeBytes("lambda", lambda_bytes);
        mach.runOk();
        ASSERT_EQ(mach.readWord("nloc"), c.locs.size())
            << "gf_core=" << gf_core;
        auto locs = mach.readBytes("locs", c.locs.size());
        for (size_t i = 0; i < c.locs.size(); ++i)
            EXPECT_EQ(locs[i], c.locs[i]) << "i=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ChienKernelTest,
    ::testing::Values(std::tuple{8u, 8u, 8u}, std::tuple{8u, 8u, 2u},
                      std::tuple{5u, 5u, 5u}, std::tuple{5u, 5u, 1u},
                      std::tuple{4u, 3u, 2u}),
    [](const auto &info) {
        return "m" + std::to_string(std::get<0>(info.param)) + "_t" +
               std::to_string(std::get<1>(info.param)) + "_e" +
               std::to_string(std::get<2>(info.param));
    });

TEST(ChienKernel, GfCoreIsFaster)
{
    DecodeCase c(8, 8, 8, 31);
    std::vector<uint8_t> lambda_bytes(12, 0);
    for (int i = 0; i <= c.lambda.degree(); ++i)
        lambda_bytes[i] = static_cast<uint8_t>(c.lambda.coeff(i));

    Machine base(chienAsmBaseline(c.field, c.n, 8), CoreKind::kBaseline);
    base.writeBytes("lambda", lambda_bytes);
    CycleStats bs = base.runOk();

    Machine gf(chienAsmGfcore(c.field, c.n, 8), CoreKind::kGfProcessor);
    gf.writeBytes("lambda", lambda_bytes);
    CycleStats gs = gf.runOk();

    EXPECT_GT(bs.cycles, 3 * gs.cycles);
}

// ----------------------------- Forney -------------------------------

class ForneyKernelTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned,
                                                 unsigned>>
{
};

TEST_P(ForneyKernelTest, BothCoresMatchReference)
{
    auto [m, t, errors] = GetParam();
    DecodeCase c(m, t, errors, 1234 + m * 7 + errors);
    ASSERT_EQ(c.locs.size(), errors);

    std::vector<uint8_t> lambda_bytes(12, 0);
    for (int i = 0; i <= c.lambda.degree(); ++i)
        lambda_bytes[i] = static_cast<uint8_t>(c.lambda.coeff(i));
    std::vector<uint8_t> locs_bytes(12, 0);
    for (size_t i = 0; i < c.locs.size(); ++i)
        locs_bytes[i] = static_cast<uint8_t>(c.locs[i]);

    for (bool gf_core : {false, true}) {
        std::string src = gf_core ? forneyAsmGfcore(c.field, c.two_t)
                                  : forneyAsmBaseline(c.field, c.two_t);
        Machine mach(src, gf_core ? CoreKind::kGfProcessor
                                  : CoreKind::kBaseline);
        mach.writeBytes("synd", toBytes(c.synd));
        mach.writeBytes("lambda", lambda_bytes);
        mach.writeBytes("locs", locs_bytes);
        mach.writeWord("nloc", static_cast<uint32_t>(c.locs.size()));
        mach.runOk();
        auto vals = mach.readBytes("evals", c.evals.size());
        for (size_t i = 0; i < c.evals.size(); ++i)
            EXPECT_EQ(vals[i], c.evals[i])
                << "gf_core=" << gf_core << " i=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ForneyKernelTest,
    ::testing::Values(std::tuple{8u, 8u, 8u}, std::tuple{8u, 8u, 5u},
                      std::tuple{8u, 8u, 4u}, std::tuple{8u, 8u, 1u},
                      std::tuple{8u, 4u, 3u}),
    [](const auto &info) {
        return "m" + std::to_string(std::get<0>(info.param)) + "_t" +
               std::to_string(std::get<1>(info.param)) + "_e" +
               std::to_string(std::get<2>(info.param));
    });

TEST(ForneyKernel, SpeedupIsLarge)
{
    DecodeCase c(8, 8, 8, 555);
    std::vector<uint8_t> lambda_bytes(12, 0);
    for (int i = 0; i <= c.lambda.degree(); ++i)
        lambda_bytes[i] = static_cast<uint8_t>(c.lambda.coeff(i));
    std::vector<uint8_t> locs_bytes(12, 0);
    for (size_t i = 0; i < c.locs.size(); ++i)
        locs_bytes[i] = static_cast<uint8_t>(c.locs[i]);

    uint64_t cycles[2];
    for (bool gf_core : {false, true}) {
        std::string src = gf_core ? forneyAsmGfcore(c.field, 16)
                                  : forneyAsmBaseline(c.field, 16);
        Machine mach(src, gf_core ? CoreKind::kGfProcessor
                                  : CoreKind::kBaseline);
        mach.writeBytes("synd", toBytes(c.synd));
        mach.writeBytes("lambda", lambda_bytes);
        mach.writeBytes("locs", locs_bytes);
        mach.writeWord("nloc", static_cast<uint32_t>(c.locs.size()));
        cycles[gf_core] = mach.runOk().cycles;
    }
    EXPECT_GT(cycles[0], 3 * cycles[1]);
}

// -------------------- full-decoder composition ----------------------

TEST(DecoderPipeline, KernelsComposeToFullDecode)
{
    // Chain all four kernels on the GF core and confirm the corrected
    // word matches the reference decoder's output.
    DecodeCase c(8, 8, 6, 777);
    RSCode code(8, 8);

    Machine synd_m(syndromeAsmGfcore(c.field, 255, 16),
                   CoreKind::kGfProcessor);
    synd_m.writeBytes("rxdata", toBytes(c.rx));
    synd_m.runOk();
    auto synd_out = synd_m.readBytes("synd", 16);

    Machine bma_m(bmaAsmGfcore(c.field, 16), CoreKind::kGfProcessor);
    bma_m.writeBytes("synd", synd_out);
    bma_m.runOk();
    auto lambda_out = bma_m.readBytes("lambda", 12);

    Machine chien_m(chienAsmGfcore(c.field, 255, 8),
                    CoreKind::kGfProcessor);
    chien_m.writeBytes("lambda", lambda_out);
    chien_m.runOk();
    uint32_t nloc = chien_m.readWord("nloc");
    ASSERT_EQ(nloc, 6u);
    auto locs_out = chien_m.readBytes("locs", 12);

    Machine forney_m(forneyAsmGfcore(c.field, 16), CoreKind::kGfProcessor);
    forney_m.writeBytes("synd", synd_out);
    forney_m.writeBytes("lambda", lambda_out);
    forney_m.writeBytes("locs", locs_out);
    forney_m.writeWord("nloc", nloc);
    forney_m.runOk();
    auto evals_out = forney_m.readBytes("evals", nloc);

    auto fixed = c.rx;
    for (uint32_t i = 0; i < nloc; ++i)
        fixed[locs_out[i]] ^= evals_out[i];
    EXPECT_TRUE(code.isCodeword(fixed));
    auto ref = code.decode(c.rx);
    EXPECT_EQ(fixed, ref.codeword);
}


TEST(DecoderPipeline, BchKernelsComposeToFullDecode)
{
    // The binary BCH path (paper Sec. 3.3.2): syndrome + BMA + Chien,
    // then bit flips — no Forney needed.  BCH(31,11,5) on GF(2^5).
    GFField f(5);
    BCHCode code(5, 5);
    Rng rng(4242);
    std::vector<uint8_t> info(code.k());
    for (auto &b : info)
        b = static_cast<uint8_t>(rng.below(2));
    auto cw = code.encode(info);
    ExactErrorInjector inj(17);
    auto rx = inj.flipBits(cw, 5);

    Machine synd_m(syndromeAsmGfcore(f, 31, 10), CoreKind::kGfProcessor);
    synd_m.writeBytes("rxdata", rx);
    synd_m.runOk();
    auto synd_out = synd_m.readBytes("synd", 10);

    Machine bma_m(bmaAsmGfcore(f, 10), CoreKind::kGfProcessor);
    bma_m.writeBytes("synd", synd_out);
    bma_m.runOk();
    auto lambda_out = bma_m.readBytes("lambda", 12);
    EXPECT_EQ(bma_m.readWord("llen"), 5u);

    Machine chien_m(chienAsmGfcore(f, 31, 5), CoreKind::kGfProcessor);
    chien_m.writeBytes("lambda", lambda_out);
    chien_m.runOk();
    uint32_t nloc = chien_m.readWord("nloc");
    ASSERT_EQ(nloc, 5u);
    auto locs_out = chien_m.readBytes("locs", nloc);

    auto fixed = rx;
    for (uint8_t loc : locs_out)
        fixed[loc] ^= 1;
    EXPECT_EQ(fixed, cw);
    EXPECT_TRUE(code.isCodeword(fixed));
}

TEST(DecoderPipeline, CycleCountsAreDeterministic)
{
    // The whole stack — workload generation, assembly, simulation —
    // must be bit- and cycle-reproducible run to run.
    GFField f(8);
    RSCode code(8, 8);
    Rng rng(1);
    std::vector<GFElem> info(code.k());
    for (auto &s : info)
        s = rng.nextByte();
    ExactErrorInjector inj(2);
    auto rx = inj.corruptSymbols(code.encode(info), 8, 8);
    std::vector<uint8_t> rxb(rx.begin(), rx.end());

    uint64_t cycles[2];
    std::vector<uint8_t> synd[2];
    for (int run = 0; run < 2; ++run) {
        Machine m(syndromeAsmGfcore(f, 255, 16), CoreKind::kGfProcessor);
        m.writeBytes("rxdata", rxb);
        cycles[run] = m.runOk().cycles;
        synd[run] = m.readBytes("synd", 16);
    }
    EXPECT_EQ(cycles[0], cycles[1]);
    EXPECT_EQ(synd[0], synd[1]);
}

} // namespace
} // namespace gfp
