/**
 * @file
 * Tests for the structural GF arithmetic unit model: the reduction
 * matrix derivation, the mapping circuit's handling of small bit
 * widths, every SIMD instruction against the GFField golden model, the
 * Itoh-Tsujii inverse network's unit budget, and the 32-bit partial
 * product tree.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/bitops.h"
#include "common/random.h"
#include "gf/field.h"
#include "gf/polys.h"
#include "gfau/gf_unit.h"

namespace gfp {
namespace {

TEST(GFConfig, DeriveMatchesFieldReduction)
{
    // Column j of P must equal x^(m+j) mod r(x).
    for (unsigned m = 2; m <= 8; ++m) {
        for (uint32_t poly : irreduciblePolys(m)) {
            GFField f(m, poly);
            GFConfig cfg = GFConfig::derive(m, poly);
            for (unsigned j = 0; j + 1 < m; ++j) {
                EXPECT_EQ(cfg.p_cols[j], f.reduce(1u << (m + j)))
                    << "m=" << m << " poly=" << poly << " j=" << j;
            }
        }
    }
}

TEST(GFConfig, PackUnpackRoundTrip)
{
    for (unsigned m = 2; m <= 8; ++m) {
        GFConfig cfg = GFConfig::derive(m, defaultPrimitivePoly(m));
        GFConfig back = GFConfig::unpack(cfg.pack());
        EXPECT_EQ(back, cfg);
    }
}

TEST(GFConfig, PackFitsIn60Bits)
{
    GFConfig cfg = GFConfig::derive(8, 0x11d);
    EXPECT_EQ(cfg.pack() >> 60, 0u);
}

TEST(GFConfig, RejectsBadInputs)
{
    EXPECT_DEATH(GFConfig::derive(9, 0x211), "field widths 2..8");
    EXPECT_DEATH(GFConfig::derive(8, 0x101), "not irreducible");
}

class GfauVsGolden
    : public ::testing::TestWithParam<std::pair<unsigned, uint32_t>>
{
  protected:
    void
    SetUp() override
    {
        auto [m, poly] = GetParam();
        field_ = std::make_unique<GFField>(m, poly);
        unit_.configureField(m, poly);
    }

    std::unique_ptr<GFField> field_;
    GFArithmeticUnit unit_;
};

TEST_P(GfauVsGolden, SimdMultMatchesExhaustively)
{
    auto [m, poly] = GetParam();
    const uint32_t order = 1u << m;
    // Sweep all (a, b) pairs through lane 0 while loading the other
    // lanes with shifted copies to confirm lane independence.
    for (uint32_t a = 0; a < order; ++a) {
        for (uint32_t b = 0; b < order; ++b) {
            uint32_t av = splat(static_cast<uint8_t>(a));
            uint32_t bv = splat(static_cast<uint8_t>(b));
            uint32_t r = unit_.simdMult(av, bv);
            GFElem expect = field_->mul(a, b);
            for (unsigned l = 0; l < 4; ++l)
                ASSERT_EQ(lane(r, l), expect)
                    << "m=" << m << " a=" << a << " b=" << b;
        }
    }
}

TEST_P(GfauVsGolden, SimdLanesAreIndependent)
{
    auto [m, poly] = GetParam();
    Rng rng(m * 7919u + poly);
    const uint8_t mask = static_cast<uint8_t>((1u << m) - 1);
    for (int i = 0; i < 200; ++i) {
        uint32_t a = rng.next32(), b = rng.next32();
        uint32_t r = unit_.simdMult(a, b);
        for (unsigned l = 0; l < 4; ++l) {
            EXPECT_EQ(lane(r, l),
                      field_->mul(lane(a, l) & mask, lane(b, l) & mask));
        }
    }
}

TEST_P(GfauVsGolden, SimdSquareMatches)
{
    auto [m, poly] = GetParam();
    for (uint32_t a = 0; a < (1u << m); ++a) {
        uint32_t r = unit_.simdSquare(splat(static_cast<uint8_t>(a)));
        for (unsigned l = 0; l < 4; ++l)
            ASSERT_EQ(lane(r, l), field_->sqr(a)) << "a=" << a;
    }
}

TEST_P(GfauVsGolden, SimdInverseMatches)
{
    auto [m, poly] = GetParam();
    for (uint32_t a = 0; a < (1u << m); ++a) {
        uint32_t r = unit_.simdInverse(splat(static_cast<uint8_t>(a)));
        for (unsigned l = 0; l < 4; ++l)
            ASSERT_EQ(lane(r, l), field_->inv(a)) << "a=" << a;
    }
}

TEST_P(GfauVsGolden, SimdPowerMatches)
{
    auto [m, poly] = GetParam();
    Rng rng(m * 104729u + poly);
    for (int i = 0; i < 300; ++i) {
        uint8_t a = rng.below(1u << m);
        uint8_t e = rng.nextByte();
        uint32_t r = unit_.simdPower(splat(a), splat(e));
        GFElem expect = field_->pow(a, e);
        for (unsigned l = 0; l < 4; ++l)
            ASSERT_EQ(lane(r, l), expect) << "a=" << int(a)
                                          << " e=" << int(e);
    }
}

TEST_P(GfauVsGolden, SimdAddIsXor)
{
    Rng rng(31);
    for (int i = 0; i < 100; ++i) {
        uint32_t a = rng.next32(), b = rng.next32();
        EXPECT_EQ(unit_.simdAdd(a, b), a ^ b);
    }
}

std::vector<std::pair<unsigned, uint32_t>>
representativeConfigs()
{
    // Default polynomial for each width, plus the AES polynomial and a
    // couple of non-default choices to exercise arbitrary-poly support.
    std::vector<std::pair<unsigned, uint32_t>> cfgs;
    for (unsigned m = 2; m <= 8; ++m)
        cfgs.emplace_back(m, defaultPrimitivePoly(m));
    cfgs.emplace_back(8, kAesPoly);
    cfgs.emplace_back(5, 0x3b); // x^5+x^4+x^3+x+1 (non-default)
    cfgs.emplace_back(6, 0x6d); // non-default degree-6
    return cfgs;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GfauVsGolden, ::testing::ValuesIn(representativeConfigs()),
    [](const ::testing::TestParamInfo<std::pair<unsigned, uint32_t>> &i) {
        return "m" + std::to_string(i.param.first) + "_poly" +
               std::to_string(i.param.second);
    });

TEST(Gfau, EveryIrreduciblePolySpotCheck)
{
    // Arbitrary-polynomial support: every irreducible polynomial for
    // every width, random multiplications vs. the golden model.
    Rng rng(2024);
    for (unsigned m = 2; m <= 8; ++m) {
        for (uint32_t poly : irreduciblePolys(m)) {
            GFField f(m, poly);
            GFArithmeticUnit u;
            u.configureField(m, poly);
            for (int i = 0; i < 32; ++i) {
                uint8_t a = rng.below(1u << m);
                uint8_t b = rng.below(1u << m);
                ASSERT_EQ(lane(u.simdMult(splat(a), splat(b)), 0),
                          f.mul(a, b))
                    << "m=" << m << " poly=0x" << std::hex << poly;
            }
        }
    }
}

TEST(Gfau, SmallWidthIsNotJustZeroPadding)
{
    // The paper's Sec 2.3 design challenge: running GF(2^5) data through
    // the GF(2^8) datapath with MSBs zeroed must NOT give the right
    // answer, which is exactly why the mapping circuit exists.
    GFField f5(5, 0x25);
    GFArithmeticUnit u8;
    u8.configureField(8, 0x11d);
    bool any_mismatch = false;
    for (uint32_t a = 0; a < 32 && !any_mismatch; ++a) {
        for (uint32_t b = 0; b < 32; ++b) {
            uint8_t wrong = lane(u8.simdMult(splat(a), splat(b)), 0);
            if (wrong != f5.mul(a, b)) {
                any_mismatch = true;
                break;
            }
        }
    }
    EXPECT_TRUE(any_mismatch);
}

TEST(Gfau, Mult32MatchesClmul)
{
    GFArithmeticUnit u;
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        uint32_t a = rng.next32(), b = rng.next32();
        uint32_t hi, lo;
        u.mult32(a, b, hi, lo);
        uint64_t expect = clmul32(a, b);
        EXPECT_EQ(lo, static_cast<uint32_t>(expect));
        EXPECT_EQ(hi, static_cast<uint32_t>(expect >> 32));
    }
}

TEST(Gfau, Mult32IndependentOfFieldConfig)
{
    // The 32-bit partial product bypasses (data-gates) the reduction
    // stage, so the configured field must not affect it.
    GFArithmeticUnit u5, u8;
    u5.configureField(5, 0x25);
    u8.configureField(8, kAesPoly);
    Rng rng(6);
    for (int i = 0; i < 100; ++i) {
        uint32_t a = rng.next32(), b = rng.next32();
        uint32_t h5, l5, h8, l8;
        u5.mult32(a, b, h5, l5);
        u8.mult32(a, b, h8, l8);
        EXPECT_EQ(h5, h8);
        EXPECT_EQ(l5, l8);
    }
}

TEST(Gfau, InverseUnitBudgetForGf256)
{
    // Fig. 6 / Sec. 2.4.1: a 4-way SIMD inverse in GF(2^8) uses exactly
    // 16 multiplications (4 per lane) and 28 squares (7 per lane).
    GFArithmeticUnit u;
    u.configureField(8, 0x11d);
    u.resetStats();
    u.simdInverse(0x01020304);
    EXPECT_EQ(u.multUnitActivations(), 16u);
    EXPECT_EQ(u.squareUnitActivations(), 28u);
}

TEST(Gfau, InverseUnitBudgetScalesDown)
{
    // Smaller fields "mux out" earlier powers: GF(2^4) needs 2 mults
    // and 3 squares per lane.
    GFArithmeticUnit u;
    u.configureField(4, 0x13);
    u.resetStats();
    u.simdInverse(0x01020304);
    EXPECT_EQ(u.multUnitActivations(), 4u * 2);
    EXPECT_EQ(u.squareUnitActivations(), 4u * 3);
}

TEST(Gfau, Mult32UsesAll16Multipliers)
{
    GFArithmeticUnit u;
    u.resetStats();
    uint32_t hi, lo;
    u.mult32(0xdeadbeef, 0x12345678, hi, lo);
    EXPECT_EQ(u.multUnitActivations(), 16u);
    EXPECT_EQ(u.squareUnitActivations(), 0u);
}

TEST(Gfau, StatsCountIssues)
{
    GFArithmeticUnit u;
    u.resetStats();
    u.simdMult(1, 2);
    u.simdMult(3, 4);
    u.simdSquare(5);
    u.simdAdd(6, 7);
    u.simdInverse(8);
    uint32_t hi, lo;
    u.mult32(9, 10, hi, lo);
    EXPECT_EQ(u.stats().simd_mult, 2u);
    EXPECT_EQ(u.stats().simd_square, 1u);
    EXPECT_EQ(u.stats().simd_add, 1u);
    EXPECT_EQ(u.stats().simd_inverse, 1u);
    EXPECT_EQ(u.stats().mult32, 1u);
    EXPECT_EQ(u.stats().total(), 6u);
}

TEST(Gfau, DefaultConfigIsGf256)
{
    GFArithmeticUnit u;
    EXPECT_EQ(u.config().m, 8u);
    // 2 * 0x8d = x * (x^7+x^3+x^2+1); under 0x11d:
    GFField f(8, 0x11d);
    EXPECT_EQ(lane(u.simdMult(splat(0x02), splat(0x8d)), 0),
              f.mul(0x02, 0x8d));
}

} // namespace
} // namespace gfp
