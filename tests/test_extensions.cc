/**
 * @file
 * Tests for the extension features beyond the paper's headline path:
 * the Montgomery-ladder scalar multiplication, RS errors-and-erasures
 * decoding, the closed-form BCH error-locator (Fig. 1(a)'s "Closed
 * Form ELP" kernel), and the circulant-ring configuration of the
 * programmable reduction matrix.
 */

#include <gtest/gtest.h>

#include "coding/channel.h"
#include "coding/decoder_kernels.h"
#include "coding/rs.h"
#include "common/bitops.h"
#include "common/random.h"
#include "crypto/aes.h"
#include "crypto/ecc.h"
#include "gfau/gf_unit.h"

namespace gfp {
namespace {

// ----------------------- Montgomery ladder ---------------------------

class MontgomeryLadder : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MontgomeryLadder, MatchesDoubleAndAdd)
{
    EllipticCurve c = EllipticCurve::nist(GetParam());
    const EcPoint &g = c.basePoint();
    for (uint64_t k : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull, 7ull,
                       0xfeedull, 0x123456789abcdefull}) {
        EXPECT_EQ(c.scalarMultMontgomery(Gf2x(k), g),
                  c.scalarMult(Gf2x(k), g))
            << "k=" << k;
    }
    Gf2x big = Gf2x::random(113, 77);
    EXPECT_EQ(c.scalarMultMontgomery(big, g), c.scalarMult(big, g));
}

TEST_P(MontgomeryLadder, EdgeScalars)
{
    EllipticCurve c = EllipticCurve::nist(GetParam());
    const EcPoint &g = c.basePoint();
    EXPECT_TRUE(c.scalarMultMontgomery(Gf2x(), g).infinity);
    EXPECT_EQ(c.scalarMultMontgomery(Gf2x(uint64_t{1}), g), g);
    // k = order gives infinity; k = order - 1 gives -P.
    EXPECT_TRUE(c.scalarMultMontgomery(c.order(), g).infinity);
    Gf2x om1 = c.order() ^ Gf2x(uint64_t{1});
    EXPECT_EQ(c.scalarMultMontgomery(om1, g), c.negate(g));
}

INSTANTIATE_TEST_SUITE_P(Curves, MontgomeryLadder,
                         ::testing::Values("K-233", "B-233", "K-163"),
                         [](const auto &info) {
                             std::string n = info.param;
                             n.erase(n.find('-'), 1);
                             return n;
                         });

TEST(MontgomeryLadder, EcdhStillAgrees)
{
    EllipticCurve c = EllipticCurve::nist("K-233");
    Gf2x da = Gf2x::random(200, 1), db = Gf2x::random(200, 2);
    EcPoint qa = c.scalarMultMontgomery(da, c.basePoint());
    EcPoint qb = c.scalarMultMontgomery(db, c.basePoint());
    EXPECT_EQ(c.scalarMultMontgomery(da, qb),
              c.scalarMultMontgomery(db, qa));
}

// ------------------- errors-and-erasures decoding --------------------

TEST(Erasures, ErasureLocatorRoots)
{
    GFField f(8);
    std::vector<unsigned> where{3, 57, 200};
    GFPoly gamma = erasureLocator(f, where);
    EXPECT_EQ(gamma.degree(), 3);
    for (unsigned i : where)
        EXPECT_EQ(gamma.eval(f.exp((255 - i) % 255)), 0);
}

TEST(Erasures, CorrectsFull2tErasures)
{
    // With no unknown errors, 2t erased symbols are recoverable —
    // twice the plain error-correction radius.
    RSCode code(8, 8);
    Rng rng(5);
    std::vector<GFElem> info(code.k());
    for (auto &s : info)
        s = rng.nextByte();
    auto cw = code.encode(info);

    ExactErrorInjector inj(6);
    auto pos = inj.pickPositions(code.n(), 16);
    auto rx = cw;
    for (unsigned p : pos)
        rx[p] = rng.nextByte(); // garbage at the declared positions

    auto res = code.decodeWithErasures(rx, pos);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.codeword, cw);
}

TEST(Erasures, MixedErrorsAndErasures)
{
    // 2*nu + e <= 2t: sweep the boundary.
    RSCode code(8, 8);
    Rng rng(9);
    for (auto [errors, erases] : {std::pair{0u, 16u}, {1u, 14u},
                                  {4u, 8u}, {7u, 2u}, {8u, 0u},
                                  {2u, 12u}}) {
        std::vector<GFElem> info(code.k());
        for (auto &s : info)
            s = rng.nextByte();
        auto cw = code.encode(info);

        ExactErrorInjector inj(errors * 100 + erases);
        auto pos = inj.pickPositions(code.n(), errors + erases);
        std::vector<unsigned> err_pos(pos.begin(), pos.begin() + errors);
        std::vector<unsigned> era_pos(pos.begin() + errors, pos.end());

        auto rx = cw;
        for (unsigned p : err_pos)
            rx[p] ^= static_cast<GFElem>(1 + rng.below(255));
        for (unsigned p : era_pos)
            rx[p] = rng.nextByte();

        auto res = code.decodeWithErasures(rx, era_pos);
        EXPECT_TRUE(res.ok) << "nu=" << errors << " e=" << erases;
        EXPECT_EQ(res.codeword, cw) << "nu=" << errors << " e=" << erases;
    }
}

TEST(Erasures, BeyondBudgetIsFlagged)
{
    RSCode code(8, 2);
    std::vector<GFElem> info(code.k(), 0x11);
    auto cw = code.encode(info);
    auto rx = cw;
    // 5 erasures > 2t = 4.
    std::vector<unsigned> era{1, 2, 3, 4, 5};
    for (unsigned p : era)
        rx[p] = 0xff;
    auto res = code.decodeWithErasures(rx, era);
    EXPECT_FALSE(res.ok);
}

TEST(Erasures, NoErasuresEqualsPlainDecode)
{
    RSCode code(8, 4);
    Rng rng(12);
    std::vector<GFElem> info(code.k());
    for (auto &s : info)
        s = rng.nextByte();
    ExactErrorInjector inj(13);
    auto rx = inj.corruptSymbols(code.encode(info), 4, 8);
    auto plain = code.decode(rx);
    auto with = code.decodeWithErasures(rx, {});
    EXPECT_EQ(plain.ok, with.ok);
    EXPECT_EQ(plain.codeword, with.codeword);
}

// ----------------------- closed-form BCH ELP -------------------------

class ClosedFormElp
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(ClosedFormElp, MatchesBerlekampMassey)
{
    auto [m, t] = GetParam();
    GFField f(m);
    unsigned n = f.groupOrder();
    Rng rng(m * 100 + t);
    ExactErrorInjector inj(m * 7 + t + 1);

    // All-zero codeword + random error patterns of every weight <= t.
    for (unsigned errors = 0; errors <= t; ++errors) {
        for (int trial = 0; trial < 20; ++trial) {
            std::vector<GFElem> rx(n, 0);
            auto pos = inj.pickPositions(n, errors);
            for (unsigned p : pos)
                rx[p] = 1; // binary errors
            auto synd = syndromes(f, rx, 2 * t);

            GFPoly closed = closedFormElpBch(f, synd, t);
            GFPoly bma = berlekampMassey(f, synd);
            // Both must locate the same error positions.
            EXPECT_EQ(chienSearch(f, closed, n), chienSearch(f, bma, n))
                << "m=" << m << " t=" << t << " errors=" << errors
                << " trial=" << trial;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Codes, ClosedFormElp,
    ::testing::Values(std::tuple{5u, 1u}, std::tuple{5u, 2u},
                      std::tuple{5u, 3u}, std::tuple{6u, 3u},
                      std::tuple{8u, 3u}),
    [](const auto &info) {
        return "m" + std::to_string(std::get<0>(info.param)) + "_t" +
               std::to_string(std::get<1>(info.param));
    });

// ---------------------- circulant-ring config ------------------------

TEST(CirculantRing, MultIsCircularConvolution)
{
    GFArithmeticUnit u;
    u.loadConfig(GFConfig::circulant(8));
    Rng rng(3);
    for (int i = 0; i < 300; ++i) {
        uint8_t a = rng.nextByte(), b = rng.nextByte();
        // Reference: carry-less product folded mod x^8 + 1.
        uint16_t full = clmul8(a, b);
        uint8_t expect = static_cast<uint8_t>(full ^ (full >> 8));
        EXPECT_EQ(lane(u.simdMult(splat(a), splat(b)), 0), expect);
    }
}

TEST(CirculantRing, MultByXRotates)
{
    GFArithmeticUnit u;
    u.loadConfig(GFConfig::circulant(8));
    for (unsigned v = 0; v < 256; ++v) {
        uint8_t rot = static_cast<uint8_t>((v << 1) | (v >> 7));
        EXPECT_EQ(lane(u.simdMult(splat(v), splat(0x02)), 0), rot);
    }
}

TEST(CirculantRing, AesAffineIsMultiplyBy1F)
{
    // The trick the AES kernels rely on: sbox(x) == inv(x)*0x1f + 0x63
    // in the x^8+1 ring, and the inverse affine is *0x4a + 0x05.
    GFArithmeticUnit field_u, ring_u;
    field_u.configureField(8, 0x11b);
    ring_u.loadConfig(GFConfig::circulant(8));
    for (unsigned x = 0; x < 256; ++x) {
        uint8_t inv = lane(field_u.simdInverse(splat(x)), 0);
        uint8_t affine =
            lane(ring_u.simdMult(splat(inv), splat(0x1f)), 0) ^ 0x63;
        EXPECT_EQ(affine, Aes::sbox(static_cast<uint8_t>(x))) << x;

        uint8_t pre =
            lane(ring_u.simdMult(splat(x), splat(0x4a)), 0) ^ 0x05;
        uint8_t isb = lane(field_u.simdInverse(splat(pre)), 0);
        EXPECT_EQ(isb, Aes::invSbox(static_cast<uint8_t>(x))) << x;
    }
}

TEST(CirculantRing, PackRoundTrips)
{
    GFConfig cfg = GFConfig::circulant(8);
    GFConfig back = GFConfig::unpack(cfg.pack());
    EXPECT_EQ(back, cfg);
}

TEST(CirculantRing, SmallerWidths)
{
    // mod x^4 + 1: bit 4+j wraps to bit j.
    GFArithmeticUnit u;
    u.loadConfig(GFConfig::circulant(4));
    for (unsigned a = 0; a < 16; ++a) {
        for (unsigned b = 0; b < 16; ++b) {
            uint16_t full = clmul8(a, b);
            uint8_t expect = static_cast<uint8_t>(
                (full ^ (full >> 4)) & 0xf);
            EXPECT_EQ(lane(u.simdMult(splat(a), splat(b)), 0), expect);
        }
    }
}

} // namespace
} // namespace gfp
