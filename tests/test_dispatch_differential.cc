/**
 * @file
 * Differential proof that every accelerated dispatch mode is bit-exact
 * with the plain single-stepping interpreter: the fused threaded
 * dispatcher AND the template-JIT translated mode (native backend when
 * available, plus the portable threaded-code backend forced
 * explicitly).  Every catalog kernel, seeded random programs biased
 * toward the fusion patterns, branch-into-fused-pair corners,
 * self-modifying code, and SEU bit flips all run through each
 * accelerated core and a slow core and must produce identical
 * registers, memory, traps, and full CycleStats.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "isa/encoding.h"
#include "isa/program.h"
#include "jit/core_translation.h"
#include "jit/translator.h"
#include "kernels/kernel_catalog.h"
#include "sim/cpu.h"
#include "sim/machine.h"
#include "sim/memory.h"

namespace gfp {
namespace {

void
expectStatsEq(const CycleStats &a, const CycleStats &b,
              const std::string &what)
{
    EXPECT_EQ(a.instrs, b.instrs) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.load_ops, b.load_ops) << what;
    EXPECT_EQ(a.load_cycles, b.load_cycles) << what;
    EXPECT_EQ(a.store_ops, b.store_ops) << what;
    EXPECT_EQ(a.store_cycles, b.store_cycles) << what;
    EXPECT_EQ(a.alu_ops, b.alu_ops) << what;
    EXPECT_EQ(a.alu_cycles, b.alu_cycles) << what;
    EXPECT_EQ(a.branch_ops, b.branch_ops) << what;
    EXPECT_EQ(a.branch_cycles, b.branch_cycles) << what;
    EXPECT_EQ(a.ctrl_ops, b.ctrl_ops) << what;
    EXPECT_EQ(a.ctrl_cycles, b.ctrl_cycles) << what;
    EXPECT_EQ(a.gf_simd_ops, b.gf_simd_ops) << what;
    EXPECT_EQ(a.gf_simd_cycles, b.gf_simd_cycles) << what;
    EXPECT_EQ(a.gf32_ops, b.gf32_ops) << what;
    EXPECT_EQ(a.gf32_cycles, b.gf32_cycles) << what;
    EXPECT_EQ(a.gfcfg_ops, b.gfcfg_ops) << what;
    EXPECT_EQ(a.gfcfg_cycles, b.gfcfg_cycles) << what;
    EXPECT_EQ(a.faults_mem, b.faults_mem) << what;
    EXPECT_EQ(a.faults_reg, b.faults_reg) << what;
    EXPECT_EQ(a.faults_cfg, b.faults_cfg) << what;
}

void
expectRunEq(const RunResult &a, const RunResult &b, const std::string &what)
{
    EXPECT_EQ(a.halted, b.halted) << what;
    EXPECT_EQ(a.instrs, b.instrs) << what;
    EXPECT_EQ(a.trap.kind, b.trap.kind)
        << what << ": " << a.trap.describe() << " vs " << b.trap.describe();
    EXPECT_EQ(a.trap.pc, b.trap.pc) << what;
    EXPECT_EQ(a.trap.addr, b.trap.addr) << what;
    EXPECT_EQ(a.trap.cycle, b.trap.cycle) << what;
    expectStatsEq(a.stats, b.stats, what);
}

/** Translated-mode variants exercised by the differential legs: the
 *  auto-selected backend (native where GFP_JIT built one, threaded
 *  otherwise) and the portable threaded backend forced explicitly, so
 *  the block-IR reference path gets coverage even on native hosts. */
jit::TranslateOptions
translateOptsFor(jit::Backend backend, size_t mem_bytes,
                 uint64_t max_instrs)
{
    jit::TranslateOptions topts;
    // Eager policy: the hostile/random programs here would never
    // certify, but deopt-to-interpreter must still keep them bit-exact.
    topts.policy = jit::TranslatePolicy::kEager;
    topts.backend = backend;
    topts.mem_bytes = mem_bytes;
    topts.watchdog_max_instrs = max_instrs;
    return topts;
}

/** A raw word program on its own memory + core, no Machine wrapper —
 *  lets the tests control every code byte (invalid words included). */
struct Rig
{
    Memory mem;
    Core core;

    Rig(const std::vector<uint32_t> &words, CoreKind kind,
        DispatchMode mode, size_t mem_bytes = 16 * 1024,
        jit::Backend backend = jit::Backend::kAuto)
        : mem(mem_bytes), core(mem, kind)
    {
        for (size_t i = 0; i < words.size(); ++i)
            mem.write32(static_cast<uint32_t>(4 * i), words[i]);
        core.setDispatchMode(mode);
        if (mode == DispatchMode::kTranslated) {
            Program prog;
            prog.code = words;
            core.setTranslation(jit::makeCoreTranslation(jit::translate(
                prog, kind,
                translateOptsFor(backend, mem_bytes, 500'000'000))));
        }
        core.enablePredecode(static_cast<uint32_t>(4 * words.size()));
    }
};

void
expectCoresEq(Rig &fast, Rig &slow, const std::string &what)
{
    for (unsigned r = 0; r < kNumRegs; ++r)
        EXPECT_EQ(fast.core.reg(r), slow.core.reg(r))
            << what << " r" << r;
    EXPECT_EQ(fast.core.pc(), slow.core.pc()) << what;
    EXPECT_EQ(fast.core.halted(), slow.core.halted()) << what;
    EXPECT_EQ(fast.mem.snapshot(), slow.mem.snapshot()) << what;
    expectStatsEq(fast.core.stats(), slow.core.stats(), what);
}

/** The accelerated legs every differential workload runs against the
 *  plain interpreter: mode + (for translated) backend + a tag. */
struct Leg
{
    DispatchMode mode;
    jit::Backend backend;
    const char *tag;
};

const Leg kLegs[] = {
    {DispatchMode::kFused, jit::Backend::kAuto, "fused"},
    {DispatchMode::kTranslated, jit::Backend::kAuto, "translated"},
    {DispatchMode::kTranslated, jit::Backend::kThreaded,
     "translated-threaded"},
};

/** Run the same word program through every dispatcher and compare
 *  everything: end state, trap, per-class statistics. */
void
runDifferential(const std::vector<uint32_t> &words, CoreKind kind,
                uint64_t max_instrs, const std::string &what)
{
    Rig slow(words, kind, DispatchMode::kPlain);
    RunResult rs = slow.core.run(max_instrs);
    for (const Leg &leg : kLegs) {
        Rig fast(words, kind, leg.mode, 16 * 1024, leg.backend);
        RunResult rf = fast.core.run(max_instrs);
        const std::string tagged = what + " [" + leg.tag + "]";
        expectRunEq(rf, rs, tagged);
        expectCoresEq(fast, slow, tagged);
    }
}

uint32_t
enc(Op op, unsigned rd = 0, unsigned rs1 = 0, unsigned rs2 = 0,
    int32_t imm = 0, unsigned rd2 = 0)
{
    Instr in;
    in.op = op;
    in.rd = static_cast<uint8_t>(rd);
    in.rs1 = static_cast<uint8_t>(rs1);
    in.rs2 = static_cast<uint8_t>(rs2);
    in.rd2 = static_cast<uint8_t>(rd2);
    in.imm = imm;
    return encode(in);
}

// ------------------- every shipped kernel, both ways -----------------

TEST(DispatchDifferential, AllCatalogKernelsMatchPlainStepping)
{
    // Zeroed input buffers are still a complete differential workload:
    // both cores see identical data, and several kernels take early
    // exits or run full fixed-trip loops either way.
    for (const KernelSource &k : kernelCatalog()) {
        CoreKind kind = k.name.find("baseline") != std::string::npos
                            ? CoreKind::kBaseline
                            : CoreKind::kGfProcessor;
        Machine slow(k.source, kind);
        slow.core().setDispatchMode(DispatchMode::kPlain);
        RunResult rs = slow.runToHalt(5'000'000);
        for (const Leg &leg : kLegs) {
            Machine fast(k.source, kind);
            fast.core().setDispatchMode(leg.mode);
            ASSERT_EQ(fast.core().dispatchMode(), leg.mode);
            if (leg.mode == DispatchMode::kTranslated)
                fast.core().setTranslation(
                    jit::makeCoreTranslation(jit::translate(
                        fast.program(), kind,
                        translateOptsFor(leg.backend,
                                         fast.memory().size(),
                                         5'000'000))));
            RunResult rf = fast.runToHalt(5'000'000);
            const std::string what = k.name + " [" + leg.tag + "]";
            expectRunEq(rf, rs, what);
            for (unsigned r = 0; r < kNumRegs; ++r)
                EXPECT_EQ(fast.core().reg(r), slow.core().reg(r))
                    << what << " r" << r;
            EXPECT_EQ(fast.core().pc(), slow.core().pc()) << what;
            EXPECT_EQ(fast.memory().snapshot(),
                      slow.memory().snapshot())
                << what;
        }
    }
}

// A kernel run with predecode disabled entirely (pure fetch-decode
// path) as a second reference for one representative of each family.
TEST(DispatchDifferential, FastPathMatchesNoPredecodeReference)
{
    for (const char *name :
         {"syndrome-gfcore", "aes-block-gfcore", "inverse233"}) {
        std::string src;
        for (const KernelSource &k : kernelCatalog())
            if (k.name == name)
                src = k.source;
        ASSERT_FALSE(src.empty()) << name;

        Machine fast(src, CoreKind::kGfProcessor);
        Machine ref(src, CoreKind::kGfProcessor);
        ref.core().disablePredecode();
        RunResult rf = fast.runToHalt(5'000'000);
        RunResult rr = ref.runToHalt(5'000'000);
        expectRunEq(rf, rr, name);
        EXPECT_EQ(fast.memory().snapshot(), ref.memory().snapshot())
            << name;
    }
}

// ----------------------- seeded random programs ----------------------

/**
 * Random programs biased toward the fusion patterns (cmp+bcc pairs,
 * movi feeding loads/stores, gfsqs chains, loads feeding GF ops) plus
 * hazards: branches into the middle of would-be pairs, out-of-range
 * accesses, undecodable words, runaway loops (equal watchdogs), and
 * pc running off the end of the program.
 */
std::vector<uint32_t>
randomProgram(uint64_t seed, CoreKind kind, unsigned n_words)
{
    Rng rng(seed);
    std::vector<uint32_t> words;
    words.reserve(n_words);

    auto reg = [&] { return static_cast<unsigned>(rng.below(13)); };
    auto emit = [&](uint32_t w) { words.push_back(w); };

    while (words.size() + 2 < n_words) {
        switch (rng.below(kind == CoreKind::kGfProcessor ? 10 : 7)) {
          case 0: { // random register ALU op
            Op ops[] = {Op::kAdd, Op::kSub, Op::kAnd, Op::kOrr, Op::kEor,
                        Op::kLsl, Op::kLsr, Op::kAsr, Op::kMul, Op::kMov};
            emit(enc(ops[rng.below(10)], reg(), reg(), reg()));
            break;
          }
          case 1: { // random immediate ALU op
            Op ops[] = {Op::kAddi, Op::kSubi, Op::kAndi, Op::kOrri,
                        Op::kEori, Op::kLsli, Op::kLsri, Op::kAsri};
            emit(enc(ops[rng.below(8)], reg(), reg(), 0,
                     static_cast<int32_t>(rng.below(4096)) - 2048));
            break;
          }
          case 2: { // movi / movt pair (materializes constants)
            unsigned rd = reg();
            emit(enc(Op::kMovi, rd, 0, 0,
                     static_cast<int32_t>(rng.below(65536))));
            if (rng.chance(0.5))
                emit(enc(Op::kMovt, rd, 0, 0,
                         static_cast<int32_t>(rng.below(65536))));
            break;
          }
          case 3: { // address-gen ALU feeding a load/store (fusable)
            unsigned rb = reg();
            bool in_range = rng.chance(0.8);
            emit(enc(Op::kMovi, rb, 0, 0,
                     static_cast<int32_t>(
                         in_range ? 8192 + rng.below(4096) : 65535)));
            Op mems[] = {Op::kLdr, Op::kStr, Op::kLdrb, Op::kStrb,
                         Op::kLdrh, Op::kStrh};
            emit(enc(mems[rng.below(6)], reg(), rb, 0,
                     static_cast<int32_t>(rng.below(64))));
            break;
          }
          case 4: { // register-indexed memory op
            unsigned rb = reg(), ri = reg();
            emit(enc(Op::kMovi, rb, 0, 0,
                     static_cast<int32_t>(8192 + rng.below(4096))));
            emit(enc(Op::kAndi, ri, ri, 0, 255));
            Op mems[] = {Op::kLdrr, Op::kStrr, Op::kLdrbr, Op::kStrbr,
                         Op::kLdrhr, Op::kStrhr};
            emit(enc(mems[rng.below(6)], reg(), rb, ri));
            break;
          }
          case 5: { // compare + conditional branch (fusable), forward
            Op bccs[] = {Op::kBeq, Op::kBne, Op::kBlt, Op::kBge,
                         Op::kBgt, Op::kBle, Op::kBlo, Op::kBhs,
                         Op::kBhi, Op::kBls};
            if (rng.chance(0.5))
                emit(enc(Op::kCmp, 0, reg(), reg()));
            else
                emit(enc(Op::kCmpi, 0, reg(), 0,
                         static_cast<int32_t>(rng.below(4096)) - 2048));
            emit(enc(bccs[rng.below(10)], 0, 0, 0,
                     static_cast<int32_t>(rng.below(4))));
            break;
          }
          case 6: { // unconditional control flow
            if (rng.chance(0.7)) {
                emit(enc(Op::kB, 0, 0, 0,
                         static_cast<int32_t>(rng.below(3))));
            } else {
                emit(enc(Op::kNop));
            }
            break;
          }
          case 7: { // SIMD GF op, possibly behind a load (fusable)
            Op gfs[] = {Op::kGfMuls, Op::kGfInvs, Op::kGfSqs,
                        Op::kGfPows, Op::kGfAdds};
            unsigned rd = reg();
            if (rng.chance(0.5)) {
                unsigned rb = reg();
                emit(enc(Op::kMovi, rb, 0, 0,
                         static_cast<int32_t>(8192 + rng.below(1024))));
                emit(enc(Op::kLdr, rd, rb, 0, 0));
            }
            emit(enc(gfs[rng.below(5)], reg(), rd, reg()));
            break;
          }
          case 8: { // gfsqs square chain (fusable run)
            unsigned rd = reg(), rs = reg();
            emit(enc(Op::kGfSqs, rd, rs));
            unsigned run = 1 + static_cast<unsigned>(rng.below(6));
            for (unsigned k = 0; k < run && words.size() + 2 < n_words;
                 ++k)
                emit(enc(Op::kGfSqs, rd, rd));
            break;
          }
          case 9: { // 32-bit partial product
            emit(enc(Op::kGf32Mul, reg(), reg(), reg(), 0, reg()));
            break;
          }
        }
        // Occasionally corrupt a word outright: both cores must raise
        // the identical IllegalInstruction if execution reaches it.
        if (rng.chance(0.02))
            words.back() = 0xff000000u | rng.next32() >> 8;
    }
    while (words.size() + 1 < n_words)
        emit(enc(Op::kNop));
    emit(enc(Op::kHalt));
    return words;
}

TEST(DispatchDifferential, SeededRandomProgramsGfCore)
{
    for (uint64_t seed = 1; seed <= 40; ++seed)
        runDifferential(randomProgram(seed, CoreKind::kGfProcessor, 96),
                        CoreKind::kGfProcessor, 20'000,
                        "gf seed " + std::to_string(seed));
}

TEST(DispatchDifferential, SeededRandomProgramsBaseline)
{
    // On the baseline core every GF opcode must trap kGfOnBaseline at
    // the same point on both paths; reuse GF-biased programs for that.
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        runDifferential(randomProgram(seed, CoreKind::kBaseline, 96),
                        CoreKind::kBaseline, 20'000,
                        "base seed " + std::to_string(seed));
        runDifferential(randomProgram(seed, CoreKind::kGfProcessor, 96),
                        CoreKind::kBaseline, 20'000,
                        "base/gfprog seed " + std::to_string(seed));
    }
}

// ------------------------- handcrafted corners -----------------------

TEST(DispatchDifferential, BranchIntoMiddleOfFusedPair)
{
    // Word 1+2 fuse as cmpi+beq.  Word 4 later branches straight to
    // word 2 (the branch half) with *different* flags, so the fast path
    // must dispatch word 2's own single-instruction entry.
    std::vector<uint32_t> words = {
        enc(Op::kMovi, 0, 0, 0, 7), // 0
        enc(Op::kCmpi, 0, 0, 0, 9), // 1  flags != (fused head)
        enc(Op::kBeq, 0, 0, 0, 3),  // 2  not taken; later target
        enc(Op::kCmpi, 0, 0, 0, 7), // 3  flags ==
        enc(Op::kB, 0, 0, 0, -4),   // 4  jump back to word 2
        enc(Op::kHalt),             // 5  (unreachable)
        enc(Op::kHalt),             // 6  beq target on second visit
    };
    runDifferential(words, CoreKind::kGfProcessor, 1'000,
                    "branch into fused pair");
}

TEST(DispatchDifferential, SelfModifyingStoreDefusesExactly)
{
    // The program overwrites its own infinite loop with a halt through
    // a *fused* movi+str pair; the store must invalidate the fused
    // stream on both paths before word 6 executes again.
    const uint32_t haltw = enc(Op::kHalt);
    std::vector<uint32_t> words = {
        enc(Op::kMovi, 1, 0, 0, static_cast<int32_t>(haltw & 0xffff)),
        enc(Op::kMovt, 1, 0, 0, static_cast<int32_t>(haltw >> 16)),
        enc(Op::kMovi, 2, 0, 0, 24), // address of word 6
        enc(Op::kStr, 1, 2, 0, 0),   // fuses as alu+st with word 2
        enc(Op::kNop),
        enc(Op::kNop),
        enc(Op::kB, 0, 0, 0, -1), // infinite loop unless overwritten
    };
    runDifferential(words, CoreKind::kGfProcessor, 1'000,
                    "self-modifying store");

    // And the rewritten program must have actually halted (not hit the
    // watchdog) on every accelerated path: the store replaced the loop
    // before it spun.
    for (const Leg &leg : kLegs) {
        Rig rig(words, CoreKind::kGfProcessor, leg.mode, 16 * 1024,
                leg.backend);
        RunResult r = rig.core.run(1'000);
        EXPECT_TRUE(r.halted) << leg.tag << ": " << r.trap.describe();
    }
}

TEST(DispatchDifferential, SeuFlipInCodeRegionDefusesExactly)
{
    // Pause both cores mid-run with an equal watchdog, deliver the
    // same SEU into an instruction word, resume: the stale fused
    // stream must be invalidated identically on both paths.
    std::vector<uint32_t> words = {
        enc(Op::kMovi, 3, 0, 0, 5), // 0
        enc(Op::kNop),              // 1
        enc(Op::kNop),              // 2
        enc(Op::kAddi, 3, 3, 0, 1), // 3 <- flip lands here
        enc(Op::kNop),              // 4
        enc(Op::kHalt),             // 5
    };
    for (unsigned bit : {0u, 5u, 26u}) { // imm, rd2 field, opcode bits
        for (const Leg &leg : kLegs) {
            Rig fast(words, CoreKind::kGfProcessor, leg.mode, 16 * 1024,
                     leg.backend);
            Rig slow(words, CoreKind::kGfProcessor,
                     DispatchMode::kPlain);
            RunResult pf = fast.core.run(2);
            RunResult ps = slow.core.run(2);
            ASSERT_EQ(pf.trap.kind, TrapKind::kWatchdog);
            ASSERT_EQ(ps.trap.kind, TrapKind::kWatchdog);
            fast.core.injectFault(FaultTarget::kDataMemory,
                                  4 * 3 + bit / 8, bit % 8);
            slow.core.injectFault(FaultTarget::kDataMemory,
                                  4 * 3 + bit / 8, bit % 8);
            RunResult rf = fast.core.run(1'000);
            RunResult rs = slow.core.run(1'000);
            const std::string what = std::string("seu bit ") +
                                     std::to_string(bit) + " [" +
                                     leg.tag + "]";
            expectRunEq(rf, rs, what);
            expectCoresEq(fast, slow, what);
        }
    }
}

TEST(DispatchDifferential, SeuMakesWordUndecodable)
{
    // Setting a high opcode bit yields an undecodable word: both paths
    // must raise kIllegalInstruction at the same pc with the same
    // faulting word.
    std::vector<uint32_t> words = {
        enc(Op::kNop), enc(Op::kNop), enc(Op::kNop), enc(Op::kHalt)};
    for (const Leg &leg : kLegs) {
        Rig fast(words, CoreKind::kGfProcessor, leg.mode, 16 * 1024,
                 leg.backend);
        Rig slow(words, CoreKind::kGfProcessor, DispatchMode::kPlain);
        (void)fast.core.run(1);
        (void)slow.core.run(1);
        fast.core.injectFault(FaultTarget::kDataMemory, 4 * 2 + 3, 7);
        slow.core.injectFault(FaultTarget::kDataMemory, 4 * 2 + 3, 7);
        RunResult rf = fast.core.run(1'000);
        RunResult rs = slow.core.run(1'000);
        const std::string what = std::string("undecodable [") +
                                 leg.tag + "]";
        EXPECT_EQ(rf.trap.kind, TrapKind::kIllegalInstruction) << what;
        expectRunEq(rf, rs, what);
        expectCoresEq(fast, slow, what);
    }
}

TEST(DispatchDifferential, ConfigCorruptionTrapsIdentically)
{
    // A config-register SEU before a GF instruction: the fast path must
    // bail (committing nothing) and deliver the identical
    // kGfConfigCorrupt trap through step().
    std::vector<uint32_t> words = {
        enc(Op::kMovi, 1, 0, 0, 0x1234), // 0
        enc(Op::kNop),                   // 1
        enc(Op::kGfMuls, 2, 1, 1),       // 2
        enc(Op::kHalt),                  // 3
    };
    for (const Leg &leg : kLegs) {
        Rig fast(words, CoreKind::kGfProcessor, leg.mode, 16 * 1024,
                 leg.backend);
        Rig slow(words, CoreKind::kGfProcessor, DispatchMode::kPlain);
        (void)fast.core.run(1);
        (void)slow.core.run(1);
        // m=8, flipping bit 57 yields m=10: invalid field width.
        fast.core.injectFault(FaultTarget::kConfigReg, 0, 57);
        slow.core.injectFault(FaultTarget::kConfigReg, 0, 57);
        RunResult rf = fast.core.run(1'000);
        RunResult rs = slow.core.run(1'000);
        const std::string what = std::string("config corrupt [") +
                                 leg.tag + "]";
        EXPECT_EQ(rf.trap.kind, TrapKind::kGfConfigCorrupt) << what;
        expectRunEq(rf, rs, what);
        expectCoresEq(fast, slow, what);
    }
}

TEST(DispatchDifferential, RunawayLoopWatchdogsIdentically)
{
    std::vector<uint32_t> words = {
        enc(Op::kMovi, 0, 0, 0, 0),  // 0
        enc(Op::kAddi, 0, 0, 0, 1),  // 1
        enc(Op::kCmpi, 0, 0, 0, 50), // 2  fused with 3
        enc(Op::kBne, 0, 0, 0, -4),  // 3  loop back to word 1
        enc(Op::kB, 0, 0, 0, -1),    // 4  spin forever
    };
    // Cut the budget at every point of a fused pair's retirement.
    for (uint64_t cap : {1u, 2u, 3u, 100u, 151u, 152u, 153u, 400u})
        runDifferential(words, CoreKind::kGfProcessor, cap,
                        "watchdog cap " + std::to_string(cap));
}

TEST(DispatchDifferential, PcRunsOffIntoDataAndOutOfMemory)
{
    // No halt: pc falls past the predecoded region into zeroed data
    // (decodes as add r0,r0,r0), then off the end of memory.  Both
    // paths must take the same kOutOfRangeAccess fetch trap.
    std::vector<uint32_t> words = {
        enc(Op::kMovi, 5, 0, 0, 9),
        enc(Op::kNop),
    };
    runDifferential(words, CoreKind::kGfProcessor, 100'000,
                    "pc into data");
}

// --------------------- introspection sanity checks -------------------

TEST(DispatchIntrospection, DispatchKindIsKnown)
{
    std::string kind = Core::dispatchKind();
    EXPECT_TRUE(kind == "computed-goto" || kind == "switch") << kind;
}

TEST(DispatchIntrospection, FusionDumpListsFusedRegions)
{
    std::vector<uint32_t> words = {
        enc(Op::kMovi, 0, 0, 0, 1),  // 0: fuses with the ldr below
        enc(Op::kLdr, 1, 0, 0, 64),  // 1
        enc(Op::kCmpi, 1, 0, 0, 3),  // 2: fuses with the bne
        enc(Op::kBne, 0, 0, 0, 1),   // 3
        enc(Op::kGfSqs, 2, 1),       // 4: head of a square chain
        enc(Op::kGfSqs, 2, 2),       // 5
        enc(Op::kGfSqs, 2, 2),       // 6
        enc(Op::kHalt),              // 7
    };
    Rig rig(words, CoreKind::kGfProcessor, DispatchMode::kFused);
    auto dump = rig.core.fusionDump();
    ASSERT_FALSE(dump.empty());
    std::string all;
    for (const auto &line : dump) {
        EXPECT_EQ(line.substr(0, 2), "0x") << line;
        all += line + "\n";
    }
    EXPECT_NE(all.find("alu+ld"), std::string::npos) << all;
    EXPECT_NE(all.find("cmpi+bcc"), std::string::npos) << all;
    EXPECT_NE(all.find("gfsqs-chain len=3"), std::string::npos) << all;

    // Disabling predecode clears the fused stream.
    rig.core.disablePredecode();
    EXPECT_TRUE(rig.core.fusionDump().empty());
}

} // namespace
} // namespace gfp
