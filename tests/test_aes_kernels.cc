/**
 * @file
 * Validation of the AES assembly kernels on the simulated cores against
 * the reference Aes class: every per-kernel program, key expansion, and
 * full-block encrypt/decrypt on both cores (FIPS-197 vectors), plus the
 * Fig. 10 ordering claims (invMixCol speedup > MixCol speedup, etc.).
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/strutil.h"
#include "crypto/aes.h"
#include "kernels/aes_kernels.h"
#include "sim/machine.h"

namespace gfp {
namespace {

std::vector<uint8_t>
stateBytes(const AesBlock &b)
{
    return std::vector<uint8_t>(b.begin(), b.end());
}

/** XOR-ready round-key byte blocks (16 bytes per round). */
std::vector<uint8_t>
roundKeyBytes(const Aes &aes)
{
    std::vector<uint8_t> out;
    const auto &w = aes.roundKeys();
    for (uint32_t word : w) {
        out.push_back(static_cast<uint8_t>(word >> 24));
        out.push_back(static_cast<uint8_t>(word >> 16));
        out.push_back(static_cast<uint8_t>(word >> 8));
        out.push_back(static_cast<uint8_t>(word));
    }
    return out;
}

const std::vector<uint8_t> kKey =
    fromHex("000102030405060708090a0b0c0d0e0f");
const AesBlock kState = [] {
    AesBlock b;
    auto v = fromHex("00112233445566778899aabbccddeeff");
    std::copy(v.begin(), v.end(), b.begin());
    return b;
}();

TEST(AesKernels, AddRoundKeyBothCores)
{
    Aes aes(kKey);
    AesBlock expect = kState;
    Aes::addRoundKey(expect, &aes.roundKeys()[0]);

    for (CoreKind kind : {CoreKind::kBaseline, CoreKind::kGfProcessor}) {
        Machine m(aesArkAsm(), kind);
        m.writeBytes("state", stateBytes(kState));
        m.writeBytes("rkeys", roundKeyBytes(aes));
        m.runOk();
        EXPECT_EQ(m.readBytes("state", 16), stateBytes(expect));
    }
}

TEST(AesKernels, SubBytesBothDirections)
{
    for (bool inverse : {false, true}) {
        AesBlock expect = kState;
        if (inverse)
            Aes::invSubBytes(expect);
        else
            Aes::subBytes(expect);

        Machine base(aesSubBytesAsmBaseline(inverse), CoreKind::kBaseline);
        base.writeBytes("state", stateBytes(kState));
        CycleStats bs = base.runOk();
        EXPECT_EQ(base.readBytes("state", 16), stateBytes(expect))
            << "baseline inverse=" << inverse;

        Machine gf(aesSubBytesAsmGfcore(inverse), CoreKind::kGfProcessor);
        gf.writeBytes("state", stateBytes(kState));
        CycleStats gs = gf.runOk();
        EXPECT_EQ(gf.readBytes("state", 16), stateBytes(expect))
            << "gfcore inverse=" << inverse;

        EXPECT_GT(bs.cycles, gs.cycles);
    }
}

TEST(AesKernels, ShiftRowsBothDirections)
{
    for (bool inverse : {false, true}) {
        AesBlock expect = kState;
        if (inverse)
            Aes::invShiftRows(expect);
        else
            Aes::shiftRows(expect);
        for (CoreKind kind : {CoreKind::kBaseline,
                              CoreKind::kGfProcessor}) {
            Machine m(aesShiftRowsAsm(inverse), kind);
            m.writeBytes("state", stateBytes(kState));
            m.runOk();
            EXPECT_EQ(m.readBytes("state", 16), stateBytes(expect))
                << "inverse=" << inverse;
        }
    }
}

class MixColKernel : public ::testing::TestWithParam<
                         std::tuple<bool, BaselineFlavor>>
{
};

TEST_P(MixColKernel, MatchesReference)
{
    auto [inverse, flavor] = GetParam();
    AesBlock expect = kState;
    if (inverse)
        Aes::invMixColumns(expect);
    else
        Aes::mixColumns(expect);

    Machine base(aesMixColAsmBaseline(inverse, flavor),
                 CoreKind::kBaseline);
    base.writeBytes("state", stateBytes(kState));
    CycleStats bs = base.runOk();
    EXPECT_EQ(base.readBytes("state", 16), stateBytes(expect));

    Machine gf(aesMixColAsmGfcore(inverse), CoreKind::kGfProcessor);
    gf.writeBytes("state", stateBytes(kState));
    CycleStats gs = gf.runOk();
    EXPECT_EQ(gf.readBytes("state", 16), stateBytes(expect));

    EXPECT_GT(bs.cycles, gs.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, MixColKernel,
    ::testing::Values(
        std::tuple{false, BaselineFlavor::kHandOptimized},
        std::tuple{false, BaselineFlavor::kCompiled},
        std::tuple{true, BaselineFlavor::kHandOptimized},
        std::tuple{true, BaselineFlavor::kCompiled}),
    [](const auto &info) {
        return std::string(std::get<0>(info.param) ? "Inv" : "Fwd") +
               (std::get<1>(info.param) == BaselineFlavor::kCompiled
                    ? "Compiled"
                    : "Hand");
    });

TEST(AesKernels, InvMixColGainsExceedMixColGains)
{
    // The Fig. 10 shape: the GF core is agnostic to coefficient values,
    // so the inverse direction (whose baseline lacks the 02/03/01/01
    // trick) speeds up by more.
    auto ratio = [&](bool inverse) {
        Machine base(aesMixColAsmBaseline(inverse), CoreKind::kBaseline);
        base.writeBytes("state", stateBytes(kState));
        uint64_t b = base.runOk().cycles;
        Machine gf(aesMixColAsmGfcore(inverse), CoreKind::kGfProcessor);
        gf.writeBytes("state", stateBytes(kState));
        uint64_t g = gf.runOk().cycles;
        return static_cast<double>(b) / static_cast<double>(g);
    };
    EXPECT_GT(ratio(true), 1.5 * ratio(false));
}

TEST(AesKernels, KeyExpansionBothCores)
{
    Aes aes(kKey);
    for (bool gf_core : {false, true}) {
        Machine m(gf_core ? aesKeyExpandAsmGfcore()
                          : aesKeyExpandAsmBaseline(),
                  gf_core ? CoreKind::kGfProcessor : CoreKind::kBaseline);
        m.writeBytes("key", kKey);
        m.runOk();
        for (unsigned i = 0; i < 44; ++i) {
            EXPECT_EQ(m.readWord("xkey", i), aes.roundKeys()[i])
                << "gf_core=" << gf_core << " word " << i;
        }
    }
}

TEST(AesKernels, FullBlockEncryptFips197)
{
    Aes aes(kKey);
    AesBlock expect = aes.encryptBlock(kState);
    ASSERT_EQ(toHex(stateBytes(expect)),
              "69c4e0d86a7b0430d8cdb78070b4c55a");

    uint64_t cycles[2] = {0, 0};
    for (bool gf_core : {false, true}) {
        Machine m(gf_core ? aesBlockAsmGfcore(false)
                          : aesBlockAsmBaseline(false),
                  gf_core ? CoreKind::kGfProcessor : CoreKind::kBaseline);
        m.writeBytes("state", stateBytes(kState));
        m.writeBytes("rkeys", roundKeyBytes(aes));
        cycles[gf_core] = m.runOk().cycles;
        EXPECT_EQ(m.readBytes("state", 16), stateBytes(expect))
            << "gf_core=" << gf_core;
    }
    EXPECT_GT(cycles[0], 2 * cycles[1]);
}

TEST(AesKernels, FullBlockDecryptInverts)
{
    Aes aes(kKey);
    AesBlock ct = aes.encryptBlock(kState);

    uint64_t cycles[2] = {0, 0};
    for (bool gf_core : {false, true}) {
        Machine m(gf_core ? aesBlockAsmGfcore(true)
                          : aesBlockAsmBaseline(true),
                  gf_core ? CoreKind::kGfProcessor : CoreKind::kBaseline);
        m.writeBytes("state", stateBytes(ct));
        m.writeBytes("rkeys", roundKeyBytes(aes));
        cycles[gf_core] = m.runOk().cycles;
        EXPECT_EQ(m.readBytes("state", 16), stateBytes(kState))
            << "gf_core=" << gf_core;
    }
    // Decryption gains more than encryption (invMixCol dominates).
    EXPECT_GT(cycles[0], 3 * cycles[1]);
}

TEST(AesKernels, MultiBlockConsistency)
{
    // Run several random blocks through the GF-core encryptor and
    // compare each against the reference.
    Aes aes(kKey);
    Machine m(aesBlockAsmGfcore(false), CoreKind::kGfProcessor);
    m.writeBytes("rkeys", roundKeyBytes(aes));
    Rng rng(42);
    for (int trial = 0; trial < 8; ++trial) {
        AesBlock pt;
        for (auto &b : pt)
            b = rng.nextByte();
        m.reset();
        m.writeBytes("state", stateBytes(pt));
        m.runOk();
        EXPECT_EQ(m.readBytes("state", 16),
                  stateBytes(aes.encryptBlock(pt)));
    }
}

} // namespace
} // namespace gfp
