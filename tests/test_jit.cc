/**
 * @file
 * Unit tests for the template JIT (src/jit): A64 encoder golden words
 * (checked on every host, including x86-64 CI), backend selection and
 * cross-emission, the certificate-gated eligibility policy, the
 * deopt-to-interpreter edges (SMC, SEU, watchdog, traps) with their
 * entry/deopt accounting, and engine-level translated-dispatch parity.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "coding/channel.h"
#include "coding/rs.h"
#include "common/random.h"
#include "engine/batch_engine.h"
#include "isa/encoding.h"
#include "isa/program.h"
#include "jit/a64_encoder.h"
#include "jit/core_translation.h"
#include "jit/translator.h"
#include "kernels/batch_kernels.h"
#include "kernels/coding_kernels.h"
#include "sim/cpu.h"
#include "sim/machine.h"
#include "sim/memory.h"

namespace gfp {
namespace {

uint32_t
enc(Op op, unsigned rd = 0, unsigned rs1 = 0, unsigned rs2 = 0,
    int32_t imm = 0, unsigned rd2 = 0)
{
    Instr in;
    in.op = op;
    in.rd = static_cast<uint8_t>(rd);
    in.rs1 = static_cast<uint8_t>(rs1);
    in.rs2 = static_cast<uint8_t>(rs2);
    in.rd2 = static_cast<uint8_t>(rd2);
    in.imm = imm;
    return encode(in);
}

Program
progFromWords(const std::vector<uint32_t> &words)
{
    Program p;
    p.code = words;
    return p;
}

jit::TranslateOptions
eagerOpts(size_t mem_bytes = 16 * 1024,
          jit::Backend backend = jit::Backend::kAuto)
{
    jit::TranslateOptions topts;
    topts.policy = jit::TranslatePolicy::kEager;
    topts.backend = backend;
    topts.mem_bytes = mem_bytes;
    return topts;
}

// ------------------------- A64 encoder goldens -----------------------

// Golden words straight from an assembler; the encoders are pure
// functions, so this validates the AArch64 backend's building blocks
// even when the suite runs on an x86-64 host.
TEST(JitA64Encoder, GoldenWords)
{
    using namespace jit::a64;
    EXPECT_EQ(stpPre(29, 30, 31, -64), 0xA9BC7BFDu); // stp x29,x30,[sp,#-64]!
    EXPECT_EQ(ldpPost(29, 30, 31, 64), 0xA8C47BFDu); // ldp x29,x30,[sp],#64
    EXPECT_EQ(ret(), 0xD65F03C0u);
    EXPECT_EQ(br(16), 0xD61F0200u);
    EXPECT_EQ(blr(16), 0xD63F0200u);
    EXPECT_EQ(movz(false, 0, 0x1234, 0), 0x52824680u); // movz w0,#0x1234
    EXPECT_EQ(movk(true, 1, 0xBEEF, 1),
              0xF2B7DDE1u); // movk x1,#0xbeef,lsl#16
    EXPECT_EQ(addW(0, 1, 2), 0x0B020020u);             // add w0,w1,w2
    EXPECT_EQ(subW(3, 4, 5), 0x4B050083u);             // sub w3,w4,w5
    EXPECT_EQ(mulW(0, 1, 2), 0x1B027C20u);             // mul w0,w1,w2
    EXPECT_EQ(cmpW(1, 2), 0x6B02003Fu);                // cmp w1,w2
    EXPECT_EQ(csetW(0, kEq), 0x1A9F17E0u);             // cset w0,eq
    EXPECT_EQ(lsrX32(1, 0), 0xD360FC01u);              // lsr x1,x0,#32
    EXPECT_EQ(andWImm16Mask(0, 1), 0x12003C20u);       // and w0,w1,#0xffff
    EXPECT_EQ(ldrW(0, 19, 8), 0xB9400A60u);            // ldr w0,[x19,#8]
    EXPECT_EQ(strW(2, 20, 12), 0xB9000E82u);           // str w2,[x20,#12]
    EXPECT_EQ(ldrX(9, 19, 16), 0xF9400A69u);           // ldr x9,[x19,#16]
    EXPECT_EQ(b(2), 0x14000002u);                      // b #8
    EXPECT_EQ(bcond(kNe, -1), 0x54FFFFE1u);            // b.ne #-4
    EXPECT_EQ(cbzW(0, 4), 0x34000080u);                // cbz w0,#16
}

// ----------------------- backends and selection ----------------------

TEST(JitBackend, NativeBackendNameIsKnown)
{
    const std::string name = jit::nativeBackendName();
    EXPECT_TRUE(name == "x86-64" || name == "aarch64" ||
                name == "threaded")
        << name;
}

TEST(JitBackend, AutoBackendMatchesHost)
{
    auto cp = jit::translate(
        progFromWords({enc(Op::kMovi, 0, 0, 0, 7), enc(Op::kHalt)}),
        CoreKind::kGfProcessor, eagerOpts());
    ASSERT_NE(cp, nullptr);
    EXPECT_GT(cp->translatedWords(), 0u);
    EXPECT_STREQ(cp->backendName(), jit::nativeBackendName());
    EXPECT_FALSE(cp->summary().empty());
}

TEST(JitBackend, ThreadedBackendCanBeForced)
{
    auto cp = jit::translate(
        progFromWords({enc(Op::kMovi, 0, 0, 0, 7), enc(Op::kHalt)}),
        CoreKind::kGfProcessor,
        eagerOpts(16 * 1024, jit::Backend::kThreaded));
    ASSERT_NE(cp, nullptr);
    EXPECT_FALSE(cp->native());
    EXPECT_STREQ(cp->backendName(), "threaded");
}

// The A64 emitter must produce code for a real program on any build
// host — the encodings are never executed here, but every template
// must assemble and every entry point must land inside the cache.
TEST(JitBackend, EmitA64ProducesEntriesOnAnyHost)
{
    GFField f(8);
    Machine m(syndromeAsmGfcore(f, 255, 16), CoreKind::kGfProcessor);
    auto cp = jit::translate(m.program(), CoreKind::kGfProcessor,
                             eagerOpts(m.memory().size(),
                                       jit::Backend::kThreaded));
    ASSERT_NE(cp, nullptr);
    ASSERT_FALSE(cp->blocks().empty());

    jit::NativeCode out;
    ASSERT_TRUE(jit::emitA64(*cp, out));
    EXPECT_NE(out.enter, nullptr);
    EXPECT_STREQ(out.arch, "aarch64");
    size_t heads = 0;
    for (uint64_t e : out.entries)
        heads += e != 0;
    EXPECT_EQ(heads, cp->blocks().size());
}

// --------------------- eligibility policy (absint) -------------------

TEST(JitPolicy, CertifierDeclinesUnboundedProgram)
{
    // A bare spin loop has no bounded cost certificate: the default
    // kCertified policy must decline it (and say why), leaving the
    // interpreter to run it.
    auto cp = jit::translate(progFromWords({enc(Op::kB, 0, 0, 0, -1)}),
                             CoreKind::kGfProcessor);
    ASSERT_NE(cp, nullptr);
    EXPECT_EQ(cp->translatedWords(), 0u);
    EXPECT_FALSE(cp->policyNote().empty());
}

TEST(JitPolicy, CertifierAdmitsProvenKernel)
{
    // The RS syndrome kernel carries a full abstract-interpretation
    // certificate (jit-safe + bounded), so kCertified translates it.
    GFField f(8);
    Machine m(syndromeAsmGfcore(f, 255, 16), CoreKind::kGfProcessor);
    jit::TranslateOptions topts;
    topts.mem_bytes = m.memory().size();
    auto cp =
        jit::translate(m.program(), CoreKind::kGfProcessor, topts);
    ASSERT_NE(cp, nullptr);
    EXPECT_GT(cp->translatedWords(), 0u);
    EXPECT_TRUE(cp->policyNote().empty()) << cp->policyNote();
}

// ------------------------ deopt-to-interpreter -----------------------

/** A core with an installed translation whose counters stay visible. */
struct JitRig
{
    Memory mem;
    Core core;
    jit::CoreTranslation *ct = nullptr;

    JitRig(const std::vector<uint32_t> &words, CoreKind kind,
           jit::Backend backend, size_t mem_bytes = 16 * 1024)
        : mem(mem_bytes), core(mem, kind)
    {
        for (size_t i = 0; i < words.size(); ++i)
            mem.write32(static_cast<uint32_t>(4 * i), words[i]);
        auto cp =
            jit::translate(progFromWords(words), kind,
                           eagerOpts(mem_bytes, backend));
        auto owned = std::make_unique<jit::CoreTranslation>(cp);
        ct = owned.get();
        core.setDispatchMode(DispatchMode::kTranslated);
        core.setTranslation(std::move(owned));
        core.enablePredecode(static_cast<uint32_t>(4 * words.size()));
    }
};

const jit::Backend kBackends[] = {jit::Backend::kAuto,
                                  jit::Backend::kThreaded};

void
expectParity(const RunResult &a, const RunResult &b, Core &ca, Core &cb,
             const std::string &what)
{
    EXPECT_EQ(a.halted, b.halted) << what;
    EXPECT_EQ(a.instrs, b.instrs) << what;
    EXPECT_EQ(a.trap.kind, b.trap.kind)
        << what << ": " << a.trap.describe() << " vs "
        << b.trap.describe();
    EXPECT_EQ(a.trap.pc, b.trap.pc) << what;
    EXPECT_EQ(a.stats.cycles, b.stats.cycles) << what;
    EXPECT_EQ(a.stats.instrs, b.stats.instrs) << what;
    for (unsigned r = 0; r < kNumRegs; ++r)
        EXPECT_EQ(ca.reg(r), cb.reg(r)) << what << " r" << r;
    EXPECT_EQ(ca.pc(), cb.pc()) << what;
}

TEST(JitDeopt, TrapMidBlockDeoptsAndStaysBitExact)
{
    // The out-of-range store sits mid-block behind two committed
    // instructions: the generated code must deopt with *nothing*
    // committed, and the replayed prefix plus the interpreter's trap
    // must equal plain stepping exactly.
    std::vector<uint32_t> words = {
        enc(Op::kMovi, 0, 0, 0, 5),       // 0
        enc(Op::kAddi, 0, 0, 0, 2),       // 1
        enc(Op::kMovi, 1, 0, 0, 0x7ff0),  // 2  past 16 KiB of memory
        enc(Op::kStr, 0, 1, 0, 0),        // 3  out-of-range store
        enc(Op::kHalt),                   // 4
    };
    for (jit::Backend backend : kBackends) {
        JitRig rig(words, CoreKind::kGfProcessor, backend);
        Memory smem(16 * 1024);
        Core slow(smem, CoreKind::kGfProcessor);
        for (size_t i = 0; i < words.size(); ++i)
            smem.write32(static_cast<uint32_t>(4 * i), words[i]);
        slow.setDispatchMode(DispatchMode::kPlain);
        slow.enablePredecode(static_cast<uint32_t>(4 * words.size()));

        RunResult rf = rig.core.run(1'000);
        RunResult rs = slow.run(1'000);
        EXPECT_EQ(rf.trap.kind, TrapKind::kOutOfRangeAccess);
        expectParity(rf, rs, rig.core, slow, "trap deopt");
        EXPECT_GE(rig.ct->entries(), 1u);
        EXPECT_EQ(rig.ct->deopts(), 1u);
        EXPECT_FALSE(rig.ct->describe().empty());
    }
}

TEST(JitDeopt, SmcEpochBumpRevalidatesAndFallsBack)
{
    // The guest overwrites its own loop with a halt: the store deopts
    // (it hits the code watch region), the epoch moves, and translated
    // entry must refuse the now-stale code while the interpreter
    // finishes the run — identical to plain stepping.
    const uint32_t haltw = enc(Op::kHalt);
    std::vector<uint32_t> words = {
        enc(Op::kMovi, 1, 0, 0, static_cast<int32_t>(haltw & 0xffff)),
        enc(Op::kMovt, 1, 0, 0, static_cast<int32_t>(haltw >> 16)),
        enc(Op::kMovi, 2, 0, 0, 24), // address of word 6
        enc(Op::kStr, 1, 2, 0, 0),
        enc(Op::kNop),
        enc(Op::kNop),
        enc(Op::kB, 0, 0, 0, -1), // spin unless overwritten
    };
    for (jit::Backend backend : kBackends) {
        JitRig rig(words, CoreKind::kGfProcessor, backend);
        Memory smem(16 * 1024);
        Core slow(smem, CoreKind::kGfProcessor);
        for (size_t i = 0; i < words.size(); ++i)
            smem.write32(static_cast<uint32_t>(4 * i), words[i]);
        slow.setDispatchMode(DispatchMode::kPlain);
        slow.enablePredecode(static_cast<uint32_t>(4 * words.size()));

        RunResult rf = rig.core.run(1'000);
        RunResult rs = slow.run(1'000);
        EXPECT_TRUE(rf.halted) << rf.trap.describe();
        expectParity(rf, rs, rig.core, slow, "smc epoch");
        EXPECT_GE(rig.ct->deopts(), 1u);
    }
}

TEST(JitDeopt, SeuFlipOnTranslatedPageInvalidatesEntry)
{
    // An SEU lands on a word the JIT compiled; the epoch bump must
    // force revalidation, the memcmp must fail, and execution must
    // continue through the interpreter — matching plain stepping,
    // which sees the same flipped word.
    std::vector<uint32_t> words = {
        enc(Op::kMovi, 3, 0, 0, 5), // 0
        enc(Op::kNop),              // 1
        enc(Op::kNop),              // 2
        enc(Op::kAddi, 3, 3, 0, 1), // 3 <- flip lands here
        enc(Op::kNop),              // 4
        enc(Op::kHalt),             // 5
    };
    for (jit::Backend backend : kBackends) {
        JitRig rig(words, CoreKind::kGfProcessor, backend);
        Memory smem(16 * 1024);
        Core slow(smem, CoreKind::kGfProcessor);
        for (size_t i = 0; i < words.size(); ++i)
            smem.write32(static_cast<uint32_t>(4 * i), words[i]);
        slow.setDispatchMode(DispatchMode::kPlain);
        slow.enablePredecode(static_cast<uint32_t>(4 * words.size()));

        RunResult pf = rig.core.run(2);
        RunResult ps = slow.run(2);
        ASSERT_EQ(pf.trap.kind, TrapKind::kWatchdog);
        ASSERT_EQ(ps.trap.kind, TrapKind::kWatchdog);
        rig.core.injectFault(FaultTarget::kDataMemory, 4 * 3, 0);
        slow.injectFault(FaultTarget::kDataMemory, 4 * 3, 0);
        RunResult rf = rig.core.run(1'000);
        RunResult rs = slow.run(1'000);
        expectParity(rf, rs, rig.core, slow, "seu on code page");
    }
}

TEST(JitDeopt, WatchdogCapInsideTranslatedLoop)
{
    // A certified-shape counting loop under watchdog caps that land on
    // every phase of a block: before the loop, mid-block, on the
    // back-edge, and past the halt.  Translated mode must retire
    // exactly the same instruction count as plain stepping.
    std::vector<uint32_t> words = {
        enc(Op::kMovi, 0, 0, 0, 0),   // 0
        enc(Op::kAddi, 0, 0, 0, 1),   // 1
        enc(Op::kCmpi, 0, 0, 0, 200), // 2
        enc(Op::kBne, 0, 0, 0, -3),   // 3  loop to word 1
        enc(Op::kHalt),               // 4
    };
    for (jit::Backend backend : kBackends) {
        for (uint64_t cap : {1u, 2u, 3u, 4u, 5u, 300u, 601u, 602u, 5000u}) {
            JitRig rig(words, CoreKind::kGfProcessor, backend);
            Memory smem(16 * 1024);
            Core slow(smem, CoreKind::kGfProcessor);
            for (size_t i = 0; i < words.size(); ++i)
                smem.write32(static_cast<uint32_t>(4 * i), words[i]);
            slow.setDispatchMode(DispatchMode::kPlain);
            slow.enablePredecode(
                static_cast<uint32_t>(4 * words.size()));

            RunResult rf = rig.core.run(cap);
            RunResult rs = slow.run(cap);
            expectParity(rf, rs, rig.core, slow,
                         "watchdog cap " + std::to_string(cap));
        }
    }
}

// -------------------- engine-level translated mode -------------------

std::vector<Job>
makeSyndromeJobs(unsigned n, uint64_t seed)
{
    RSCode code(8, 8);
    Rng rng(seed);
    std::vector<Job> jobs;
    for (unsigned j = 0; j < n; ++j) {
        std::vector<GFElem> info(code.k());
        for (auto &s : info)
            s = rng.nextByte();
        ExactErrorInjector inj(seed + j);
        auto rx = inj.corruptSymbols(code.encode(info),
                                     j % (code.t() + 1), 8);
        jobs.push_back(syndromeJob(rx, 2 * code.t()));
    }
    return jobs;
}

TEST(JitEngine, TranslatedDispatchMatchesFusedBitForBit)
{
    GFField f(8);
    auto jobs = makeSyndromeJobs(32, 777);
    BatchEngine fused(syndromeBatchProgram(f, 255, 16), {.threads = 1});
    BatchEngine trans(syndromeBatchProgram(f, 255, 16),
                      {.threads = 1,
                       .dispatch = DispatchMode::kTranslated});
    auto rf = fused.runSerial(jobs);
    auto rt = trans.runSerial(jobs);
    ASSERT_EQ(rf.size(), rt.size());
    for (size_t i = 0; i < rf.size(); ++i) {
        EXPECT_EQ(rf[i].trap.kind, rt[i].trap.kind) << i;
        EXPECT_EQ(rf[i].outputs, rt[i].outputs) << i;
        EXPECT_EQ(rf[i].words, rt[i].words) << i;
        EXPECT_EQ(rf[i].stats.cycles, rt[i].stats.cycles) << i;
        EXPECT_EQ(rf[i].stats.instrs, rt[i].stats.instrs) << i;
    }
}

TEST(JitEngine, TranslatedParallelMatchesSerial)
{
    GFField f(8);
    auto jobs = makeSyndromeJobs(48, 4242);
    BatchEngine eng(syndromeBatchProgram(f, 255, 16),
                    {.threads = 4,
                     .dispatch = DispatchMode::kTranslated});
    auto par = eng.run(jobs);
    auto ser = eng.runSerial(jobs);
    ASSERT_EQ(par.size(), ser.size());
    for (size_t i = 0; i < par.size(); ++i) {
        EXPECT_EQ(par[i].outputs, ser[i].outputs) << i;
        EXPECT_EQ(par[i].words, ser[i].words) << i;
        EXPECT_EQ(par[i].stats.cycles, ser[i].stats.cycles) << i;
    }
}

} // namespace
} // namespace gfp
