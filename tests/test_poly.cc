/**
 * @file
 * Tests for GFPoly — polynomials over GF(2^m) used by the RS/BCH layer.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "gf/poly.h"

namespace gfp {
namespace {

class PolyTest : public ::testing::Test
{
  protected:
    GFField f{8, 0x11d};

    GFPoly
    randomPoly(Rng &rng, int max_degree)
    {
        std::vector<GFElem> c(rng.below(max_degree + 1) + 1);
        for (auto &x : c)
            x = rng.nextByte();
        return GFPoly(f, std::move(c));
    }
};

TEST_F(PolyTest, ConstructionNormalizes)
{
    GFPoly p(f, {1, 2, 0, 0});
    EXPECT_EQ(p.degree(), 1);
    EXPECT_EQ(p.coeff(0), 1);
    EXPECT_EQ(p.coeff(1), 2);
    EXPECT_EQ(p.coeff(5), 0);

    GFPoly z(f, {0, 0});
    EXPECT_TRUE(z.isZero());
    EXPECT_EQ(z.degree(), -1);
}

TEST_F(PolyTest, MonomialAndConstant)
{
    GFPoly m = GFPoly::monomial(f, 3, 4);
    EXPECT_EQ(m.degree(), 4);
    EXPECT_EQ(m.coeff(4), 3);
    EXPECT_EQ(GFPoly::constant(f, 7).degree(), 0);
    EXPECT_TRUE(GFPoly::constant(f, 0).isZero());
}

TEST_F(PolyTest, AddIsXor)
{
    GFPoly a(f, {1, 2, 3});
    GFPoly b(f, {3, 2, 3});
    GFPoly s = a + b;
    EXPECT_EQ(s.degree(), 0);
    EXPECT_EQ(s.coeff(0), 2);
    // a + a == 0
    EXPECT_TRUE((a + a).isZero());
}

TEST_F(PolyTest, MulKnownValue)
{
    // (x + 1)(x + 1) = x^2 + 1 over GF(2^8) subset {0,1}
    GFPoly p(f, {1, 1});
    GFPoly sq = p * p;
    EXPECT_EQ(sq, GFPoly(f, {1, 0, 1}));
}

TEST_F(PolyTest, MulDegreeAndCommutativity)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        GFPoly a = randomPoly(rng, 10);
        GFPoly b = randomPoly(rng, 10);
        GFPoly ab = a * b;
        EXPECT_EQ(ab, b * a);
        if (!a.isZero() && !b.isZero())
            EXPECT_EQ(ab.degree(), a.degree() + b.degree());
    }
}

TEST_F(PolyTest, DivModRoundTrip)
{
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        GFPoly a = randomPoly(rng, 20);
        GFPoly b = randomPoly(rng, 8);
        if (b.isZero())
            continue;
        GFPoly q(f), r(f);
        a.divmod(b, q, r);
        EXPECT_LT(r.degree(), b.degree());
        EXPECT_EQ(q * b + r, a);
    }
}

TEST_F(PolyTest, EvalHorner)
{
    // p(x) = x^2 + 3x + 5 at x=2: 4 ^ mul(3,2) ^ 5
    GFPoly p(f, {5, 3, 1});
    GFElem expect = f.mul(2, 2) ^ f.mul(3, 2) ^ 5;
    EXPECT_EQ(p.eval(2), expect);
    EXPECT_EQ(p.eval(0), 5);
}

TEST_F(PolyTest, EvalIsRingHomomorphism)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        GFPoly a = randomPoly(rng, 6);
        GFPoly b = randomPoly(rng, 6);
        GFElem x = rng.nextByte();
        EXPECT_EQ((a * b).eval(x), f.mul(a.eval(x), b.eval(x)));
        EXPECT_EQ((a + b).eval(x), a.eval(x) ^ b.eval(x));
    }
}

TEST_F(PolyTest, DerivativeChar2)
{
    // d/dx (x^3 + a x^2 + b x + c) = x^2 + b  (char 2: even terms vanish)
    GFPoly p(f, {7, 5, 9, 1});
    GFPoly d = p.derivative();
    EXPECT_EQ(d, GFPoly(f, {5, 0, 1}));
    EXPECT_TRUE(GFPoly::constant(f, 9).derivative().isZero());
}

TEST_F(PolyTest, DerivativeProductRule)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        GFPoly a = randomPoly(rng, 6);
        GFPoly b = randomPoly(rng, 6);
        // (ab)' = a'b + ab'
        EXPECT_EQ((a * b).derivative(),
                  a.derivative() * b + a * b.derivative());
    }
}

TEST_F(PolyTest, ShiftAndTruncate)
{
    GFPoly p(f, {1, 2, 3});
    GFPoly s = p.shift(2);
    EXPECT_EQ(s.degree(), 4);
    EXPECT_EQ(s.coeff(2), 1);
    EXPECT_EQ(s.truncated(2), GFPoly(f));
    EXPECT_EQ(p.truncated(2), GFPoly(f, {1, 2}));
}

TEST_F(PolyTest, ScalarMultiply)
{
    GFPoly p(f, {1, 2, 3});
    GFPoly s = p * GFElem{2};
    EXPECT_EQ(s.coeff(0), f.mul(1, 2));
    EXPECT_EQ(s.coeff(2), f.mul(3, 2));
    EXPECT_TRUE((p * GFElem{0}).isZero());
}

TEST_F(PolyTest, ToStringReadable)
{
    GFPoly p(f, {5, 1, 3});
    EXPECT_EQ(p.toString(), "3*x^2 + x + 5");
    EXPECT_EQ(GFPoly(f).toString(), "0");
}

} // namespace
} // namespace gfp
