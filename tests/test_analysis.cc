/**
 * @file
 * Guest-program static analyzer (analysis/lint.h): one positive
 * fixture and one clean counterpart per lint rule, interprocedural
 * dataflow behavior, lint-cleanliness of every shipped kernel and
 * example program, and a mutation sweep showing corrupted known-good
 * kernels are flagged by the analyzer (or trapped at runtime).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analysis/cfg.h"
#include "analysis/lint.h"
#include "common/strutil.h"
#include "gfau/config_reg.h"
#include "isa/assembler.h"
#include "isa/encoding.h"
#include "kernels/kernel_catalog.h"
#include "sim/machine.h"

namespace gfp {
namespace {

LintReport
lintSource(const std::string &src, const LintOptions &opts = {})
{
    return lintProgram(Assembler::assemble(src), opts);
}

const Finding *
findRule(const LintReport &r, LintRule rule)
{
    for (const Finding &f : r.findings)
        if (f.rule == rule)
            return &f;
    return nullptr;
}

std::string
dumpReport(const LintReport &r)
{
    std::string out;
    for (const Finding &f : r.findings)
        out += f.describe() + "\n";
    return out;
}

/// .data section carrying one packed gfConfig blob under label "cfg".
std::string
blobData(uint64_t blob)
{
    return strprintf(".data\n.align 8\ncfg:\n    .word 0x%08x, 0x%08x\n",
                     static_cast<uint32_t>(blob),
                     static_cast<uint32_t>(blob >> 32));
}

// ------------------------- per-rule fixtures -------------------------

TEST(Lint, UndecodableWordFlagged)
{
    Program prog = Assembler::assemble("    movi r0, #1\n    halt\n");
    EXPECT_TRUE(lintProgram(prog).clean());
    prog.code[1] = 0xffffffffu;
    Instr dummy;
    ASSERT_FALSE(tryDecode(prog.code[1], dummy));
    LintReport r = lintProgram(prog);
    const Finding *f = findRule(r, LintRule::kUndecodable);
    ASSERT_NE(f, nullptr) << dumpReport(r);
    EXPECT_EQ(f->severity, Severity::kError);
    EXPECT_EQ(f->pc, 4u);
}

TEST(Lint, BadBranchTargetFlagged)
{
    Program prog = Assembler::assemble("    b next\nnext:\n    halt\n");
    EXPECT_TRUE(lintProgram(prog).clean());
    Instr b{Op::kB, 0, 0, 0, 0, 100}; // way past the end of code
    prog.code[0] = encode(b);
    LintReport r = lintProgram(prog);
    const Finding *f = findRule(r, LintRule::kBadBranchTarget);
    ASSERT_NE(f, nullptr) << dumpReport(r);
    EXPECT_EQ(f->severity, Severity::kError);
}

TEST(Lint, FallOffEndFlagged)
{
    LintReport r = lintSource("    movi r0, #1\n");
    const Finding *f = findRule(r, LintRule::kFallOffEnd);
    ASSERT_NE(f, nullptr) << dumpReport(r);
    EXPECT_EQ(f->severity, Severity::kError);
    EXPECT_EQ(f->line, 1);

    EXPECT_TRUE(lintSource("    movi r0, #1\n    halt\n").clean());
}

TEST(Lint, UseBeforeDefFlagged)
{
    LintReport r = lintSource("    mov r1, r5\n    halt\n");
    const Finding *f = findRule(r, LintRule::kUseBeforeDef);
    ASSERT_NE(f, nullptr) << dumpReport(r);
    EXPECT_NE(f->message.find("r5"), std::string::npos);
    EXPECT_EQ(f->line, 1);

    EXPECT_TRUE(
        lintSource("    movi r5, #1\n    mov r1, r5\n    halt\n").clean());
}

TEST(Lint, EntryArgumentsAreDefined)
{
    // r0..r3 and sp are the Machine::setArgs / reset contract...
    const std::string src =
        "    mov r4, r0\n    mov r5, r3\n    ldr r6, [sp, #0]\n    halt\n";
    EXPECT_TRUE(lintSource(src).clean());

    // ...unless the caller says the program takes no arguments.
    LintOptions no_args;
    no_args.entry_args_defined = false;
    LintReport r = lintSource(src, no_args);
    EXPECT_NE(findRule(r, LintRule::kUseBeforeDef), nullptr);
}

TEST(Lint, CalleeMustDefsFlowBackToCaller)
{
    // init defines r5 on every path, so the caller's read is fine; r6
    // is never written anywhere, so that read is flagged.
    const std::string good = "    bl init\n"
                             "    mov r1, r5\n"
                             "    halt\n"
                             "init:\n"
                             "    movi r5, #7\n"
                             "    ret\n";
    EXPECT_TRUE(lintSource(good).clean()) << dumpReport(lintSource(good));

    const std::string bad = "    bl init\n"
                            "    mov r1, r6\n"
                            "    halt\n"
                            "init:\n"
                            "    movi r5, #7\n"
                            "    ret\n";
    LintReport r = lintSource(bad);
    const Finding *f = findRule(r, LintRule::kUseBeforeDef);
    ASSERT_NE(f, nullptr);
    EXPECT_NE(f->message.find("r6"), std::string::npos);
}

TEST(Lint, GfBeforeConfigFlagged)
{
    LintReport r = lintSource(
        "    movi r1, #3\n    gfmuls r2, r1, r1\n    halt\n");
    const Finding *f = findRule(r, LintRule::kGfBeforeConfig);
    ASSERT_NE(f, nullptr) << dumpReport(r);
    EXPECT_EQ(f->severity, Severity::kWarning);
    EXPECT_EQ(f->line, 2);

    // gfadds is a pure XOR — no configuration needed.
    EXPECT_TRUE(
        lintSource("    movi r1, #3\n    gfadds r2, r1, r1\n    halt\n")
            .clean());

    // With a valid gfcfg first, the same program is clean.
    std::string good = "    gfcfg cfg\n"
                       "    movi r1, #3\n"
                       "    gfmuls r2, r1, r1\n"
                       "    halt\n" +
                       blobData(GFConfig::derive(8, 0x11d).pack());
    EXPECT_TRUE(lintSource(good).clean()) << dumpReport(lintSource(good));
}

TEST(Lint, UnreachableCodeFlagged)
{
    LintReport r =
        lintSource("    b skip\n    movi r0, #1\nskip:\n    halt\n");
    const Finding *f = findRule(r, LintRule::kUnreachable);
    ASSERT_NE(f, nullptr) << dumpReport(r);
    EXPECT_EQ(f->severity, Severity::kWarning);
    EXPECT_EQ(f->line, 2);

    // Labeled (addressable) code is library convention, not dead code.
    EXPECT_TRUE(
        lintSource("    halt\nhelper:\n    movi r0, #1\n    ret\n")
            .clean());
}

TEST(Lint, OobAddressFlagged)
{
    LintReport r = lintSource(
        "    li r1, #0x40000\n    ldr r2, [r1, #0]\n    halt\n");
    const Finding *f = findRule(r, LintRule::kOobAddress);
    ASSERT_NE(f, nullptr) << dumpReport(r);
    EXPECT_EQ(f->severity, Severity::kError);

    // Same shape, in-range (and inside the image): clean.
    EXPECT_TRUE(lintSource("    movi r1, #0\n    ldr r2, [r1, #0]\n"
                           "    halt\n")
                    .clean());
}

TEST(Lint, RegisterOffsetOobFlagged)
{
    LintReport r = lintSource("    li r1, #0x3fffd\n    movi r2, #0\n"
                              "    ldr r3, [r1, r2]\n    halt\n");
    EXPECT_NE(findRule(r, LintRule::kOobAddress), nullptr)
        << dumpReport(r);
}

TEST(Lint, AddrBeyondImageFlagged)
{
    LintReport r = lintSource(
        "    li r1, #0x10000\n    ldr r2, [r1, #0]\n    halt\n");
    const Finding *f = findRule(r, LintRule::kAddrBeyondImage);
    ASSERT_NE(f, nullptr) << dumpReport(r);
    EXPECT_EQ(f->severity, Severity::kWarning);
}

TEST(Lint, StoreToCodeFlagged)
{
    LintReport r = lintSource("    movi r1, #0\n    movi r2, #5\n"
                              "    str r2, [r1, #0]\n    halt\n");
    const Finding *f = findRule(r, LintRule::kStoreToCode);
    ASSERT_NE(f, nullptr) << dumpReport(r);
    EXPECT_EQ(f->severity, Severity::kWarning);

    // A store into the data section is ordinary.
    EXPECT_TRUE(lintSource("    la r1, buf\n    movi r2, #5\n"
                           "    str r2, [r1, #0]\n    halt\n"
                           ".data\nbuf:\n    .space 8\n")
                    .clean());
}

TEST(Lint, InfiniteLoopFlagged)
{
    LintReport r = lintSource("spin:\n    b spin\n");
    const Finding *f = findRule(r, LintRule::kInfiniteLoop);
    ASSERT_NE(f, nullptr) << dumpReport(r);
    EXPECT_EQ(f->severity, Severity::kError);
    EXPECT_NE(f->message.find("spin"), std::string::npos);
}

TEST(Lint, ConditionalSelfLoopFlagged)
{
    // The branch never updates the flags it tests: once entered with Z
    // set, it spins forever.
    LintReport r = lintSource(
        "    movi r0, #0\nspin:\n    beq spin\n    halt\n");
    const Finding *f = findRule(r, LintRule::kInfiniteLoop);
    ASSERT_NE(f, nullptr) << dumpReport(r);
    EXPECT_EQ(f->severity, Severity::kError);
}

TEST(Lint, FlagFreeLoopBodyFlagged)
{
    LintReport r = lintSource("    movi r0, #0\n"
                              "    cmpi r0, #5\n"
                              "loop:\n"
                              "    addi r0, r0, #1\n"
                              "    bne loop\n"
                              "    halt\n");
    const Finding *f = findRule(r, LintRule::kMaybeInfiniteLoop);
    ASSERT_NE(f, nullptr) << dumpReport(r);
    EXPECT_EQ(f->severity, Severity::kWarning);

    // The canonical counted loop (cmp inside) is clean.
    EXPECT_TRUE(lintSource("    movi r0, #0\n"
                           "loop:\n"
                           "    addi r0, r0, #1\n"
                           "    cmpi r0, #5\n"
                           "    bne loop\n"
                           "    halt\n")
                    .clean());
}

TEST(Lint, CallNoReturnFlagged)
{
    LintReport r = lintSource("    bl f\n    halt\nf:\n    halt\n");
    const Finding *f = findRule(r, LintRule::kCallNoReturn);
    ASSERT_NE(f, nullptr) << dumpReport(r);
    EXPECT_EQ(f->severity, Severity::kWarning);
}

TEST(Lint, LrClobberedFlagged)
{
    // f calls g without saving lr: its ret goes back into f, not to
    // f's caller.
    LintReport r = lintSource("    bl f\n    halt\n"
                              "f:\n    bl g\n    ret\n"
                              "g:\n    ret\n");
    const Finding *f = findRule(r, LintRule::kLrClobbered);
    ASSERT_NE(f, nullptr) << dumpReport(r);
    EXPECT_EQ(f->severity, Severity::kWarning);

    // The save/restore idiom is clean.
    const std::string good = "    bl f\n    halt\n"
                             "f:\n"
                             "    subi sp, sp, #4\n"
                             "    str lr, [sp, #0]\n"
                             "    bl g\n"
                             "    ldr lr, [sp, #0]\n"
                             "    addi sp, sp, #4\n"
                             "    ret\n"
                             "g:\n    ret\n";
    EXPECT_TRUE(lintSource(good).clean()) << dumpReport(lintSource(good));
}

TEST(Lint, ConfigBlobOobFlagged)
{
    LintReport r = lintSource("    gfcfg #0x3fffc\n    halt\n");
    const Finding *f = findRule(r, LintRule::kConfigBlobOob);
    ASSERT_NE(f, nullptr) << dumpReport(r);
    EXPECT_EQ(f->severity, Severity::kError);
}

TEST(Lint, BadConfigBlobFlagged)
{
    // Field width 12 is unrepresentable: the gfcfg would trap.
    uint64_t blob = GFConfig::derive(8, 0x11d).pack();
    blob = (blob & ~(0xfull << 56)) | (12ull << 56);
    LintReport r =
        lintSource("    gfcfg cfg\n    halt\n" + blobData(blob));
    const Finding *f = findRule(r, LintRule::kBadConfigBlob);
    ASSERT_NE(f, nullptr) << dumpReport(r);
    EXPECT_EQ(f->severity, Severity::kError);
}

TEST(Lint, SuspectConfigBlobFlagged)
{
    // Valid width, but a P matrix that is neither a field reduction
    // nor the circulant ring.
    GFConfig cfg = GFConfig::derive(8, 0x11d);
    cfg.p_cols.fill(0x55);
    LintReport r =
        lintSource("    gfcfg cfg\n    halt\n" + blobData(cfg.pack()));
    const Finding *f = findRule(r, LintRule::kSuspectConfigBlob);
    ASSERT_NE(f, nullptr) << dumpReport(r);
    EXPECT_EQ(f->severity, Severity::kWarning);

    // All-zero blob: the host-patches-it-later pattern, warned.
    LintReport rz = lintSource(
        "    gfcfg cfg\n    halt\n.data\n.align 8\ncfg:\n    .space 8\n");
    EXPECT_NE(findRule(rz, LintRule::kSuspectConfigBlob), nullptr)
        << dumpReport(rz);

    // The circulant ring configuration (AES kernels) is legal.
    EXPECT_TRUE(
        lintSource("    gfcfg cfg\n    halt\n" +
                   blobData(GFConfig::circulant(8).pack()))
            .clean());
}

// --------------------- dataflow / CFG behavior -----------------------

TEST(Cfg, CallGraphBasics)
{
    Program prog = Assembler::assemble("    bl f\n    halt\n"
                                       "f:\n    movi r5, #1\n    ret\n");
    ControlFlowGraph cfg(prog);
    ASSERT_EQ(cfg.functionEntries().size(), 1u);
    uint32_t f = cfg.functionEntries()[0];
    EXPECT_EQ(f, prog.symbol("f") / 4);
    EXPECT_TRUE(cfg.mayReturn(f));
    for (uint32_t i = 0; i < cfg.size(); ++i)
        EXPECT_TRUE(cfg.reachable()[i]) << "word " << i;
    EXPECT_EQ(cfg.describeNode(f), "f");
}

TEST(Lint, FindingsCarrySourceLines)
{
    // Lines: 1 movi, 2 gfmuls, 3 missing halt.
    LintReport r =
        lintSource("    movi r1, #3\n    gfmuls r2, r1, r1\n");
    const Finding *gf = findRule(r, LintRule::kGfBeforeConfig);
    const Finding *off = findRule(r, LintRule::kFallOffEnd);
    ASSERT_NE(gf, nullptr);
    ASSERT_NE(off, nullptr);
    EXPECT_EQ(gf->line, 2);
    EXPECT_EQ(off->line, 2);
    EXPECT_NE(gf->describe().find("line 2"), std::string::npos);
}

// ----------------- shipped programs must lint clean ------------------

TEST(LintClean, AllBuiltinKernels)
{
    for (const KernelSource &k : kernelCatalog()) {
        LintReport r = lintProgram(Assembler::assemble(k.source));
        EXPECT_TRUE(r.clean())
            << "kernel " << k.name << ":\n" << dumpReport(r);
    }
}

TEST(LintClean, ExamplePrograms)
{
    for (const char *name : {"dot_product.s", "field_switch.s"}) {
        std::ifstream in(std::string(GFP_SOURCE_DIR) +
                         "/examples/progs/" + name);
        ASSERT_TRUE(in.good()) << name;
        std::stringstream ss;
        ss << in.rdbuf();
        LintReport r = lintProgram(Assembler::assemble(ss.str()));
        EXPECT_TRUE(r.clean()) << name << ":\n" << dumpReport(r);
    }
}

// --------------------------- mutation sweep --------------------------

/// Known-good kernels, deliberately corrupted: every mutant must be
/// flagged by the analyzer or trap at runtime — the differential
/// argument that the linter models the machine's failure modes.

std::vector<std::string>
mutationTargets()
{
    return {"syndrome-gfcore", "chien-gfcore", "aes-block-gfcore",
            "rs-encode-gfcore"};
}

Program
catalogProgram(const std::string &name)
{
    for (const KernelSource &k : kernelCatalog())
        if (k.name == name)
            return Assembler::assemble(k.source);
    ADD_FAILURE() << "no kernel named " << name;
    return {};
}

TEST(Mutation, GarbledHaltIsFlagged)
{
    for (const std::string &name : mutationTargets()) {
        Program prog = catalogProgram(name);
        ASSERT_TRUE(lintProgram(prog).clean());
        bool mutated = false;
        for (uint32_t &word : prog.code) {
            Instr in;
            if (tryDecode(word, in) && in.op == Op::kHalt) {
                word = 0xffffffffu;
                mutated = true;
                break;
            }
        }
        ASSERT_TRUE(mutated) << name;
        LintReport r = lintProgram(prog);
        EXPECT_TRUE(r.hasErrors()) << name << ":\n" << dumpReport(r);
        EXPECT_NE(findRule(r, LintRule::kUndecodable), nullptr) << name;
    }
}

TEST(Mutation, BranchRetargetedToSelfIsFlagged)
{
    for (const std::string &name : mutationTargets()) {
        Program prog = catalogProgram(name);
        bool mutated = false;
        for (uint32_t &word : prog.code) {
            Instr in;
            if (tryDecode(word, in) && isPcRelBranch(in.op) &&
                in.op != Op::kBl && in.op != Op::kB) {
                in.imm = -1; // target = itself
                word = encode(in);
                mutated = true;
                break;
            }
        }
        ASSERT_TRUE(mutated) << name;
        LintReport r = lintProgram(prog);
        EXPECT_NE(findRule(r, LintRule::kInfiniteLoop), nullptr)
            << name << ":\n" << dumpReport(r);
    }
}

TEST(Mutation, ZeroedConfigBlobIsFlaggedAndTraps)
{
    Program prog = catalogProgram("syndrome-gfcore");
    bool mutated = false;
    for (uint32_t word : prog.code) {
        Instr in;
        if (tryDecode(word, in) && in.op == Op::kGfCfg) {
            uint32_t off = static_cast<uint32_t>(in.imm) - prog.data_base;
            ASSERT_LE(off + 8, prog.data.size());
            for (unsigned b = 0; b < 8; ++b)
                prog.data[off + b] = 0;
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated);

    LintReport r = lintProgram(prog);
    EXPECT_NE(findRule(r, LintRule::kSuspectConfigBlob), nullptr)
        << dumpReport(r);

    // ...and the machine agrees: the gfcfg traps GfConfigCorrupt.
    Machine machine(prog, CoreKind::kGfProcessor);
    RunResult result = machine.runToHalt();
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.trap.kind, TrapKind::kGfConfigCorrupt);
}

TEST(Mutation, CorruptedPMatrixIsFlagged)
{
    // The acceptance scenario end to end: flip one bit of the packed
    // P matrix inside the guest's data image; the blob still parses
    // (valid m), but the classifier refuses to bless the matrix.
    Program prog = catalogProgram("syndrome-gfcore");
    bool mutated = false;
    for (uint32_t word : prog.code) {
        Instr in;
        if (tryDecode(word, in) && in.op == Op::kGfCfg) {
            uint32_t off = static_cast<uint32_t>(in.imm) - prog.data_base;
            prog.data[off + 2] ^= 0x04; // one bit of P column 2
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated);
    LintReport r = lintProgram(prog);
    EXPECT_NE(findRule(r, LintRule::kSuspectConfigBlob), nullptr)
        << dumpReport(r);
}

} // namespace
} // namespace gfp
