/**
 * @file
 * End-to-end randomized coding tests: RS(255,239,8) and BCH(31,11,5)
 * decode sweeps at 0..t injected errors plus beyond-capacity inputs,
 * driven through BOTH execution paths —
 *
 *  - the per-stage kernel path (one Machine per decoder kernel, the
 *    reference plumbing of tests/test_coding_kernels.cc), and
 *  - the batch execution engine (engine/batch_engine.h), each stage a
 *    batch over all trial words,
 *
 * asserting the two paths agree bit for bit with each other and with
 * the host reference codec.  Beyond-capacity words must come back
 * detected-uncorrectable: a decoder that silently mis-corrects is a
 * worse failure mode than one that reports defeat.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "coding/bch.h"
#include "coding/channel.h"
#include "coding/decoder_kernels.h"
#include "coding/rs.h"
#include "common/random.h"
#include "engine/batch_engine.h"
#include "kernels/batch_kernels.h"
#include "kernels/coding_kernels.h"
#include "sim/machine.h"

namespace gfp {
namespace {

bool
allZero(const std::vector<uint8_t> &v)
{
    for (uint8_t b : v)
        if (b)
            return false;
    return true;
}

/** Outcome of one decode attempt through the simulated kernels. */
struct KernelDecode
{
    bool ok = false;                ///< corrected to a verified codeword
    std::vector<uint8_t> codeword;  ///< the corrected word when ok
};

/**
 * Full RS decode through the four-kernel chain on @p machines
 * (synd, bma, chien, forney), with the standard verdict logic:
 * correctable iff the Chien root count matches the BMA degree and the
 * corrected word has all-zero syndromes.
 */
KernelDecode
rsKernelDecode(const GFField &f, unsigned t, Machine &synd_m,
               Machine &bma_m, Machine &chien_m, Machine &forney_m,
               const std::vector<uint8_t> &rx)
{
    KernelDecode out;
    synd_m.reset();
    synd_m.writeBytes("rxdata", rx);
    synd_m.runOk();
    auto synd = synd_m.readBytes("synd", 2 * t);
    if (allZero(synd)) {
        out.ok = true;
        out.codeword = rx;
        return out;
    }

    bma_m.reset();
    bma_m.writeBytes("synd", synd);
    bma_m.runOk();
    auto lambda = bma_m.readBytes("lambda", 12);
    uint32_t llen = bma_m.readWord("llen");

    chien_m.reset();
    chien_m.writeBytes("lambda", lambda);
    chien_m.runOk();
    uint32_t nloc = chien_m.readWord("nloc");
    auto locs = chien_m.readBytes("locs", 12);
    if (nloc != llen || llen > t)
        return out; // detected uncorrectable

    forney_m.reset();
    forney_m.writeBytes("synd", synd);
    forney_m.writeBytes("lambda", lambda);
    forney_m.writeBytes("locs", locs);
    forney_m.writeWord("nloc", nloc);
    forney_m.runOk();
    auto evals = forney_m.readBytes("evals", nloc);

    auto fixed = rx;
    for (uint32_t i = 0; i < nloc; ++i)
        fixed[locs[i]] ^= evals[i];
    std::vector<GFElem> fixed_sym(fixed.begin(), fixed.end());
    auto check = syndromes(f, fixed_sym, 2 * t);
    if (!std::all_of(check.begin(), check.end(),
                     [](GFElem s) { return s == 0; }))
        return out; // correction did not land on a codeword
    out.ok = true;
    out.codeword = fixed;
    return out;
}

TEST(CodingE2E, RsSweepKernelPathVsReference)
{
    GFField f(8);
    RSCode code(8, 8); // RS(255,239), t = 8
    const unsigned t = code.t();
    Rng rng(20260806);

    Machine synd_m(syndromeAsmGfcore(f, code.n(), 2 * t),
                   CoreKind::kGfProcessor);
    Machine bma_m(bmaAsmGfcore(f, 2 * t), CoreKind::kGfProcessor);
    Machine chien_m(chienAsmGfcore(f, code.n(), t),
                    CoreKind::kGfProcessor);
    Machine forney_m(forneyAsmGfcore(f, 2 * t), CoreKind::kGfProcessor);

    // 0..t errors decode to the transmitted word; t+2 and t+4 errors
    // must be *detected* as uncorrectable, never silently mis-corrected.
    for (unsigned errors : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 10u, 12u}) {
        std::vector<GFElem> info(code.k());
        for (auto &s : info)
            s = rng.nextByte();
        auto cw = code.encode(info);
        ExactErrorInjector inj(9000 + errors);
        auto rx_sym = inj.corruptSymbols(cw, errors, 8);
        std::vector<uint8_t> rx(rx_sym.begin(), rx_sym.end());

        auto kernel = rsKernelDecode(f, t, synd_m, bma_m, chien_m,
                                     forney_m, rx);
        auto ref = code.decode(rx_sym);
        ASSERT_EQ(kernel.ok, ref.ok) << "errors=" << errors;
        if (errors <= t) {
            ASSERT_TRUE(kernel.ok) << "errors=" << errors;
            EXPECT_EQ(std::vector<GFElem>(kernel.codeword.begin(),
                                          kernel.codeword.end()),
                      cw)
                << "errors=" << errors;
        } else {
            EXPECT_FALSE(kernel.ok)
                << "silent miscorrection at errors=" << errors;
        }
    }
}

TEST(CodingE2E, RsSweepBatchEngineMatchesKernelPath)
{
    GFField f(8);
    RSCode code(8, 8);
    const unsigned t = code.t();
    Rng rng(20260806); // same stream as the kernel-path sweep

    // The same trial words as above, now decoded stage-by-stage as
    // engine batches; every intermediate and the final verdict must be
    // bit-for-bit what the per-Machine chain produced.
    std::vector<std::vector<uint8_t>> words;
    std::vector<unsigned> weights{0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 12};
    std::vector<Job> synd_jobs;
    for (unsigned errors : weights) {
        std::vector<GFElem> info(code.k());
        for (auto &s : info)
            s = rng.nextByte();
        ExactErrorInjector inj(9000 + errors);
        auto rx = inj.corruptSymbols(code.encode(info), errors, 8);
        words.emplace_back(rx.begin(), rx.end());
        synd_jobs.push_back(syndromeJob(rx, 2 * t));
    }

    BatchEngine synd_eng(syndromeBatchProgram(f, code.n(), 2 * t));
    BatchEngine bma_eng(bmaBatchProgram(f, 2 * t));
    BatchEngine chien_eng(chienBatchProgram(f, code.n(), t));
    BatchEngine forney_eng(forneyBatchProgram(f, 2 * t));

    auto synd_res = synd_eng.run(synd_jobs);

    // Stage batches only carry words that still need the stage.
    std::vector<size_t> live;
    std::vector<Job> bma_jobs;
    for (size_t i = 0; i < words.size(); ++i) {
        ASSERT_TRUE(synd_res[i].ok());
        if (!allZero(synd_res[i].bytes("synd"))) {
            live.push_back(i);
            bma_jobs.push_back(bmaJob(synd_res[i].bytes("synd")));
        }
    }
    auto bma_res = bma_eng.run(bma_jobs);

    std::vector<Job> chien_jobs;
    for (size_t j = 0; j < live.size(); ++j) {
        ASSERT_TRUE(bma_res[j].ok());
        chien_jobs.push_back(chienJob(bma_res[j].bytes("lambda")));
    }
    auto chien_res = chien_eng.run(chien_jobs);

    std::vector<size_t> correctable;
    std::vector<Job> forney_jobs;
    for (size_t j = 0; j < live.size(); ++j) {
        ASSERT_TRUE(chien_res[j].ok());
        uint32_t llen = bma_res[j].word("llen");
        uint32_t nloc = chien_res[j].word("nloc");
        if (nloc == llen && llen <= t) {
            correctable.push_back(j);
            forney_jobs.push_back(forneyJob(synd_res[live[j]].bytes("synd"),
                                            bma_res[j].bytes("lambda"),
                                            chien_res[j].bytes("locs"),
                                            nloc));
        }
    }
    auto forney_res = forney_eng.run(forney_jobs);

    // Reassemble verdicts and compare against the per-Machine chain.
    Machine synd_m(syndromeAsmGfcore(f, code.n(), 2 * t),
                   CoreKind::kGfProcessor);
    Machine bma_m(bmaAsmGfcore(f, 2 * t), CoreKind::kGfProcessor);
    Machine chien_m(chienAsmGfcore(f, code.n(), t),
                    CoreKind::kGfProcessor);
    Machine forney_m(forneyAsmGfcore(f, 2 * t), CoreKind::kGfProcessor);

    for (size_t i = 0; i < words.size(); ++i) {
        auto kernel = rsKernelDecode(f, t, synd_m, bma_m, chien_m,
                                     forney_m, words[i]);

        // Engine-path verdict for word i.
        bool eng_ok = false;
        std::vector<uint8_t> eng_cw;
        auto it = std::find(live.begin(), live.end(), i);
        if (it == live.end()) {
            eng_ok = true; // all-zero syndromes
            eng_cw = words[i];
        } else {
            size_t j = static_cast<size_t>(it - live.begin());
            auto cit = std::find(correctable.begin(), correctable.end(), j);
            if (cit != correctable.end()) {
                size_t fj = static_cast<size_t>(cit - correctable.begin());
                ASSERT_TRUE(forney_res[fj].ok());
                uint32_t nloc = chien_res[j].word("nloc");
                const auto &locs = chien_res[j].bytes("locs");
                const auto &evals = forney_res[fj].bytes("evals");
                eng_cw = words[i];
                for (uint32_t k = 0; k < nloc; ++k)
                    eng_cw[locs[k]] ^= evals[k];
                std::vector<GFElem> sym(eng_cw.begin(), eng_cw.end());
                auto s2 = syndromes(f, sym, 2 * t);
                eng_ok = std::all_of(s2.begin(), s2.end(),
                                     [](GFElem s) { return s == 0; });
                if (!eng_ok)
                    eng_cw.clear();
            }
        }
        ASSERT_EQ(eng_ok, kernel.ok) << "word " << i;
        EXPECT_EQ(eng_cw, kernel.codeword) << "word " << i;
    }
}

TEST(CodingE2E, BchSweepKernelPathVsReference)
{
    // BCH(31,11,5) on GF(2^5): syndrome + BMA + Chien, then bit flips.
    GFField f(5);
    BCHCode code(5, 5);
    const unsigned t = code.t();
    Rng rng(31115);

    Machine synd_m(syndromeAsmGfcore(f, code.n(), 2 * t),
                   CoreKind::kGfProcessor);
    Machine bma_m(bmaAsmGfcore(f, 2 * t), CoreKind::kGfProcessor);
    Machine chien_m(chienAsmGfcore(f, code.n(), t),
                    CoreKind::kGfProcessor);

    for (unsigned errors : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 9u}) {
        std::vector<uint8_t> info(code.k());
        for (auto &b : info)
            b = static_cast<uint8_t>(rng.below(2));
        auto cw = code.encode(info);
        ExactErrorInjector inj(500 + errors);
        auto rx = inj.flipBits(cw, errors);

        // Kernel-path decode.
        bool kernel_ok = false;
        std::vector<uint8_t> kernel_cw;
        synd_m.reset();
        synd_m.writeBytes("rxdata", rx);
        synd_m.runOk();
        auto synd = synd_m.readBytes("synd", 2 * t);
        if (allZero(synd)) {
            kernel_ok = true;
            kernel_cw = rx;
        } else {
            bma_m.reset();
            bma_m.writeBytes("synd", synd);
            bma_m.runOk();
            uint32_t llen = bma_m.readWord("llen");
            chien_m.reset();
            chien_m.writeBytes("lambda", bma_m.readBytes("lambda", 12));
            chien_m.runOk();
            uint32_t nloc = chien_m.readWord("nloc");
            auto locs = chien_m.readBytes("locs", 12);
            if (nloc == llen && llen <= t) {
                auto fixed = rx;
                for (uint32_t i = 0; i < nloc; ++i)
                    fixed[locs[i]] ^= 1;
                if (code.isCodeword(fixed)) {
                    kernel_ok = true;
                    kernel_cw = fixed;
                }
            }
        }

        auto ref = code.decode(rx);
        ASSERT_EQ(kernel_ok, ref.ok) << "errors=" << errors;
        if (errors <= t) {
            ASSERT_TRUE(kernel_ok) << "errors=" << errors;
            EXPECT_EQ(kernel_cw, cw) << "errors=" << errors;
        } else {
            EXPECT_FALSE(kernel_ok)
                << "silent miscorrection at errors=" << errors;
        }
    }
}

TEST(CodingE2E, BchBatchEngineParityWithSerial)
{
    // The BCH syndrome stage as one engine batch across a spread of
    // error weights: run() and runSerial() must agree bit for bit, and
    // both must agree with the reference syndromes.
    GFField f(5);
    BCHCode code(5, 5);
    Rng rng(777);

    std::vector<Job> jobs;
    std::vector<std::vector<uint8_t>> words;
    for (unsigned trial = 0; trial < 24; ++trial) {
        std::vector<uint8_t> info(code.k());
        for (auto &b : info)
            b = static_cast<uint8_t>(rng.below(2));
        ExactErrorInjector inj(trial);
        auto rx = inj.flipBits(code.encode(info), trial % 8);
        words.push_back(rx);
        jobs.push_back(syndromeJob(
            std::vector<GFElem>(rx.begin(), rx.end()), 2 * code.t()));
    }

    BatchEngine eng(syndromeBatchProgram(f, code.n(), 2 * code.t()));
    auto par = eng.run(jobs);
    auto ser = eng.runSerial(jobs);
    ASSERT_EQ(par.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(par[i].ok()) << i;
        EXPECT_EQ(par[i].outputs, ser[i].outputs) << i;
        std::vector<GFElem> sym(words[i].begin(), words[i].end());
        auto ref = syndromes(f, sym, 2 * code.t());
        EXPECT_EQ(par[i].bytes("synd"),
                  std::vector<uint8_t>(ref.begin(), ref.end()))
            << i;
    }
}

} // namespace
} // namespace gfp
