/**
 * @file
 * Certificate emitter tests (analysis/certify.h): dynamic WCET
 * soundness — every catalog kernel's measured instruction, cycle, and
 * GFAU-cycle counts must sit under its certified bounds in all three
 * dispatch modes — the trap-freedom floor over the catalog, watchdog
 * wiring, a mutation check (loosening a loop guard strictly inflates
 * the bound), config certificates, and JSON / SARIF rendering smoke.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/certify.h"
#include "analysis/lint.h"
#include "analysis/report_format.h"
#include "isa/assembler.h"
#include "kernels/kernel_catalog.h"
#include "sim/machine.h"

namespace gfp {
namespace {

enum class Dispatch { kFused, kPlain, kNoPredecode };

const char *
dispatchName(Dispatch d)
{
    switch (d) {
    case Dispatch::kFused: return "fused";
    case Dispatch::kPlain: return "plain";
    case Dispatch::kNoPredecode: return "nopredecode";
    }
    return "?";
}

struct MeasuredRun
{
    CycleStats stats;
    RunResult run;
};

MeasuredRun
measuredRun(const std::string &source, CoreKind kind, Dispatch d)
{
    MeasuredRun out;
    Machine m(source, kind);
    if (d == Dispatch::kPlain)
        m.core().setDispatchMode(DispatchMode::kPlain);
    if (d == Dispatch::kNoPredecode)
        m.core().disablePredecode();
    out.run = m.runToHalt(500'000'000);
    out.stats = m.core().stats();
    return out;
}

Program
assembleOrDie(const std::string &src)
{
    Program prog;
    AsmDiagnostic diag;
    if (!Assembler::tryAssemble(src, prog, diag))
        ADD_FAILURE() << "assembly failed: " << diag.message;
    return prog;
}

/** Every catalog kernel whose cost certificate claims a bound: the
 *  measured run must land at or under the bound — instructions,
 *  cycles, and the GFAU-active cycle partition — under every dispatch
 *  mode.  This is the dynamic validation the certificates ship with. */
TEST(Certify, CatalogWcetBoundsSoundInAllDispatchModes)
{
    unsigned bounded = 0;
    for (const auto &k : kernelCatalog()) {
        Program prog = assembleOrDie(k.source);
        ProgramCertificate cert = certifyProgram(prog);
        if (!cert.cost.bounded)
            continue;
        ++bounded;
        CoreKind kind = k.name.find("baseline") != std::string::npos
                            ? CoreKind::kBaseline
                            : CoreKind::kGfProcessor;
        for (Dispatch d : {Dispatch::kFused, Dispatch::kPlain,
                           Dispatch::kNoPredecode}) {
            SCOPED_TRACE(k.name + " / " + dispatchName(d));
            MeasuredRun r = measuredRun(k.source, kind, d);
            EXPECT_TRUE(r.run.halted);
            EXPECT_LE(r.stats.instrs, cert.cost.instr_bound);
            EXPECT_LE(r.stats.cycles, cert.cost.cycle_bound);
            uint64_t gf = r.stats.gf_simd_cycles + r.stats.gf32_cycles +
                          r.stats.gfcfg_cycles;
            EXPECT_LE(gf, cert.cost.gf_cycle_bound);
        }
    }
    // The catalog must not silently lose WCET coverage.
    EXPECT_GE(bounded, 30u);
}

/** Trap-freedom floor: at least 30 of the 36 catalog kernels carry a
 *  whole-program trap-freedom certificate, and every decline explains
 *  itself through caveats.  Certified-trap-free kernels must also
 *  actually run clean. */
TEST(Certify, CatalogTrapFreedomFloor)
{
    unsigned total = 0, trap_free = 0;
    for (const auto &k : kernelCatalog()) {
        SCOPED_TRACE(k.name);
        ++total;
        Program prog = assembleOrDie(k.source);
        ProgramCertificate cert = certifyProgram(prog);
        if (cert.trap_free) {
            ++trap_free;
            CoreKind kind = k.name.find("baseline") != std::string::npos
                                ? CoreKind::kBaseline
                                : CoreKind::kGfProcessor;
            MeasuredRun r = measuredRun(k.source, kind, Dispatch::kFused);
            EXPECT_TRUE(r.run.ok());
        } else {
            EXPECT_FALSE(cert.caveats.empty())
                << "undocumented trap-freedom decline";
        }
        // Bounded energy numbers come with the cycle bound.
        if (cert.cost.bounded) {
            EXPECT_GT(cert.cost.energy_nominal_pj, 0.0);
            EXPECT_GT(cert.cost.energy_07v_pj, 0.0);
            EXPECT_LT(cert.cost.energy_07v_pj, cert.cost.energy_nominal_pj);
        }
    }
    EXPECT_GE(total, 36u);
    EXPECT_GE(trap_free, 30u);
}

/** Mutation check on the bound itself: loosening the loop guard must
 *  strictly inflate the certified instruction and cycle bounds. */
TEST(Certify, LoosenedLoopGuardInflatesBound)
{
    auto certify = [&](unsigned trips) {
        std::string src = "    movi r8, #0\n"
                          "loop:\n"
                          "    addi r8, r8, #1\n"
                          "    cmpi r8, #" + std::to_string(trips) + "\n"
                          "    blo  loop\n"
                          "    halt\n";
        return certifyProgram(assembleOrDie(src));
    };
    ProgramCertificate tight = certify(8);
    ProgramCertificate loose = certify(16);
    ASSERT_TRUE(tight.cost.bounded) << tight.cost.reason;
    ASSERT_TRUE(loose.cost.bounded) << loose.cost.reason;
    EXPECT_GT(loose.cost.instr_bound, tight.cost.instr_bound);
    EXPECT_GT(loose.cost.cycle_bound, tight.cost.cycle_bound);
    EXPECT_GT(loose.cost.energy_nominal_pj, tight.cost.energy_nominal_pj);
}

/** A statically unbounded loop gets no cost certificate and therefore
 *  no trap-freedom claim (the watchdog can't be discharged). */
TEST(Certify, UnboundedLoopDeclined)
{
    Program prog = assembleOrDie(R"(
    la   r1, n
    ldr  r8, [r1, #0]
loop:
    subi r8, r8, #1
    cmpi r8, #0
    bne  loop
    halt
.data
.align 4
n:
    .space 4
)");
    ProgramCertificate cert = certifyProgram(prog);
    EXPECT_FALSE(cert.cost.bounded);
    EXPECT_FALSE(cert.cost.within_watchdog);
    EXPECT_FALSE(cert.trap_free);
    EXPECT_FALSE(cert.cost.reason.empty());
}

/** A bound that exceeds the configured watchdog voids trap freedom
 *  even though every block is individually trap-free. */
TEST(Certify, WatchdogCapsTrapFreedom)
{
    Program prog = assembleOrDie(R"(
    movi r8, #0
loop:
    addi r8, r8, #1
    cmpi r8, #100
    blo  loop
    halt
)");
    ProgramCertificate ok = certifyProgram(prog);
    EXPECT_TRUE(ok.cost.bounded);
    EXPECT_TRUE(ok.cost.within_watchdog);
    EXPECT_TRUE(ok.trap_free);

    CertifyOptions tight;
    tight.watchdog_max_instrs = 10;
    ProgramCertificate capped = certifyProgram(prog, tight);
    EXPECT_TRUE(capped.cost.bounded);
    EXPECT_FALSE(capped.cost.within_watchdog);
    EXPECT_FALSE(capped.trap_free);
    EXPECT_EQ(capped.cost.watchdog, 10u);
}

/** GF kernels carry config certificates; a kernel with no GF ops
 *  carries none. */
TEST(Certify, ConfigCertificatesCoverGfKernels)
{
    unsigned with_configs = 0;
    for (const auto &k : kernelCatalog()) {
        Program prog = assembleOrDie(k.source);
        ProgramCertificate cert = certifyProgram(prog);
        if (!cert.configs.empty()) {
            ++with_configs;
            EXPECT_TRUE(cert.has_gf_ops) << k.name;
            if (cert.trap_free)
                for (const auto &c : cert.configs)
                    EXPECT_TRUE(c.trapFree()) << k.name;
        }
    }
    EXPECT_GT(with_configs, 0u);
}

/** JSON / SARIF rendering smoke: structurally balanced output that
 *  carries the program name, the WCET numbers, and the SARIF schema
 *  version. */
TEST(Certify, ReportRenderingSmoke)
{
    Program prog = assembleOrDie(R"(
    movi r8, #0
loop:
    addi r8, r8, #1
    cmpi r8, #12
    blo  loop
    halt
)");
    ProgramReport rep;
    rep.name = "unit:loop12";
    rep.lint = lintProgram(prog);
    rep.certified = true;
    rep.cert = certifyProgram(prog);
    rep.prog = &prog;
    std::vector<ProgramReport> reports{rep};

    auto balanced = [](const std::string &s) {
        long depth = 0;
        for (char c : s) {
            if (c == '{' || c == '[') ++depth;
            if (c == '}' || c == ']') --depth;
            if (depth < 0) return false;
        }
        return depth == 0;
    };

    std::string json = renderJson(reports);
    EXPECT_TRUE(balanced(json));
    EXPECT_NE(json.find("unit:loop12"), std::string::npos);
    EXPECT_NE(json.find("wcet"), std::string::npos);

    std::string sarif = renderSarif(reports);
    EXPECT_TRUE(balanced(sarif));
    EXPECT_NE(sarif.find("2.1.0"), std::string::npos);
    EXPECT_NE(sarif.find("unit:loop12"), std::string::npos);

    EXPECT_NE(jsonEscape("a\"b\\c\n"), "a\"b\\c\n");
}

} // namespace
} // namespace gfp
