/**
 * @file
 * Elliptic-curve tests: NIST curve constants (base point on curve,
 * order annihilates the base point), affine group laws, López-Dahab
 * projective arithmetic vs. the affine reference, the Sec. 3.3.4
 * evaluation scalar, field-operation budgets, and ECDH.
 */

#include <gtest/gtest.h>

#include "crypto/ecc.h"

namespace gfp {
namespace {

class NistCurves : public ::testing::TestWithParam<const char *>
{
};

TEST_P(NistCurves, BasePointOnCurve)
{
    EllipticCurve c = EllipticCurve::nist(GetParam());
    EXPECT_TRUE(c.isOnCurve(c.basePoint()));
}

TEST_P(NistCurves, OrderAnnihilatesBasePoint)
{
    EllipticCurve c = EllipticCurve::nist(GetParam());
    EcPoint z = c.scalarMult(c.order(), c.basePoint());
    EXPECT_TRUE(z.infinity);
}

TEST_P(NistCurves, GroupLawBasics)
{
    EllipticCurve c = EllipticCurve::nist(GetParam());
    const EcPoint &g = c.basePoint();

    EcPoint g2 = c.doubleAffine(g);
    EXPECT_TRUE(c.isOnCurve(g2));
    EXPECT_EQ(c.addAffine(g, g), g2);

    EcPoint g3 = c.addAffine(g2, g);
    EXPECT_TRUE(c.isOnCurve(g3));
    EXPECT_EQ(c.addAffine(g, g2), g3); // commutative

    // Identity and inverse.
    EXPECT_EQ(c.addAffine(g, EcPoint::infinityPoint()), g);
    EXPECT_TRUE(c.addAffine(g, c.negate(g)).infinity);
    EXPECT_TRUE(c.isOnCurve(c.negate(g)));
}

TEST_P(NistCurves, ProjectiveMatchesAffine)
{
    EllipticCurve c = EllipticCurve::nist(GetParam());
    const EcPoint &g = c.basePoint();

    // Doubling chain.
    LdPoint p = c.toProjective(g);
    EcPoint aff = g;
    for (int i = 0; i < 6; ++i) {
        p = c.doubleLd(p);
        aff = c.doubleAffine(aff);
        EXPECT_EQ(c.toAffine(p), aff) << "doubling step " << i;
    }
    // Mixed addition.
    p = c.addMixed(p, g);
    aff = c.addAffine(aff, g);
    EXPECT_EQ(c.toAffine(p), aff);
}

TEST_P(NistCurves, ScalarMultLdMatchesAffine)
{
    EllipticCurve c = EllipticCurve::nist(GetParam());
    const EcPoint &g = c.basePoint();
    for (uint64_t k : {1ull, 2ull, 3ull, 7ull, 100ull, 0xdeadbeefull}) {
        EXPECT_EQ(c.scalarMult(Gf2x(k), g), c.scalarMultAffine(Gf2x(k), g))
            << "k=" << k;
    }
    Gf2x big = Gf2x::random(113, 5);
    EXPECT_EQ(c.scalarMult(big, g), c.scalarMultAffine(big, g));
}

TEST_P(NistCurves, ScalarMultWindowMatchesReference)
{
    EllipticCurve c = EllipticCurve::nist(GetParam());
    const EcPoint &g = c.basePoint();
    // Short scalars (fall back to double-and-add) and full-size ones
    // (table path), across several window widths.
    for (uint64_t k : {0ull, 1ull, 2ull, 3ull, 15ull, 16ull, 17ull,
                       0xdeadbeefull}) {
        EXPECT_EQ(c.scalarMultWindow(Gf2x(k), g), c.scalarMult(Gf2x(k), g))
            << "k=" << k;
    }
    for (uint64_t seed = 0; seed < 4; ++seed) {
        Gf2x k = Gf2x::random(c.field().m(), seed + 9);
        EcPoint ref = c.scalarMult(k, g);
        for (unsigned w : {2u, 4u, 5u}) {
            EXPECT_EQ(c.scalarMultWindow(k, g, w), ref)
                << "seed=" << seed << " width=" << w;
        }
    }
    EXPECT_TRUE(c.scalarMultWindow(Gf2x(), g).infinity);
    EXPECT_TRUE(
        c.scalarMultWindow(Gf2x(5), EcPoint::infinityPoint()).infinity);
}

TEST(Ecc, BatchToAffineMatchesPerPointConversion)
{
    EllipticCurve c = EllipticCurve::nist("K-233");
    const EcPoint &g = c.basePoint();
    std::vector<LdPoint> pts;
    LdPoint p = c.toProjective(g);
    for (int i = 0; i < 8; ++i) {
        p = c.doubleLd(p);
        pts.push_back(p);
        p = c.addMixed(p, g);
        pts.push_back(p);
    }
    pts.push_back(LdPoint{Gf2x(uint64_t{1}), Gf2x(), Gf2x(), true});
    pts.push_back(c.toProjective(g));

    c.resetOpCount();
    std::vector<EcPoint> batch = c.batchToAffine(pts);
    EXPECT_EQ(c.opCount().inv, 1u); // the whole batch shares one inverse

    ASSERT_EQ(batch.size(), pts.size());
    for (size_t i = 0; i < pts.size(); ++i)
        EXPECT_EQ(batch[i], c.toAffine(pts[i])) << "i=" << i;
}

TEST(Ecc, WindowUsesOneInversionPerTableAndResult)
{
    EllipticCurve c = EllipticCurve::nist("K-233");
    Gf2x k = Gf2x::random(233, 77);
    c.resetOpCount();
    c.scalarMultWindow(k, c.basePoint());
    // One shared inversion for the precomputed table, one for the final
    // projective-to-affine conversion.
    EXPECT_EQ(c.opCount().inv, 2u);
}

INSTANTIATE_TEST_SUITE_P(All, NistCurves,
                         ::testing::Values("K-163", "B-163", "K-233",
                                           "B-233", "K-283", "B-283"),
                         [](const auto &info) {
                             std::string n = info.param;
                             n.erase(n.find('-'), 1);
                             return n;
                         });

TEST(Ecc, ScalarMultSmallMultiples)
{
    EllipticCurve c = EllipticCurve::nist("K-233");
    const EcPoint &g = c.basePoint();
    // kG by repeated addition vs. scalar mult.
    EcPoint acc = EcPoint::infinityPoint();
    for (uint64_t k = 1; k <= 20; ++k) {
        acc = c.addAffine(acc, g);
        EXPECT_EQ(c.scalarMult(Gf2x(k), g), acc) << "k=" << k;
    }
}

TEST(Ecc, ScalarMultDistributes)
{
    // (k1 + k2) G == k1 G + k2 G (integer addition of scalars).
    EllipticCurve c = EllipticCurve::nist("K-233");
    const EcPoint &g = c.basePoint();
    uint64_t k1 = 123456789, k2 = 987654321;
    EcPoint lhs = c.scalarMult(Gf2x(k1 + k2), g);
    EcPoint rhs = c.addAffine(c.scalarMult(Gf2x(k1), g),
                              c.scalarMult(Gf2x(k2), g));
    EXPECT_EQ(lhs, rhs);
}

TEST(Ecc, ZeroAndInfinityCases)
{
    EllipticCurve c = EllipticCurve::nist("K-233");
    EXPECT_TRUE(c.scalarMult(Gf2x(), c.basePoint()).infinity);
    EXPECT_TRUE(c.scalarMult(Gf2x(5), EcPoint::infinityPoint()).infinity);
    EXPECT_TRUE(c.isOnCurve(EcPoint::infinityPoint()));
}

TEST(Ecc, EvaluationScalarShape)
{
    Gf2x k = EllipticCurve::evaluationScalar(1);
    EXPECT_EQ(k.degree(), 112); // 113-bit scalar, top bit set
    unsigned ones = 0;
    for (unsigned i = 0; i < 112; ++i)
        ones += k.getBit(i);
    EXPECT_EQ(ones, 56u); // 56 additions during double-and-add
}

TEST(Ecc, PointOpFieldBudgets)
{
    // Table 9 rests on these budgets: LD doubling needs 4 field
    // multiplies (one by the curve constant b) + 5 squarings; mixed
    // addition 8 multiplies + 5 squarings; neither needs an inversion.
    EllipticCurve c = EllipticCurve::nist("B-233"); // a = 1, random b
    LdPoint p = c.toProjective(c.basePoint());
    p = c.doubleLd(p); // move off Z == 1

    c.resetOpCount();
    c.doubleLd(p);
    EXPECT_EQ(c.opCount().mul, 4u);
    EXPECT_EQ(c.opCount().sqr, 5u);
    EXPECT_EQ(c.opCount().inv, 0u);

    c.resetOpCount();
    c.addMixed(p, c.basePoint());
    EXPECT_EQ(c.opCount().mul, 8u);
    EXPECT_EQ(c.opCount().sqr, 5u);
    EXPECT_EQ(c.opCount().inv, 0u);

    // Koblitz (a = 0, b = 1) drops the constant multiply in doubling.
    EllipticCurve k = EllipticCurve::nist("K-233");
    LdPoint kp = k.toProjective(k.basePoint());
    kp = k.doubleLd(kp);
    k.resetOpCount();
    k.doubleLd(kp);
    EXPECT_EQ(k.opCount().mul, 3u);
    EXPECT_EQ(k.opCount().sqr, 5u);

    // Conversion back to affine costs exactly one inversion.
    c.resetOpCount();
    c.toAffine(p);
    EXPECT_EQ(c.opCount().inv, 1u);
}

TEST(Ecc, EvaluationWorkloadOpCount)
{
    // 112 doublings + 56 additions + 1 final conversion: the op counts
    // scale exactly with the scalar shape.
    EllipticCurve c = EllipticCurve::nist("K-233");
    Gf2x k = EllipticCurve::evaluationScalar(3);
    c.resetOpCount();
    c.scalarMult(k, c.basePoint());
    // K-233: 112 doubles * 3 mults + 56 adds * 8 mults + 2 in the
    // final projective-to-affine conversion.
    EXPECT_EQ(c.opCount().mul, 112u * 3 + 56u * 8 + 2);
    EXPECT_EQ(c.opCount().inv, 1u);
}

TEST(Ecdh, SharedSecretsAgree)
{
    for (const char *name : {"K-233", "B-163"}) {
        EllipticCurve c = EllipticCurve::nist(name);
        Ecdh ecdh(c);
        auto alice = ecdh.generate(1001);
        auto bob = ecdh.generate(2002);
        EXPECT_TRUE(c.isOnCurve(alice.public_point));
        EXPECT_TRUE(c.isOnCurve(bob.public_point));
        auto s1 = ecdh.sharedSecret(alice.private_scalar, bob.public_point);
        auto s2 = ecdh.sharedSecret(bob.private_scalar, alice.public_point);
        ASSERT_TRUE(s1.has_value()) << name;
        ASSERT_TRUE(s2.has_value()) << name;
        EXPECT_EQ(*s1, *s2) << name;
        EXPECT_FALSE(s1->isZero());
    }
}

TEST(Ecdh, InfinityPublicPointIsRejectedNotFatal)
{
    // A peer supplying the point at infinity (or any input whose
    // scalar multiple lands there) is bad *input*, not host misuse:
    // the exchange must fail gracefully.
    EllipticCurve c = EllipticCurve::nist("K-233");
    Ecdh ecdh(c);
    auto alice = ecdh.generate(1001);
    auto s = ecdh.sharedSecret(alice.private_scalar,
                               EcPoint::infinityPoint());
    EXPECT_FALSE(s.has_value());
}

TEST(Ecdh, DifferentSeedsDifferentKeys)
{
    EllipticCurve c = EllipticCurve::nist("K-233");
    Ecdh ecdh(c);
    auto a = ecdh.generate(1);
    auto b = ecdh.generate(2);
    EXPECT_FALSE(a.public_point == b.public_point);
}

TEST(Ecc, RejectsSingularCurve)
{
    EXPECT_DEATH(EllipticCurve(BinaryField::nist("233"), Gf2x(1), Gf2x()),
                 "b != 0");
}

} // namespace
} // namespace gfp
