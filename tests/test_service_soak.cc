/**
 * @file
 * Bounded (~10s) service soak: a mixed-class closed-loop client keeps
 * the server's streaming batches full while every OK response is
 * verified bit-for-bit against the host reference codecs.  Carries the
 * `soak` ctest label (run with `ctest -L soak`, skip with `-LE soak`).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <unistd.h>

#include "coding/bch.h"
#include "coding/channel.h"
#include "coding/rs.h"
#include "common/random.h"
#include "common/strutil.h"
#include "crypto/aes.h"
#include "service/client.h"
#include "service/server.h"

namespace gfp::service {
namespace {

struct Prepared
{
    RequestClass cls;
    std::vector<uint8_t> body;
    std::vector<uint8_t> expected; ///< expected OK response body
};

/** A small pool of mixed-class requests with host-computed expected
 *  responses (decode classes at varying error weight, AES keystream). */
std::vector<Prepared>
buildPool(uint64_t seed)
{
    std::vector<Prepared> pool;
    Rng rng(seed);
    RSCode rs(8, 8);
    BCHCode bch(5, 5);

    for (unsigned i = 0; i < 24; ++i) {
        Prepared p;
        switch (i % 3) {
        case 0: {
            p.cls = RequestClass::kRsDecode;
            std::vector<GFElem> info(rs.k());
            for (auto &s : info)
                s = rng.nextByte();
            auto cw = rs.encode(info);
            ExactErrorInjector inj(seed + i);
            auto rx = inj.corruptSymbols(cw, i % (rs.t() + 1), 8);
            p.body = rsDecodeBody(
                std::vector<uint8_t>(rx.begin(), rx.end()));
            p.expected.push_back(1);
            p.expected.insert(p.expected.end(), cw.begin(), cw.end());
            break;
        }
        case 1: {
            p.cls = RequestClass::kBchDecode;
            std::vector<uint8_t> info(bch.k());
            for (auto &b : info)
                b = static_cast<uint8_t>(rng.below(2));
            auto cw = bch.encode(info);
            ExactErrorInjector inj(seed + i);
            auto rx = inj.flipBits(cw, i % (bch.t() + 1));
            p.body = bchDecodeBody(rx);
            p.expected.push_back(1);
            p.expected.insert(p.expected.end(), cw.begin(), cw.end());
            break;
        }
        default: {
            p.cls = RequestClass::kAesCtrBlock;
            std::vector<uint8_t> key(16);
            for (auto &b : key)
                b = rng.nextByte();
            Aes aes(key);
            std::vector<uint8_t> rkeys;
            for (uint32_t word : aes.roundKeys())
                for (int b = 3; b >= 0; --b)
                    rkeys.push_back(
                        static_cast<uint8_t>(word >> (8 * b)));
            AesBlock counter;
            for (auto &b : counter)
                b = rng.nextByte();
            p.body = aesCtrBlockBody(
                rkeys, std::vector<uint8_t>(counter.begin(),
                                            counter.end()));
            AesBlock ks = aes.encryptBlock(counter);
            p.expected.assign(ks.begin(), ks.end());
            break;
        }
        }
        pool.push_back(std::move(p));
    }
    return pool;
}

TEST(ServiceSoak, MixedClosedLoopVerifiedBitForBit)
{
    Server::Options opts;
    opts.unix_path = strprintf("gfp_soak_%d.sock",
                               static_cast<int>(getpid()));
    opts.engine.threads = 1;
    opts.quiet = true;
    Server server(std::move(opts));
    server.start();

    Client client;
    ASSERT_TRUE(client.connectUnix(
        strprintf("gfp_soak_%d.sock", static_cast<int>(getpid()))));

    auto pool = buildPool(2026);
    constexpr unsigned kWindow = 32;
    std::map<uint64_t, const Prepared *> outstanding;
    uint64_t next_id = 0, completed = 0, verify_failures = 0;

    auto send_one = [&] {
        const Prepared &p = pool[next_id % pool.size()];
        RequestHeader h;
        h.cls = p.cls;
        h.id = next_id;
        outstanding[next_id] = &p;
        ++next_id;
        client.queueRequest(h, p.body);
    };

    for (unsigned i = 0; i < kWindow; ++i)
        send_one();
    ASSERT_TRUE(client.flush());

    const auto t0 = std::chrono::steady_clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    Response resp;
    while (elapsed() < 8.0) {
        ASSERT_TRUE(client.recvResponse(&resp, 30000));
        auto it = outstanding.find(resp.header.id);
        ASSERT_NE(it, outstanding.end())
            << "response for an id never sent (or sent twice): "
            << resp.header.id;
        ASSERT_EQ(resp.header.status, Status::kOk)
            << statusName(resp.header.status);
        if (resp.body != it->second->expected)
            ++verify_failures;
        outstanding.erase(it);
        ++completed;
        send_one();
        ASSERT_TRUE(client.flush());
    }

    // Drain the window.
    while (!outstanding.empty()) {
        ASSERT_TRUE(client.recvResponse(&resp, 30000));
        outstanding.erase(resp.header.id);
        ++completed;
    }

    EXPECT_EQ(verify_failures, 0u);
    EXPECT_GT(completed, 1000u)
        << "soak completed implausibly few requests";

    client.close();
    server.drain();
    EXPECT_TRUE(server.countersConsistent());
}

} // namespace
} // namespace gfp::service
