/**
 * @file
 * Validation of the RS encoder assembly kernels and of the SIMD
 * lane-width ablation variant of the syndrome kernel.
 */

#include <gtest/gtest.h>

#include "coding/channel.h"
#include "coding/decoder_kernels.h"
#include "coding/rs.h"
#include "common/random.h"
#include "kernels/coding_kernels.h"
#include "sim/machine.h"

namespace gfp {
namespace {

class RsEncoderKernel
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(RsEncoderKernel, MatchesReferenceEncoder)
{
    auto [m, t] = GetParam();
    RSCode code(m, t);
    Rng rng(m * 13 + t);
    std::vector<GFElem> info(code.k());
    for (auto &sym : info)
        sym = rng.below(code.field().order());
    auto expect = code.encode(info);
    std::vector<uint8_t> info_bytes(info.begin(), info.end());
    std::vector<uint8_t> expect_bytes(expect.begin(), expect.end());

    for (int variant = 0; variant < 3; ++variant) {
        std::string src;
        CoreKind kind;
        switch (variant) {
          case 0:
            src = rsEncodeAsmBaseline(code.field(), t,
                                      BaselineFlavor::kHandOptimized);
            kind = CoreKind::kBaseline;
            break;
          case 1:
            src = rsEncodeAsmBaseline(code.field(), t,
                                      BaselineFlavor::kCompiled);
            kind = CoreKind::kBaseline;
            break;
          default:
            src = rsEncodeAsmGfcore(code.field(), t);
            kind = CoreKind::kGfProcessor;
        }
        Machine mach(src, kind);
        mach.writeBytes("infodata", info_bytes);
        mach.runOk();
        EXPECT_EQ(mach.readBytes("cwdata", code.n()), expect_bytes)
            << "variant=" << variant;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Codes, RsEncoderKernel,
    ::testing::Values(std::tuple{8u, 8u}, std::tuple{8u, 4u},
                      std::tuple{8u, 2u}, std::tuple{5u, 2u}),
    [](const auto &info) {
        return "m" + std::to_string(std::get<0>(info.param)) + "_t" +
               std::to_string(std::get<1>(info.param));
    });

TEST(RsEncoderKernel, GfCoreIsFaster)
{
    GFField f(8);
    RSCode code(8, 8);
    Rng rng(3);
    std::vector<uint8_t> info(code.k());
    for (auto &b : info)
        b = rng.nextByte();

    Machine base(rsEncodeAsmBaseline(f, 8), CoreKind::kBaseline);
    base.writeBytes("infodata", info);
    uint64_t bc = base.runOk().cycles;

    Machine gf(rsEncodeAsmGfcore(f, 8), CoreKind::kGfProcessor);
    gf.writeBytes("infodata", info);
    uint64_t gc = gf.runOk().cycles;

    EXPECT_GT(bc, 5 * gc);
}

TEST(RsEncoderKernel, EncodedWordHasZeroSyndromes)
{
    GFField f(8);
    Machine m(rsEncodeAsmGfcore(f, 8), CoreKind::kGfProcessor);
    Rng rng(21);
    std::vector<uint8_t> info(239);
    for (auto &b : info)
        b = rng.nextByte();
    m.writeBytes("infodata", info);
    m.runOk();
    auto cw = m.readBytes("cwdata", 255);
    std::vector<GFElem> symbols(cw.begin(), cw.end());
    for (GFElem s : syndromes(f, symbols, 16))
        EXPECT_EQ(s, 0);
}

class LaneAblation : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LaneAblation, CorrectAtEveryWidth)
{
    unsigned lanes = GetParam();
    GFField f(8);
    RSCode code(8, 8);
    Rng rng(7);
    std::vector<GFElem> info(code.k());
    for (auto &sym : info)
        sym = rng.nextByte();
    ExactErrorInjector inj(8);
    auto rx = inj.corruptSymbols(code.encode(info), 8, 8);
    auto expect = syndromes(f, rx, 16);

    Machine m(syndromeAsmGfcoreLanes(f, 255, 16, lanes),
              CoreKind::kGfProcessor);
    m.writeBytes("rxdata",
                 std::vector<uint8_t>(rx.begin(), rx.end()));
    m.runOk();
    EXPECT_EQ(m.readBytes("synd", 16),
              std::vector<uint8_t>(expect.begin(), expect.end()));
}

INSTANTIATE_TEST_SUITE_P(Widths, LaneAblation,
                         ::testing::Values(1u, 2u, 4u),
                         [](const auto &info) {
                             return "lanes" + std::to_string(info.param);
                         });

TEST(LaneAblation, ThroughputScalesWithWidth)
{
    GFField f(8);
    std::vector<uint8_t> rx(255, 0x5a);
    uint64_t cycles[3];
    unsigned widths[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
        Machine m(syndromeAsmGfcoreLanes(f, 255, 16, widths[i]),
                  CoreKind::kGfProcessor);
        m.writeBytes("rxdata", rx);
        cycles[i] = m.runOk().cycles;
    }
    // Close to linear scaling up to the 4-way width.
    EXPECT_GT(cycles[0], 18 * 255 / 10 * 4); // sanity floor
    EXPECT_GT(cycles[0], cycles[1] * 17 / 10);
    EXPECT_GT(cycles[1], cycles[2] * 17 / 10);
}

} // namespace
} // namespace gfp
