/**
 * @file
 * Observability layer tests: per-PC profiler attribution invariants
 * across all three dispatch modes (fused, plain, no-predecode) over
 * the full kernel catalog, attribution under traps and injected SEUs,
 * the CycleStats class-partition contract, Chrome trace_event export
 * and its structural validator, engine run metrics, and the 28nm
 * energy attribution constants.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "coding/channel.h"
#include "coding/rs.h"
#include "common/random.h"
#include "common/trace_event.h"
#include "engine/batch_engine.h"
#include "engine/metrics.h"
#include "hwmodel/energy_model.h"
#include "kernels/batch_kernels.h"
#include "kernels/coding_kernels.h"
#include "kernels/kernel_catalog.h"
#include "sim/fault_injector.h"
#include "sim/machine.h"
#include "sim/profiler.h"
#include "sim/tracer.h"

namespace gfp {
namespace {

enum class Dispatch { kFused, kPlain, kNoPredecode };

std::vector<uint8_t>
toBytes(const std::vector<GFElem> &symbols)
{
    return std::vector<uint8_t>(symbols.begin(), symbols.end());
}

/** A noisy RS(255,239) received word for the syndrome kernel. */
std::vector<uint8_t>
noisyRxBytes(uint64_t seed)
{
    RSCode code(8, 8);
    Rng rng(seed);
    std::vector<GFElem> info(code.k());
    for (auto &s : info)
        s = rng.nextByte();
    ExactErrorInjector inj(seed);
    return toBytes(inj.corruptSymbols(code.encode(info), 4, 8));
}

const char *
dispatchName(Dispatch d)
{
    switch (d) {
    case Dispatch::kFused: return "fused";
    case Dispatch::kPlain: return "plain";
    case Dispatch::kNoPredecode: return "nopredecode";
    }
    return "?";
}

/** Run @p source under @p d with an attached profile; the machine is
 *  returned so callers can also inspect stats/traps. */
struct ProfiledRun
{
    PcProfile profile;
    CycleStats stats;
    RunResult run;
};

ProfiledRun
profiledRun(const std::string &source, CoreKind kind, Dispatch d)
{
    ProfiledRun out;
    Machine m(source, kind);
    if (d == Dispatch::kPlain)
        m.core().setDispatchMode(DispatchMode::kPlain);
    if (d == Dispatch::kNoPredecode)
        m.core().disablePredecode();
    out.profile.configure(
        static_cast<uint32_t>(4 * m.program().code.size()));
    m.core().setProfile(&out.profile);
    out.run = m.runToHalt(5'000'000);
    m.core().setProfile(nullptr);
    out.stats = m.core().stats();
    return out;
}

/** Every catalog kernel, every dispatch mode: the per-PC ledger must
 *  balance against the machine's CycleStats exactly, and the stats
 *  themselves must partition instrs/cycles across the eight classes. */
TEST(Profiler, CatalogAttributionBalancesInAllDispatchModes)
{
    for (const auto &k : kernelCatalog()) {
        CoreKind kind = k.name.find("baseline") != std::string::npos
                            ? CoreKind::kBaseline
                            : CoreKind::kGfProcessor;
        for (Dispatch d : {Dispatch::kFused, Dispatch::kPlain,
                           Dispatch::kNoPredecode}) {
            SCOPED_TRACE(k.name + " / " + dispatchName(d));
            ProfiledRun r = profiledRun(k.source, kind, d);
            EXPECT_TRUE(r.run.halted);
            EXPECT_TRUE(r.stats.consistent());
            EXPECT_TRUE(r.profile.consistent());
            EXPECT_EQ(r.profile.instrs(), r.stats.instrs);
            EXPECT_EQ(r.profile.cycles(), r.stats.cycles);
            for (unsigned c = 0; c < kNumInstrClasses; ++c) {
                auto cls = static_cast<InstrClass>(c);
                EXPECT_EQ(r.profile.classOps(cls), r.stats.classOps(cls))
                    << instrClassName(cls);
                EXPECT_EQ(r.profile.classCycles(cls),
                          r.stats.classCycles(cls))
                    << instrClassName(cls);
            }
        }
    }
}

/** Fused macro-ops are de-aggregated to their constituent PCs, so the
 *  fused profile must be *bit-identical* to single-stepping — same
 *  PCs, same per-PC instruction and cycle counts. */
TEST(Profiler, FusedProfileIdenticalToPlainPerPc)
{
    for (const auto &k : kernelCatalog()) {
        if (k.name.find("baseline") != std::string::npos)
            continue; // fusion only exists on the GF core path
        SCOPED_TRACE(k.name);
        ProfiledRun fused =
            profiledRun(k.source, CoreKind::kGfProcessor, Dispatch::kFused);
        ProfiledRun plain =
            profiledRun(k.source, CoreKind::kGfProcessor, Dispatch::kPlain);
        auto a = fused.profile.nonZero();
        auto b = plain.profile.nonZero();
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].first, b[i].first) << "pc order @" << i;
            EXPECT_EQ(a[i].second.instrs, b[i].second.instrs)
                << "pc 0x" << std::hex << a[i].first;
            EXPECT_EQ(a[i].second.cycles, b[i].second.cycles)
                << "pc 0x" << std::hex << a[i].first;
        }
    }
}

/** nop/halt land in the dedicated ctrl bucket (not the alu bucket),
 *  and the class partition still sums exactly. */
TEST(Profiler, CtrlClassCountsNopAndHalt)
{
    ProfiledRun r = profiledRun(R"(
        nop
        nop
        nop
        halt
    )",
                                CoreKind::kGfProcessor, Dispatch::kFused);
    EXPECT_TRUE(r.run.halted);
    EXPECT_EQ(r.stats.ctrl_ops, r.stats.instrs);
    EXPECT_EQ(r.stats.ctrl_cycles, r.stats.cycles);
    EXPECT_EQ(r.stats.alu_ops, 0u);
    EXPECT_TRUE(r.stats.consistent());
    EXPECT_EQ(r.profile.classOps(InstrClass::kCtrl), r.stats.ctrl_ops);
    // The paper's 4-bucket tables fold ctrl and branch into "alu".
    EXPECT_EQ(r.stats.aluBucketOps(), r.stats.instrs);
}

/** A trapping run still balances: everything retired *before* the trap
 *  is attributed, nothing after. */
TEST(Profiler, TrapRunStillBalances)
{
    ProfiledRun r = profiledRun(R"(
        li   r1, #0x00fffff0
        ldr  r2, [r1]         ; out-of-range load -> trap
        halt
    )",
                                CoreKind::kGfProcessor, Dispatch::kFused);
    EXPECT_FALSE(r.run.halted);
    EXPECT_NE(r.run.trap.kind, TrapKind::kNone);
    EXPECT_TRUE(r.profile.consistent());
    EXPECT_EQ(r.profile.instrs(), r.stats.instrs);
    EXPECT_EQ(r.profile.cycles(), r.stats.cycles);
}

/** SEU campaign: profiling stays balanced whether the upset is
 *  survived, corrected, or escalates to a trap. */
TEST(Profiler, SeuRunsStayBalanced)
{
    GFField f(8);
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Machine m(syndromeAsmGfcore(f, 255, 16), CoreKind::kGfProcessor);
        m.writeBytes("rxdata", noisyRxBytes(seed));
        FaultInjector inj;
        inj.setSchedule({FaultEvent{/*cycle=*/100 * seed,
                                    FaultTarget::kDataMemory,
                                    /*index=*/static_cast<uint32_t>(seed),
                                    /*bit=*/static_cast<unsigned>(seed % 8)}});
        inj.attach(m.core());
        PcProfile prof;
        prof.configure(static_cast<uint32_t>(4 * m.program().code.size()));
        m.core().setProfile(&prof);
        RunResult run = m.runToHalt(5'000'000);
        m.core().setFaultHook(nullptr);
        m.core().setProfile(nullptr);
        (void)run;
        EXPECT_TRUE(prof.consistent());
        EXPECT_EQ(prof.instrs(), m.core().stats().instrs);
        EXPECT_EQ(prof.cycles(), m.core().stats().cycles);
    }
}

/** Stray PCs (outside the configured dense region) fall back to the
 *  overflow map and still count. */
TEST(Profiler, OverflowMapCatchesOutOfRegionPcs)
{
    PcProfile prof;
    prof.configure(16); // dense region covers pcs 0, 4, 8, 12
    prof.record(4, InstrClass::kAlu, 1);
    prof.record(0x8000, InstrClass::kLoad, 2); // beyond the region
    prof.record(0x8000, InstrClass::kLoad, 2);
    EXPECT_EQ(prof.instrs(), 3u);
    EXPECT_EQ(prof.cycles(), 5u);
    EXPECT_EQ(prof.at(0x8000).instrs, 2u);
    EXPECT_EQ(prof.at(0x8000).cycles, 4u);
    EXPECT_TRUE(prof.consistent());
    auto nz = prof.nonZero();
    ASSERT_EQ(nz.size(), 2u);
    EXPECT_EQ(nz[0].first, 4u);
    EXPECT_EQ(nz[1].first, 0x8000u);
}

/** The guest tracer emits a structurally valid Chrome trace with at
 *  least one kernel-region span, and closes cleanly on a trap. */
TEST(Tracer, GuestTraceValidatesAndNamesRegions)
{
    GFField f(8);
    Machine m(syndromeAsmGfcore(f, 255, 16), CoreKind::kGfProcessor);
    m.writeBytes("rxdata", noisyRxBytes(3));
    TraceLog log;
    GuestTracer tracer(log, m.core(), m.program());
    tracer.attach();
    RunResult run = m.runToHalt(5'000'000);
    tracer.finish(run.ok() ? nullptr : &run.trap);
    EXPECT_TRUE(run.halted);
    EXPECT_GT(log.size(), 2u); // metadata + at least one span
    std::string err;
    EXPECT_TRUE(validateTraceEventJson(log.toJson(), &err)) << err;
    // Region names come from the program's code symbols.
    EXPECT_NE(log.toJson().find("\"ph\": \"X\""), std::string::npos);
}

TEST(Tracer, ValidatorRejectsMalformedTraces)
{
    std::string err;
    // Not an object at the root.
    EXPECT_FALSE(validateTraceEventJson("[]", &err));
    // Missing traceEvents.
    EXPECT_FALSE(validateTraceEventJson("{\"foo\": []}", &err));
    // Event without a name.
    EXPECT_FALSE(validateTraceEventJson(
        R"({"traceEvents": [{"ph": "i", "ts": 0, "pid": 1, "tid": 1}]})",
        &err));
    // Complete event without dur.
    EXPECT_FALSE(validateTraceEventJson(
        R"({"traceEvents": [{"name": "a", "ph": "X", "ts": 0,)"
        R"( "pid": 1, "tid": 1}]})",
        &err));
    // Non-metadata event without ts.
    EXPECT_FALSE(validateTraceEventJson(
        R"({"traceEvents": [{"name": "a", "ph": "i", "pid": 1,)"
        R"( "tid": 1}]})",
        &err));
    // Truncated JSON.
    EXPECT_FALSE(validateTraceEventJson("{\"traceEvents\": [", &err));
    // A well-formed minimal trace passes.
    EXPECT_TRUE(validateTraceEventJson(
        R"({"traceEvents": [{"name": "a", "ph": "X", "ts": 0,)"
        R"( "dur": 1, "pid": 1, "tid": 1}]})",
        &err))
        << err;
}

/** A batch run populates the engine metrics registry: job counts,
 *  throughput, per-worker utilization, and per-trap-kind failure
 *  counters; a trace log attached to the engine validates. */
TEST(EngineMetrics, RunPopulatesRegistryAndTrace)
{
    GFField f(8);
    RSCode code(8, 8);
    Rng rng(99);
    std::vector<Job> jobs;
    for (unsigned j = 0; j < 24; ++j) {
        std::vector<GFElem> info(code.k());
        for (auto &s : info)
            s = rng.nextByte();
        jobs.push_back(syndromeJob(code.encode(info), 2 * code.t()));
    }
    // One poisoned job: an SEU on the live GFAU config register m-field
    // escalates to a trap, which must land in the trap counters.
    jobs[5].faults = {FaultEvent{/*cycle=*/40, FaultTarget::kConfigReg,
                                 /*index=*/0, /*bit=*/57}};

    TraceLog trace;
    BatchEngine eng(syndromeBatchProgram(f, 255, 16), {.threads = 2});
    eng.setTraceLog(&trace);
    auto results = eng.run(jobs);

    const Metrics &m = eng.metrics();
    EXPECT_EQ(m.counter("jobs_total"), 24.0);
    EXPECT_EQ(m.counter("jobs_failed_total"), 1.0);
    EXPECT_EQ(m.gauge("workers"), 2.0);
    EXPECT_GT(m.gauge("jobs_per_sec"), 0.0);
    EXPECT_GE(m.gauge("worker0_utilization"), 0.0);
    EXPECT_LE(m.gauge("worker0_utilization"), 1.0);
    EXPECT_EQ(m.histogram("job_guest_cycles").count, 24u);
    // Exactly one trap_<kind>_total counter, matching the poisoned job.
    EXPECT_EQ(m.counter(std::string("trap_") +
                        trapKindName(results[5].trap.kind) + "_total"),
              1.0);

    std::string err;
    EXPECT_TRUE(validateTraceEventJson(trace.toJson(), &err)) << err;
    // The trapped job is flagged in its span category.
    EXPECT_NE(trace.toJson().find("job-trapped"), std::string::npos);

    // The snapshot itself must be well-formed JSON (reuse the trace
    // validator's parser via a smoke check on the braces).
    std::string json = m.toJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '\n');
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Metrics, HistogramBucketsAndClear)
{
    Metrics m;
    m.observe("lat", 1.0);
    m.observe("lat", 3.0);
    m.observe("lat", 1000.0);
    auto h = m.histogram("lat");
    EXPECT_EQ(h.count, 3u);
    EXPECT_EQ(h.sum, 1004.0);
    EXPECT_EQ(h.min, 1.0);
    EXPECT_EQ(h.max, 1000.0);
    m.add("c");
    m.add("c", 4.0);
    EXPECT_EQ(m.counter("c"), 5.0);
    m.clear();
    EXPECT_EQ(m.counter("c"), 0.0);
    EXPECT_EQ(m.histogram("lat").count, 0u);
}

/** The published Table 11 constants survive the uW/MHz -> pJ/cycle
 *  conversion, and whole-run attribution reproduces average power. */
TEST(EnergyModel, Table11ConstantsAndAttribution)
{
    EnergyModel nom = EnergyModel::nominal();
    EXPECT_DOUBLE_EQ(nom.shellPjPerCycle(), 2.79);
    EXPECT_DOUBLE_EQ(nom.gfauPjPerCycle(), 1.52);
    EXPECT_DOUBLE_EQ(nom.voltage(), 0.9);

    EnergyModel low = EnergyModel::scaled07v();
    EXPECT_DOUBLE_EQ(low.shellPjPerCycle(), 1.56);
    EXPECT_DOUBLE_EQ(low.gfauPjPerCycle(), 0.75);
    EXPECT_DOUBLE_EQ(low.voltage(), 0.7);

    EXPECT_TRUE(EnergyModel::usesGfau(InstrClass::kGfSimd));
    EXPECT_TRUE(EnergyModel::usesGfau(InstrClass::kGfCfg));
    EXPECT_FALSE(EnergyModel::usesGfau(InstrClass::kAlu));
    EXPECT_FALSE(EnergyModel::usesGfau(InstrClass::kCtrl));

    // A run that keeps the GFAU busy every cycle burns shell + GFAU on
    // each: back-to-back execution averages the full 431 uW of Table 11.
    CycleStats all_gf;
    all_gf.record(InstrClass::kGfSimd, 1);
    for (int i = 0; i < 99; ++i)
        all_gf.record(InstrClass::kGfSimd, 1);
    EXPECT_DOUBLE_EQ(nom.runEnergyPj(all_gf), 100 * (2.79 + 1.52));
    EXPECT_NEAR(nom.averagePowerUw(all_gf), 431.0, 1e-9);

    // An integer-only run idles the GFAU: shell power alone.
    CycleStats int_only;
    for (int i = 0; i < 50; ++i)
        int_only.record(InstrClass::kAlu, 1);
    EXPECT_DOUBLE_EQ(nom.gfauEnergyPj(int_only), 0.0);
    EXPECT_NEAR(nom.averagePowerUw(int_only), 279.0, 1e-9);
}

} // namespace
} // namespace gfp
