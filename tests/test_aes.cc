/**
 * @file
 * AES validation against FIPS-197 / NIST SP 800-38A vectors, plus
 * per-kernel checks (S-box as GF inverse + affine, MixColumns as GF
 * inner products) since the evaluation measures those kernels
 * individually.
 */

#include <gtest/gtest.h>

#include "common/strutil.h"
#include "crypto/aes.h"
#include "gf/field.h"
#include "gf/polys.h"

namespace gfp {
namespace {

AesBlock
block(const std::string &hex)
{
    auto v = fromHex(hex);
    AesBlock b{};
    std::copy(v.begin(), v.end(), b.begin());
    return b;
}

std::string
hex(const AesBlock &b)
{
    return toHex(std::vector<uint8_t>(b.begin(), b.end()));
}

TEST(AesSbox, MatchesFipsTable)
{
    // Spot values from the FIPS-197 S-box table.
    EXPECT_EQ(Aes::sbox(0x00), 0x63);
    EXPECT_EQ(Aes::sbox(0x01), 0x7c);
    EXPECT_EQ(Aes::sbox(0x53), 0xed);
    EXPECT_EQ(Aes::sbox(0xff), 0x16);
    EXPECT_EQ(Aes::sbox(0x9a), 0xb8);
}

TEST(AesSbox, InverseRoundTripsAllBytes)
{
    for (unsigned x = 0; x < 256; ++x) {
        EXPECT_EQ(Aes::invSbox(Aes::sbox(x)), x);
        EXPECT_EQ(Aes::sbox(Aes::invSbox(x)), x);
    }
}

TEST(AesSbox, IsGfInversePlusAffine)
{
    // The structural claim the paper's gfMultInv_simd instruction rests
    // on: sbox(x) == affine(inv(x)) for every byte.
    GFField f(8, kAesPoly);
    for (unsigned x = 0; x < 256; ++x) {
        uint8_t inv = static_cast<uint8_t>(f.inv(x));
        uint8_t affine = inv;
        for (int k = 1; k <= 4; ++k)
            affine ^= static_cast<uint8_t>((inv << k) | (inv >> (8 - k)));
        affine ^= 0x63;
        EXPECT_EQ(Aes::sbox(x), affine) << "x=" << x;
    }
}

TEST(AesKernels, MixColumnsFipsExample)
{
    // FIPS-197 round-1 intermediate of the Appendix B example.
    AesBlock s = block("d4bf5d30e0b452aeb84111f11e2798e5");
    Aes::mixColumns(s);
    EXPECT_EQ(hex(s), "046681e5e0cb199a48f8d37a2806264c");
}

TEST(AesKernels, InvMixColumnsInverts)
{
    AesBlock s = block("00112233445566778899aabbccddeeff");
    AesBlock orig = s;
    Aes::mixColumns(s);
    Aes::invMixColumns(s);
    EXPECT_EQ(s, orig);
}

TEST(AesKernels, ShiftRowsFipsExample)
{
    AesBlock s = block("d42711aee0bf98f1b8b45de51e415230");
    Aes::shiftRows(s);
    EXPECT_EQ(hex(s), "d4bf5d30e0b452aeb84111f11e2798e5");
    Aes::invShiftRows(s);
    EXPECT_EQ(hex(s), "d42711aee0bf98f1b8b45de51e415230");
}

TEST(AesKernels, SubBytesFipsExample)
{
    AesBlock s = block("193de3bea0f4e22b9ac68d2ae9f84808");
    Aes::subBytes(s);
    EXPECT_EQ(hex(s), "d42711aee0bf98f1b8b45de51e415230");
}

TEST(AesKeySchedule, Fips128Expansion)
{
    Aes aes(fromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    const auto &w = aes.roundKeys();
    ASSERT_EQ(w.size(), 44u);
    EXPECT_EQ(w[0], 0x2b7e1516u);
    EXPECT_EQ(w[4], 0xa0fafe17u);
    EXPECT_EQ(w[43], 0xb6630ca6u);
}

TEST(AesEncrypt, Fips197AppendixB)
{
    Aes aes(fromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    AesBlock ct = aes.encryptBlock(block("3243f6a8885a308d313198a2e0370734"));
    EXPECT_EQ(hex(ct), "3925841d02dc09fbdc118597196a0b32");
}

TEST(AesEncrypt, Fips197AppendixC128)
{
    Aes aes(fromHex("000102030405060708090a0b0c0d0e0f"));
    AesBlock ct = aes.encryptBlock(block("00112233445566778899aabbccddeeff"));
    EXPECT_EQ(hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesEncrypt, Fips197AppendixC192)
{
    Aes aes(fromHex("000102030405060708090a0b0c0d0e0f1011121314151617"));
    AesBlock ct = aes.encryptBlock(block("00112233445566778899aabbccddeeff"));
    EXPECT_EQ(hex(ct), "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(AesEncrypt, Fips197AppendixC256)
{
    Aes aes(fromHex(
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
    AesBlock ct = aes.encryptBlock(block("00112233445566778899aabbccddeeff"));
    EXPECT_EQ(hex(ct), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(AesDecrypt, InvertsAllKeySizes)
{
    std::vector<size_t> key_sizes{16, 24, 32};
    for (size_t ks : key_sizes) {
        std::vector<uint8_t> key(ks);
        for (size_t i = 0; i < ks; ++i)
            key[i] = static_cast<uint8_t>(i * 7 + 1);
        Aes aes(key);
        AesBlock pt = block("00112233445566778899aabbccddeeff");
        EXPECT_EQ(aes.decryptBlock(aes.encryptBlock(pt)), pt)
            << "keysize=" << ks;
    }
}

TEST(AesModes, EcbMultipleBlocks)
{
    Aes aes(fromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    // SP 800-38A ECB-AES128 vectors, first two blocks.
    auto pt = fromHex("6bc1bee22e409f96e93d7e117393172a"
                      "ae2d8a571e03ac9c9eb76fac45af8e51");
    auto ct = aes.encryptEcb(pt);
    EXPECT_EQ(toHex(ct), "3ad77bb40d7a3660a89ecaf32466ef97"
                         "f5d3d58503b9699de785895a96fdbaaf");
    EXPECT_EQ(aes.decryptEcb(ct), pt);
}

TEST(AesModes, CtrKnownVector)
{
    // SP 800-38A CTR-AES128, first block.
    Aes aes(fromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    AesBlock iv = block("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
    auto pt = fromHex("6bc1bee22e409f96e93d7e117393172a");
    auto ct = aes.applyCtr(pt, iv);
    EXPECT_EQ(toHex(ct), "874d6191b620e3261bef6864990db6ce");
    EXPECT_EQ(aes.applyCtr(ct, iv), pt); // CTR is an involution
}

TEST(AesModes, CtrHandlesPartialBlocks)
{
    Aes aes(fromHex("000102030405060708090a0b0c0d0e0f"));
    AesBlock iv{};
    std::vector<uint8_t> pt(37, 0x5a);
    auto ct = aes.applyCtr(pt, iv);
    EXPECT_EQ(ct.size(), 37u);
    EXPECT_EQ(aes.applyCtr(ct, iv), pt);
}

TEST(Aes, RejectsBadKeySize)
{
    EXPECT_DEATH(Aes aes(std::vector<uint8_t>(15)), "16/24/32");
}

TEST(Aes, EcbRejectsPartialBlocks)
{
    Aes aes(std::vector<uint8_t>(16, 0));
    EXPECT_DEATH(aes.encryptEcb(std::vector<uint8_t>(15)), "multiple of 16");
}

} // namespace
} // namespace gfp
