/**
 * @file
 * Statistical and determinism tests for the channel models.  The fault
 * campaign (test_fault_injection.cc) and the coding experiments both
 * lean on these models being seeded-reproducible and on their error
 * statistics matching the configured parameters.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "coding/channel.h"

namespace gfp {
namespace {

std::vector<uint8_t>
zeros(size_t n)
{
    return std::vector<uint8_t>(n, 0);
}

unsigned
countOnes(const std::vector<uint8_t> &bits)
{
    unsigned n = 0;
    for (uint8_t b : bits)
        n += b;
    return n;
}

TEST(BscChannel, SameSeedSameErrors)
{
    BscChannel a(0.01, 77), b(0.01, 77);
    auto ra = a.transmit(zeros(4096));
    auto rb = b.transmit(zeros(4096));
    EXPECT_EQ(ra, rb);
    EXPECT_EQ(a.bitErrors(), b.bitErrors());
}

TEST(BscChannel, DifferentSeedsDifferentErrors)
{
    BscChannel a(0.05, 1), b(0.05, 2);
    EXPECT_NE(a.transmit(zeros(4096)), b.transmit(zeros(4096)));
}

TEST(BscChannel, EmpiricalFlipRateMatchesP)
{
    // 100k bits at p = 0.02: expect ~2000 flips; a +/-5 sigma window
    // (sigma = sqrt(n*p*(1-p)) ~ 44) keeps this deterministic-seed test
    // far from flaky while still catching a miscalibrated model.
    const double p = 0.02;
    const size_t n = 100'000;
    BscChannel ch(p, 12345);
    auto out = ch.transmit(zeros(n));
    double expect = p * n;
    double sigma = std::sqrt(n * p * (1 - p));
    EXPECT_NEAR(countOnes(out), expect, 5 * sigma);
    EXPECT_EQ(ch.bitErrors(), countOnes(out));
}

TEST(BscChannel, SymbolTransmitCountsBitErrors)
{
    BscChannel ch(0.05, 9);
    std::vector<GFElem> word(255, 0);
    auto rx = ch.transmitSymbols(word, 8);
    unsigned wrong_symbols = 0;
    for (size_t i = 0; i < rx.size(); ++i)
        wrong_symbols += rx[i] != 0;
    EXPECT_GT(ch.bitErrors(), 0u);
    // Every flipped bit lands in some symbol; symbol errors can't
    // exceed bit errors.
    EXPECT_LE(wrong_symbols, ch.bitErrors());
    EXPECT_GT(wrong_symbols, 0u);
}

TEST(GilbertElliottChannel, SameSeedSameErrors)
{
    GilbertElliottChannel a(0.01, 0.2, 0.0005, 0.3, 42);
    GilbertElliottChannel b(0.01, 0.2, 0.0005, 0.3, 42);
    auto ra = a.transmit(zeros(8192));
    auto rb = b.transmit(zeros(8192));
    EXPECT_EQ(ra, rb);
    EXPECT_EQ(a.bitErrors(), b.bitErrors());
}

TEST(GilbertElliottChannel, ErrorsAreBursty)
{
    // In a burst channel, an error is much likelier right after another
    // error than unconditionally: P(err | prev err) >> P(err).  The
    // stationary marginal here is well under 5%, while within a bad
    // state the error rate is 30%.
    GilbertElliottChannel ch(0.005, 0.1, 0.0005, 0.3, 2024);
    const size_t n = 200'000;
    auto out = ch.transmit(zeros(n));

    uint64_t errors = 0, pairs = 0;
    for (size_t i = 0; i < n; ++i)
        errors += out[i];
    for (size_t i = 1; i < n; ++i)
        pairs += out[i] && out[i - 1];
    ASSERT_GT(errors, 100u);

    double marginal = static_cast<double>(errors) / n;
    double after_error = static_cast<double>(pairs) / errors;
    EXPECT_GT(after_error, 4 * marginal)
        << "marginal=" << marginal << " after_error=" << after_error;
}

TEST(GilbertElliottChannel, DegeneratesToBscWhenStatesMatch)
{
    // With pe_good == pe_bad the Markov state is irrelevant: the
    // empirical rate must match that single p.
    const double p = 0.03;
    GilbertElliottChannel ch(0.01, 0.01, p, p, 7);
    const size_t n = 100'000;
    auto out = ch.transmit(zeros(n));
    double sigma = std::sqrt(n * p * (1 - p));
    EXPECT_NEAR(countOnes(out), p * n, 5 * sigma);
}

TEST(ExactErrorInjector, FlipsExactlyCount)
{
    ExactErrorInjector inj(3);
    for (unsigned count : {0u, 1u, 5u, 63u}) {
        auto out = inj.flipBits(zeros(63), count);
        EXPECT_EQ(countOnes(out), count);
    }
}

TEST(ExactErrorInjector, CorruptsExactlyCountSymbols)
{
    ExactErrorInjector inj(4);
    std::vector<GFElem> word(255, 0);
    auto rx = inj.corruptSymbols(word, 10, 8);
    unsigned wrong = 0;
    for (GFElem s : rx)
        wrong += s != 0;
    EXPECT_EQ(wrong, 10u);
}

TEST(ExactErrorInjector, PositionsDistinctAndInRange)
{
    ExactErrorInjector inj(5);
    auto pos = inj.pickPositions(31, 31); // full draw: a permutation
    std::vector<bool> seen(31, false);
    for (unsigned p : pos) {
        ASSERT_LT(p, 31u);
        EXPECT_FALSE(seen[p]) << "duplicate position " << p;
        seen[p] = true;
    }
    EXPECT_EQ(pos.size(), 31u);
}

} // anonymous namespace
} // namespace gfp
