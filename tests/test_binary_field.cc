/**
 * @file
 * Tests for the wide binary fields (GF(2^233) and friends): sparse
 * reduction, multiplication paths, squaring, and both inversion
 * algorithms (Itoh-Tsujii vs. extended Euclid must agree).
 */

#include <gtest/gtest.h>

#include "gf/binary_field.h"

namespace gfp {
namespace {

class NistFields : public ::testing::TestWithParam<const char *>
{
};

TEST_P(NistFields, FieldAxioms)
{
    BinaryField f = BinaryField::nist(GetParam());
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        Gf2x a = f.randomElement(seed);
        Gf2x b = f.randomElement(seed + 100);
        Gf2x c = f.randomElement(seed + 200);

        EXPECT_TRUE(f.contains(f.mul(a, b)));
        EXPECT_EQ(f.mul(a, b), f.mul(b, a));
        EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        EXPECT_EQ(f.mul(a, b ^ c), f.mul(a, b) ^ f.mul(a, c));
        EXPECT_EQ(f.sqr(a), f.mul(a, a));
        EXPECT_EQ(f.mulKaratsuba(a, b), f.mul(a, b));
        if (!a.isZero()) {
            EXPECT_TRUE(f.mul(a, f.invItohTsujii(a)).isOne());
            EXPECT_EQ(f.invItohTsujii(a), f.invEuclid(a));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllNist, NistFields,
                         ::testing::Values("113", "131", "163", "233",
                                           "283", "409", "571"));

TEST(BinaryField, ReduceMatchesGenericMod)
{
    BinaryField f = BinaryField::nist("233");
    for (uint64_t seed = 0; seed < 16; ++seed) {
        Gf2x v = Gf2x::random(465, seed + 1); // up to 2m-1 bits
        EXPECT_EQ(f.reduce(v), v.mod(f.modulus()));
    }
}

TEST(BinaryField, K233KnownStructure)
{
    BinaryField f = BinaryField::nist("233");
    EXPECT_EQ(f.m(), 233u);
    // x^233 ≡ x^74 + 1 (mod p)
    EXPECT_EQ(f.reduce(Gf2x::monomial(233)),
              Gf2x::fromExponents({74, 0}));
    // x^232 * x = x^233
    Gf2x x232 = Gf2x::monomial(232);
    EXPECT_EQ(f.mul(x232, Gf2x(2)), Gf2x::fromExponents({74, 0}));
}

TEST(BinaryField, ItohTsujiiOperationCounts)
{
    // For m = 233 the ITA chain on e = 232 = 0b11101000 costs
    // floor(log2 e) + popcount(e) - 1 = 7 + 4 - 1 = 10 multiplies and
    // m - 1 = 232 squarings in total (231 inside the chain + the final
    // squaring of a^(2^(m-1)-1)).
    BinaryField f = BinaryField::nist("233");
    unsigned mults = 0, sqrs = 0;
    Gf2x a = f.randomElement(42);
    f.invItohTsujii(a, &mults, &sqrs);
    EXPECT_EQ(mults, 10u);
    EXPECT_EQ(sqrs, 232u);
}

TEST(BinaryField, InverseOfZeroIsZero)
{
    BinaryField f = BinaryField::nist("233");
    EXPECT_TRUE(f.invItohTsujii(Gf2x()).isZero());
    EXPECT_TRUE(f.invEuclid(Gf2x()).isZero());
}

TEST(BinaryField, InverseOfOneIsOne)
{
    BinaryField f = BinaryField::nist("163");
    EXPECT_TRUE(f.invItohTsujii(Gf2x(uint64_t{1})).isOne());
    EXPECT_TRUE(f.invEuclid(Gf2x(uint64_t{1})).isOne());
}

TEST(BinaryField, DivisionInvertsMultiplication)
{
    BinaryField f = BinaryField::nist("233");
    Gf2x a = f.randomElement(7);
    Gf2x b = f.randomElement(8);
    EXPECT_EQ(f.div(f.mul(a, b), b), a);
    EXPECT_DEATH(f.div(a, Gf2x()), "division by zero");
}

TEST(BinaryField, FermatLikeProperty)
{
    // a^(2^m) == a: m+0 squarings bring an element back to itself.
    BinaryField f = BinaryField::nist("113");
    Gf2x a = f.randomElement(77);
    EXPECT_EQ(f.sqrN(a, 113), a);
}

TEST(BinaryField, RejectsBadPolynomial)
{
    EXPECT_DEATH(BinaryField(233, {233, 74}), "must include x\\^m and 1");
    EXPECT_DEATH(BinaryField(10, {10, 10, 0}), "middle term");
    EXPECT_DEATH(BinaryField::nist("512"), "unknown NIST");
}

} // namespace
} // namespace gfp
