/**
 * @file
 * SEU fault-injection campaign: the robustness contract under test is
 * that *no guest program and no injected fault may abort the host*.
 * Every campaign must end in exactly one of two structured outcomes —
 * a clean halt or a Trap — and seeded campaigns must replay
 * bit-for-bit.  The soak below runs well over a thousand campaigns
 * across all three injection targets (data memory, register file,
 * GFAU configuration register) plus resilient-decoder recovery runs.
 */

#include <gtest/gtest.h>

#include <map>

#include "coding/channel.h"
#include "coding/decoder_kernels.h"
#include "coding/resilient_decoder.h"
#include "gf/field.h"
#include "isa/assembler.h"
#include "kernels/coding_kernels.h"
#include "sim/fault_injector.h"
#include "sim/machine.h"

namespace gfp {
namespace {

// A small RS(15, 9, t=3) screen keeps each campaign cheap enough to
// run thousands of them.
constexpr unsigned kM = 4;
constexpr unsigned kT = 3;
constexpr unsigned kN = 15;
constexpr unsigned kTwoT = 2 * kT;

const GFField &
testField()
{
    static GFField field(kM);
    return field;
}

/** Syndrome kernel assembled once; Machines are built from copies. */
const Program &
screenProgram()
{
    static Program prog =
        Assembler::assemble(syndromeAsmGfcore(testField(), kN, kTwoT));
    return prog;
}

/** Cycle count of one fault-free screen pass (the campaign horizon). */
uint64_t
goldenCycles()
{
    static uint64_t cycles = [] {
        Machine m(screenProgram(), CoreKind::kGfProcessor);
        m.writeBytes("rxdata", std::vector<uint8_t>(kN, 0));
        return m.runOk().cycles;
    }();
    return cycles;
}

// ------------------------- injector mechanics -------------------------

TEST(FaultInjector, RandomCampaignIsDeterministic)
{
    std::vector<FaultTarget> all = {FaultTarget::kDataMemory,
                                    FaultTarget::kRegisterFile,
                                    FaultTarget::kConfigReg};
    auto a = FaultInjector::randomCampaign(99, 16, 1000, 4096, all);
    auto b = FaultInjector::randomCampaign(99, 16, 1000, 4096, all);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].cycle, b[i].cycle);
        EXPECT_EQ(a[i].target, b[i].target);
        EXPECT_EQ(a[i].index, b[i].index);
        EXPECT_EQ(a[i].bit, b[i].bit);
    }
    auto c = FaultInjector::randomCampaign(100, 16, 1000, 4096, all);
    bool identical = true;
    for (size_t i = 0; i < c.size(); ++i)
        identical &= c[i].cycle == a[i].cycle && c[i].index == a[i].index;
    EXPECT_FALSE(identical);
}

TEST(FaultInjector, StatsCountEveryDeliveredFlip)
{
    Machine m(R"(
        movi r1, #100
    loop:
        subi r1, r1, #1
        cmpi r1, #0
        bne  loop
        halt
    )", CoreKind::kGfProcessor);
    FaultInjector inj;
    // Register flips on an otherwise-unused register, plus one memory
    // flip in high memory: the loop still halts.
    inj.setSchedule({{10, FaultTarget::kRegisterFile, 7, 0},
                     {20, FaultTarget::kRegisterFile, 7, 1},
                     {30, FaultTarget::kDataMemory, 0x30000, 3}});
    inj.attach(m.core());
    RunResult r = m.runToHalt();
    ASSERT_TRUE(r.ok()) << r.trap.describe();
    EXPECT_EQ(inj.firedCount(), 3u);
    EXPECT_EQ(inj.pendingCount(), 0u);
    EXPECT_EQ(r.stats.faults_reg, 2u);
    EXPECT_EQ(r.stats.faults_mem, 1u);
    EXPECT_EQ(r.stats.faultsInjected(), 3u);
    EXPECT_EQ(m.core().reg(7), 3u); // bits 0 and 1 flipped in r7
    EXPECT_NE(r.stats.summary().find("SEU"), std::string::npos);
}

TEST(FaultInjector, TrapOnInjectRaisesInjectedFault)
{
    Machine m(R"(
        movi r1, #100
    loop:
        subi r1, r1, #1
        cmpi r1, #0
        bne  loop
        halt
    )", CoreKind::kGfProcessor);
    FaultInjector inj;
    inj.setSchedule({{5, FaultTarget::kRegisterFile, 6, 2}});
    inj.setTrapOnInject(true);
    inj.attach(m.core());
    RunResult r = m.runToHalt();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.trap.kind, TrapKind::kInjectedFault);
}

TEST(FaultInjector, ConfigMFieldUpsetTrapsAtNextGfOp)
{
    // Flipping bit 58 of the config register turns m=4 into m=0 — an
    // invalid field that must trap at the next GF op, not abort.
    Machine m(screenProgram(), CoreKind::kGfProcessor);
    m.writeBytes("rxdata", std::vector<uint8_t>(kN, 1));
    FaultInjector inj;
    inj.setSchedule({{goldenCycles() / 2, FaultTarget::kConfigReg, 0, 58}});
    inj.attach(m.core());
    RunResult r = m.runToHalt();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.trap.kind, TrapKind::kGfConfigCorrupt);
    EXPECT_EQ(r.stats.faults_cfg, 1u);
}

// ----------------------------- the soak -------------------------------

struct CampaignOutcome
{
    bool halted = false;
    TrapKind trap = TrapKind::kNone;
    uint64_t instrs = 0;
    std::vector<uint8_t> synd;

    bool operator==(const CampaignOutcome &o) const
    {
        return halted == o.halted && trap == o.trap &&
               instrs == o.instrs && synd == o.synd;
    }
};

CampaignOutcome
runCampaign(uint64_t seed, const std::vector<FaultTarget> &targets,
            unsigned n_events)
{
    Machine mach(screenProgram(), CoreKind::kGfProcessor);
    std::vector<uint8_t> rx(kN);
    Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
    for (auto &b : rx)
        b = static_cast<uint8_t>(rng.below(16));
    mach.writeBytes("rxdata", rx);

    FaultInjector inj;
    inj.setSchedule(FaultInjector::randomCampaign(
        seed, n_events, goldenCycles(), mach.memory().size(), targets));
    inj.attach(mach.core());

    // Watchdog well above the fault-free instruction count: a fault
    // that corrupts the loop counter becomes a Watchdog trap.
    RunResult r = mach.runToHalt(goldenCycles() * 4 + 10'000);

    CampaignOutcome out;
    out.halted = r.halted;
    out.trap = r.trap.kind;
    out.instrs = r.instrs;
    if (r.ok())
        out.synd = mach.readBytes("synd", kTwoT);
    return out;
}

TEST(FaultSoak, NoCampaignAbortsTheHost)
{
    // 400 seeds x 3 target classes = 1200 campaigns.  Reaching the end
    // of this loop *is* the assertion that no guest or fault aborted
    // the host; per-campaign we assert the outcome is structured.
    const std::vector<std::vector<FaultTarget>> classes = {
        {FaultTarget::kDataMemory},
        {FaultTarget::kRegisterFile},
        {FaultTarget::kConfigReg},
    };
    std::map<TrapKind, unsigned> trap_tally;
    unsigned halted = 0, campaigns = 0;
    for (uint64_t seed = 0; seed < 400; ++seed) {
        for (const auto &targets : classes) {
            CampaignOutcome out = runCampaign(seed, targets, 3);
            ++campaigns;
            // Exactly one structured outcome: halt or trap.
            ASSERT_TRUE(out.halted || out.trap != TrapKind::kNone)
                << "seed " << seed;
            if (out.halted)
                ++halted;
            else
                ++trap_tally[out.trap];
        }
    }
    EXPECT_EQ(campaigns, 1200u);
    // Both outcome classes must actually occur, else the soak proves
    // nothing.
    EXPECT_GT(halted, 0u);
    unsigned trapped = campaigns - halted;
    EXPECT_GT(trapped, 0u);
    // Memory flips can corrupt code anywhere, so at least the
    // config-corrupt class must appear (m-field upsets).
    EXPECT_GT(trap_tally[TrapKind::kGfConfigCorrupt], 0u);
}

TEST(FaultSoak, CampaignsReplayBitForBit)
{
    const std::vector<FaultTarget> all = {FaultTarget::kDataMemory,
                                          FaultTarget::kRegisterFile,
                                          FaultTarget::kConfigReg};
    for (uint64_t seed = 1000; seed < 1040; ++seed) {
        CampaignOutcome a = runCampaign(seed, all, 4);
        CampaignOutcome b = runCampaign(seed, all, 4);
        EXPECT_TRUE(a == b) << "seed " << seed << " diverged";
    }
}

// ----------------------- resilient decoder runs -----------------------

ScreenProgram
screenSpec()
{
    return ScreenProgram{syndromeAsmGfcore(testField(), kN, kTwoT)};
}

TEST(ResilientDecoder, FaultFreeDecodeIsCorrected)
{
    ResilientRsDecoder dec(kM, kT, screenSpec());
    std::vector<GFElem> info(dec.code().k(), 0x5);
    auto cw = dec.code().encode(info);

    ExactErrorInjector chan(7);
    auto rx = chan.corruptSymbols(cw, 2, kM);

    auto res = dec.decode(rx);
    EXPECT_EQ(res.report.outcome, ResilientOutcome::kCorrected);
    EXPECT_EQ(res.report.errors, 2u);
    EXPECT_EQ(res.report.scrubs, 0u);
    EXPECT_TRUE(res.report.screen_agreed);
    EXPECT_EQ(res.codeword, cw);
}

TEST(ResilientDecoder, BeyondCapacityIsDetectedNotSilent)
{
    ResilientRsDecoder dec(kM, kT, screenSpec());
    std::vector<GFElem> info(dec.code().k(), 0x9);
    auto cw = dec.code().encode(info);

    ExactErrorInjector chan(11);
    auto rx = chan.corruptSymbols(cw, kT + 2, kM); // 5 > t = 3

    auto res = dec.decode(rx);
    // Either flagged uncorrectable, or "corrected" onto some codeword
    // != cw (decoding beyond capacity can alias) — but if it claims
    // success it must at least return a valid codeword.
    if (res.report.outcome == ResilientOutcome::kDetectedUncorrectable) {
        SUCCEED();
    } else {
        auto check = syndromes(dec.code().field(), res.codeword, kTwoT);
        for (GFElem s : check)
            EXPECT_EQ(s, 0u);
    }
}

TEST(ResilientDecoder, ErasureHintsRescueBeyondHalfDistance)
{
    ResilientRsDecoder dec(kM, kT, screenSpec());
    std::vector<GFElem> info(dec.code().k(), 0x3);
    auto cw = dec.code().encode(info);

    // Corrupt 2t - 1 = 5 known positions with a pattern that defeats
    // plain decoding (beyond-capacity words can also alias onto a
    // wrong codeword, so search the seeded patterns for one the plain
    // decoder rejects): errors-and-erasures with all positions hinted
    // then succeeds.
    std::vector<GFElem> rx;
    std::vector<unsigned> pos;
    for (uint64_t seed = 13; seed < 64; ++seed) {
        ExactErrorInjector chan(seed);
        pos = chan.pickPositions(kN, kTwoT - 1);
        rx = cw;
        for (unsigned p : pos)
            rx[p] ^= 0x1;
        if (!dec.code().decode(rx).ok)
            break;
        rx.clear();
    }
    ASSERT_FALSE(rx.empty()) << "no pattern defeated plain decoding";

    auto res = dec.decode(rx, pos);
    ASSERT_EQ(res.report.outcome, ResilientOutcome::kCorrected);
    EXPECT_TRUE(res.report.escalated_to_erasures);
    EXPECT_EQ(res.codeword, cw);
}

TEST(ResilientDecoder, ScrubRecoversFromConfigUpsets)
{
    // Inject config-register upsets into every screen attempt of the
    // first decode; the scrub loop must still converge because each
    // retry reloads the known-good config and the schedule eventually
    // drains.
    unsigned recovered = 0, corrected = 0, detected = 0;
    for (uint64_t seed = 0; seed < 120; ++seed) {
        ResilientRsDecoder dec(kM, kT, screenSpec());
        std::vector<GFElem> info(dec.code().k(),
                                 static_cast<GFElem>(seed % 16));
        auto cw = dec.code().encode(info);
        ExactErrorInjector chan(seed);
        auto rx = chan.corruptSymbols(cw, seed % (kT + 1), kM);

        FaultInjector inj;
        inj.setSchedule(FaultInjector::randomCampaign(
            seed, 2, goldenCycles(),
            256 * 1024, {FaultTarget::kConfigReg}));
        inj.attach(dec.core());

        auto res = dec.decode(rx);
        switch (res.report.outcome) {
          case ResilientOutcome::kCorrected:
            ++corrected;
            EXPECT_EQ(res.codeword, cw) << "seed " << seed;
            break;
          case ResilientOutcome::kRecoveredAfterScrub:
            ++recovered;
            EXPECT_EQ(res.codeword, cw) << "seed " << seed;
            EXPECT_GT(res.report.scrubs, 0u);
            break;
          case ResilientOutcome::kDetectedUncorrectable:
            ++detected;
            break;
        }
    }
    // The campaign must exercise the scrub path, and nothing may be
    // silently wrong: every success above was checked against cw.
    EXPECT_GT(recovered, 0u);
    EXPECT_GT(corrected + recovered, 60u)
        << "corrected=" << corrected << " recovered=" << recovered
        << " detected=" << detected;
}

TEST(ResilientDecoder, ReportSummaryRenders)
{
    ResilientRsDecoder dec(kM, kT, screenSpec());
    std::vector<GFElem> info(dec.code().k(), 0x1);
    auto cw = dec.code().encode(info);
    auto res = dec.decode(cw);
    EXPECT_NE(res.report.summary().find("corrected"), std::string::npos);
    EXPECT_EQ(res.report.outcome, ResilientOutcome::kCorrected);
    EXPECT_EQ(res.report.errors, 0u);
}

TEST(ResilientDecoder, BchPathAlsoRecovers)
{
    // BCH(15, t=2) over the same field exercises the binary decoder
    // wrapper end to end.
    ResilientBchDecoder dec(kM, 2, screenSpec());
    std::vector<uint8_t> info(dec.code().k(), 1);
    auto cw = dec.code().encode(info);
    ExactErrorInjector chan(21);
    auto rx = chan.flipBits(cw, 2);

    auto res = dec.decode(rx);
    ASSERT_EQ(res.report.outcome, ResilientOutcome::kCorrected);
    EXPECT_EQ(res.report.errors, 2u);
    EXPECT_EQ(res.codeword, cw);
}

} // anonymous namespace
} // namespace gfp
