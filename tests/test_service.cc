/**
 * @file
 * GF-coding service tests (docs/SERVICE.md): wire framing and
 * deframing, bit-identity of every request class against direct engine
 * invocation and the host reference codecs, malformed/truncated/fuzzed
 * frame handling, per-request deadlines, admission-control
 * backpressure, graceful-drain exactly-once accounting, and the
 * serving-layer helpers (histogram quantile estimation,
 * Gilbert-Elliott arrival generation).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <set>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "coding/bch.h"
#include "coding/channel.h"
#include "coding/decoder_kernels.h"
#include "coding/rs.h"
#include "common/random.h"
#include "common/strutil.h"
#include "crypto/aes.h"
#include "crypto/ecc.h"
#include "engine/metrics.h"
#include "kernels/batch_kernels.h"
#include "service/client.h"
#include "service/server.h"

namespace gfp::service {
namespace {

/** Short relative socket paths keep clear of sun_path's 108-byte cap
 *  regardless of where the build tree lives. */
std::string
uniqueSocketPath()
{
    static std::atomic<unsigned> counter{0};
    return strprintf("gfp_svc_%d_%u.sock", static_cast<int>(getpid()),
                     counter.fetch_add(1));
}

Server::Options
baseOptions(const std::string &path)
{
    Server::Options opts;
    opts.unix_path = path;
    opts.engine.threads = 1;
    opts.quiet = true;
    return opts;
}

/** Server + connected client, torn down in order. */
struct ServicePair
{
    explicit ServicePair(Server::Options opts)
        : path(opts.unix_path), server(std::move(opts))
    {
        server.start();
        EXPECT_TRUE(client.connectUnix(path));
    }

    ~ServicePair()
    {
        client.close();
        server.drain();
        EXPECT_TRUE(server.countersConsistent());
    }

    std::string path;
    Server server;
    Client client;
};

std::vector<uint8_t>
noisyRsWord(RSCode &rs, unsigned errors, uint64_t seed,
            std::vector<GFElem> *codeword = nullptr)
{
    Rng rng(seed);
    std::vector<GFElem> info(rs.k());
    for (auto &s : info)
        s = rng.nextByte();
    auto cw = rs.encode(info);
    if (codeword)
        *codeword = cw;
    ExactErrorInjector inj(seed);
    auto rx = inj.corruptSymbols(cw, errors, 8);
    return std::vector<uint8_t>(rx.begin(), rx.end());
}

std::vector<uint8_t>
gf2xBytes(const Gf2x &v)
{
    auto words = v.toWords32(8);
    std::vector<uint8_t> out;
    for (uint32_t w : words)
        for (unsigned b = 0; b < 4; ++b)
            out.push_back(static_cast<uint8_t>(w >> (8 * b)));
    return out;
}

// ---- wire layer ----

TEST(Wire, LittleEndianHelpersRoundTrip)
{
    std::vector<uint8_t> buf;
    putU16(buf, 0xbeef);
    putU32(buf, 0xdeadbeefu);
    putU64(buf, 0x0123456789abcdefull);
    ASSERT_EQ(buf.size(), 14u);
    EXPECT_EQ(getU16(buf.data()), 0xbeef);
    EXPECT_EQ(getU32(buf.data() + 2), 0xdeadbeefu);
    EXPECT_EQ(getU64(buf.data() + 6), 0x0123456789abcdefull);
    EXPECT_EQ(buf[0], 0xef); // little-endian on the wire
}

TEST(Wire, RequestHeaderRoundTrip)
{
    RequestHeader h;
    h.cls = RequestClass::kRsDecode;
    h.deadline_us = 12345;
    h.id = 0x1122334455667788ull;
    std::vector<uint8_t> body = {1, 2, 3};
    std::vector<uint8_t> frame;
    appendRequestFrame(frame, h, body.data(), body.size());
    ASSERT_EQ(frame.size(), 4 + kHeaderBytes + body.size());
    ASSERT_EQ(getU32(frame.data()), kHeaderBytes + body.size());

    RequestHeader back;
    ASSERT_TRUE(parseRequestHeader(frame.data() + 4, frame.size() - 4,
                                   &back));
    EXPECT_EQ(back.version, kWireVersion);
    EXPECT_EQ(back.cls, RequestClass::kRsDecode);
    EXPECT_EQ(back.flags, 0);
    EXPECT_EQ(back.deadline_us, 12345u);
    EXPECT_EQ(back.id, h.id);
    EXPECT_FALSE(parseRequestHeader(frame.data() + 4, 15, &back));
}

TEST(Wire, ResponseHeaderRoundTrip)
{
    ResponseHeader h;
    h.status = Status::kRejectedBusy;
    h.cls = RequestClass::kAesCtrBlock;
    h.trap_kind = 3;
    h.aux_us = 777;
    h.id = 42;
    std::vector<uint8_t> frame;
    appendResponseFrame(frame, h, nullptr, 0);

    ResponseHeader back;
    ASSERT_TRUE(parseResponseHeader(frame.data() + 4, frame.size() - 4,
                                    &back));
    EXPECT_EQ(back.status, Status::kRejectedBusy);
    EXPECT_EQ(back.cls, RequestClass::kAesCtrBlock);
    EXPECT_EQ(back.trap_kind, 3);
    EXPECT_EQ(back.aux_us, 777u);
    EXPECT_EQ(back.id, 42u);
}

TEST(Wire, FrameReaderReassemblesByteAtATime)
{
    RequestHeader h;
    h.cls = RequestClass::kPing;
    std::vector<uint8_t> stream;
    std::vector<uint8_t> body1 = {0xaa};
    std::vector<uint8_t> body2 = {0xbb, 0xcc};
    h.id = 1;
    appendRequestFrame(stream, h, body1.data(), body1.size());
    h.id = 2;
    appendRequestFrame(stream, h, body2.data(), body2.size());

    FrameReader reader(kMaxRequestFrame);
    std::vector<std::vector<uint8_t>> frames;
    std::vector<uint8_t> payload;
    for (uint8_t byte : stream) {
        reader.feed(&byte, 1);
        while (reader.next(&payload) == FrameReader::Next::kFrame)
            frames.push_back(payload);
    }
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].size(), kHeaderBytes + 1);
    EXPECT_EQ(frames[0].back(), 0xaa);
    EXPECT_EQ(frames[1].size(), kHeaderBytes + 2);
    EXPECT_EQ(frames[1].back(), 0xcc);
    EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Wire, FrameReaderRejectsOversizedDeclaredLength)
{
    std::vector<uint8_t> evil;
    putU32(evil, kMaxRequestFrame + 1);
    FrameReader reader(kMaxRequestFrame);
    reader.feed(evil.data(), evil.size());
    std::vector<uint8_t> payload;
    EXPECT_EQ(reader.next(&payload), FrameReader::Next::kTooBig);
}

// ---- control plane ----

TEST(Service, PingEchoesBody)
{
    ServicePair sp(baseOptions(uniqueSocketPath()));
    RequestHeader h;
    h.cls = RequestClass::kPing;
    h.id = 99;
    std::vector<uint8_t> body = {1, 2, 3, 4, 5};
    Response resp;
    ASSERT_TRUE(sp.client.call(h, body, &resp));
    EXPECT_EQ(resp.header.status, Status::kOk);
    EXPECT_EQ(resp.header.cls, RequestClass::kPing);
    EXPECT_EQ(resp.header.id, 99u);
    EXPECT_EQ(resp.body, body);
}

TEST(Service, StatsServesConsistentCounters)
{
    ServicePair sp(baseOptions(uniqueSocketPath()));
    RequestHeader h;
    h.cls = RequestClass::kPing;
    for (uint64_t i = 0; i < 5; ++i) {
        h.id = i;
        Response resp;
        ASSERT_TRUE(sp.client.call(h, {}, &resp));
    }
    h.cls = RequestClass::kStats;
    h.id = 100;
    Response resp;
    ASSERT_TRUE(sp.client.call(h, {}, &resp));
    ASSERT_EQ(resp.header.status, Status::kOk);
    std::string doc(resp.body.begin(), resp.body.end());
    // The snapshot must already count its own response: 5 pings + this
    // stats request, all ok, all control-plane.
    EXPECT_NE(doc.find("\"requests_total\": 6"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"control_total\": 6"), std::string::npos);
    EXPECT_NE(doc.find("\"responses_ok_total\": 6"), std::string::npos);
    EXPECT_NE(doc.find("\"rs_synd\""), std::string::npos);
}

// ---- request classes: bit-identity ----

TEST(Service, RsSyndromeMatchesDirectEngineInvocation)
{
    ServicePair sp(baseOptions(uniqueSocketPath()));
    RSCode rs(8, 8);
    GFField f8(8);

    // The same jobs run directly on a private engine built from the
    // same kernel program — the service must be a transparent transport.
    BatchEngine direct(syndromeBatchProgram(f8, 255, 16),
                       BatchEngine::Options{});

    for (unsigned e = 0; e <= 8; ++e) {
        auto rx = noisyRsWord(rs, e, 9000 + e);
        RequestHeader h;
        h.cls = RequestClass::kRsSyndrome;
        h.id = e;
        Response resp;
        ASSERT_TRUE(sp.client.call(h, rsSyndromeBody(rx), &resp));
        ASSERT_EQ(resp.header.status, Status::kOk);

        auto results = direct.run(
            {syndromeJob(std::vector<GFElem>(rx.begin(), rx.end()), 16)});
        ASSERT_TRUE(results[0].ok());
        EXPECT_EQ(resp.body, results[0].bytes("synd"))
            << "service and direct engine disagree at e=" << e;
    }
}

TEST(Service, AesCtrBlockMatchesHostCipher)
{
    ServicePair sp(baseOptions(uniqueSocketPath()));
    Rng rng(77);
    for (unsigned i = 0; i < 4; ++i) {
        std::vector<uint8_t> key(16);
        for (auto &b : key)
            b = rng.nextByte();
        Aes aes(key);
        std::vector<uint8_t> rkeys;
        for (uint32_t word : aes.roundKeys())
            for (int b = 3; b >= 0; --b)
                rkeys.push_back(static_cast<uint8_t>(word >> (8 * b)));
        AesBlock counter;
        for (auto &b : counter)
            b = rng.nextByte();

        RequestHeader h;
        h.cls = RequestClass::kAesCtrBlock;
        h.id = i;
        Response resp;
        ASSERT_TRUE(sp.client.call(
            h,
            aesCtrBlockBody(rkeys, std::vector<uint8_t>(counter.begin(),
                                                        counter.end())),
            &resp));
        ASSERT_EQ(resp.header.status, Status::kOk);
        AesBlock ks = aes.encryptBlock(counter);
        EXPECT_EQ(resp.body,
                  std::vector<uint8_t>(ks.begin(), ks.end()));
    }
}

TEST(Service, EcdhSharedMatchesHostScalarMult)
{
    ServicePair sp(baseOptions(uniqueSocketPath()));
    EllipticCurve curve = EllipticCurve::nist("K-233");
    Rng rng(31337);
    for (unsigned i = 0; i < 2; ++i) {
        Gf2x k(1 + (rng.next64() & 0xffffffffull));
        EcPoint expect = curve.scalarMult(k, curve.basePoint());
        auto kw = gf2xBytes(k);
        kw.resize(16);

        RequestHeader h;
        h.cls = RequestClass::kEcdhShared;
        h.id = i;
        Response resp;
        ASSERT_TRUE(sp.client.call(
            h,
            ecdhSharedBody(gf2xBytes(curve.basePoint().x),
                           gf2xBytes(curve.basePoint().y), kw,
                           k.bitLength()),
            &resp));
        ASSERT_EQ(resp.header.status, Status::kOk);
        auto want = gf2xBytes(expect.x);
        auto wy = gf2xBytes(expect.y);
        want.insert(want.end(), wy.begin(), wy.end());
        EXPECT_EQ(resp.body, want);
    }
}

/** Drive the full decoder chain through the four single-kernel classes
 *  (syndrome -> BMA -> Chien -> Forney), applying the correction on
 *  the host: the staged wire classes must compose into a working
 *  decoder, same as the composite kRsDecode class. */
TEST(Service, SingleKernelClassesComposeIntoDecoder)
{
    ServicePair sp(baseOptions(uniqueSocketPath()));
    RSCode rs(8, 8);
    GFField f8(8);
    std::vector<GFElem> cw;
    auto rx = noisyRsWord(rs, 5, 424242, &cw);

    RequestHeader h;
    Response resp;
    h.cls = RequestClass::kRsSyndrome;
    h.id = 1;
    ASSERT_TRUE(sp.client.call(h, rsSyndromeBody(rx), &resp));
    ASSERT_EQ(resp.header.status, Status::kOk);
    std::vector<uint8_t> synd = resp.body;

    h.cls = RequestClass::kRsBma;
    h.id = 2;
    ASSERT_TRUE(sp.client.call(h, rsBmaBody(synd), &resp));
    ASSERT_EQ(resp.header.status, Status::kOk);
    // Response: 12B lambda || u32 llen.
    ASSERT_EQ(resp.body.size(), 16u);
    std::vector<uint8_t> lambda(resp.body.begin(), resp.body.begin() + 12);
    uint32_t llen = getU32(resp.body.data() + 12);
    EXPECT_EQ(llen, 5u);

    h.cls = RequestClass::kRsChien;
    h.id = 3;
    ASSERT_TRUE(sp.client.call(h, rsChienBody(lambda), &resp));
    ASSERT_EQ(resp.header.status, Status::kOk);
    ASSERT_EQ(resp.body.size(), 16u);
    std::vector<uint8_t> locs(resp.body.begin(), resp.body.begin() + 12);
    uint32_t nloc = getU32(resp.body.data() + 12);
    EXPECT_EQ(nloc, llen);

    h.cls = RequestClass::kRsForney;
    h.id = 4;
    ASSERT_TRUE(
        sp.client.call(h, rsForneyBody(synd, lambda, locs, nloc), &resp));
    ASSERT_EQ(resp.header.status, Status::kOk);
    ASSERT_EQ(resp.body.size(), 12u);

    std::vector<GFElem> fixed(rx.begin(), rx.end());
    for (uint32_t i = 0; i < nloc; ++i)
        fixed[locs[i]] ^= resp.body[i];
    EXPECT_EQ(fixed, cw) << "chained kernel classes failed to decode";
}

TEST(Service, RsDecodeCorrectsUpToTAndFlagsBeyond)
{
    ServicePair sp(baseOptions(uniqueSocketPath()));
    RSCode rs(8, 8);
    GFField f8(8);

    for (unsigned e = 0; e <= rs.t() + 1; ++e) {
        std::vector<GFElem> cw;
        auto rx = noisyRsWord(rs, e, 5000 + e, &cw);
        RequestHeader h;
        h.cls = RequestClass::kRsDecode;
        h.id = e;
        Response resp;
        ASSERT_TRUE(sp.client.call(h, rsDecodeBody(rx), &resp));
        ASSERT_EQ(resp.header.status, Status::kOk);
        ASSERT_EQ(resp.body.size(), 1u + 255u);
        if (e <= rs.t()) {
            EXPECT_EQ(resp.body[0], 1) << "e=" << e;
            EXPECT_TRUE(std::equal(cw.begin(), cw.end(),
                                   resp.body.begin() + 1))
                << "e=" << e;
        }
        else {
            // Beyond t the decoder must not claim success with a wrong
            // word: either it reports failure, or (rare miscorrection)
            // the returned word is still a valid codeword.
            if (resp.body[0] == 1) {
                std::vector<GFElem> got(resp.body.begin() + 1,
                                        resp.body.end());
                auto s = syndromes(f8, got, 2 * rs.t());
                EXPECT_TRUE(std::all_of(s.begin(), s.end(),
                                        [](GFElem v) { return v == 0; }));
            }
        }
    }
}

TEST(Service, BchDecodeCorrectsUpToT)
{
    ServicePair sp(baseOptions(uniqueSocketPath()));
    BCHCode bch(5, 5);
    for (unsigned e = 0; e <= bch.t(); ++e) {
        Rng rng(600 + e);
        std::vector<uint8_t> info(bch.k());
        for (auto &b : info)
            b = static_cast<uint8_t>(rng.below(2));
        auto cw = bch.encode(info);
        ExactErrorInjector inj(600 + e);
        auto rx = inj.flipBits(cw, e);

        RequestHeader h;
        h.cls = RequestClass::kBchDecode;
        h.id = e;
        Response resp;
        ASSERT_TRUE(sp.client.call(h, bchDecodeBody(rx), &resp));
        ASSERT_EQ(resp.header.status, Status::kOk);
        ASSERT_EQ(resp.body.size(), 1u + 31u);
        EXPECT_EQ(resp.body[0], 1) << "e=" << e;
        EXPECT_TRUE(
            std::equal(cw.begin(), cw.end(), resp.body.begin() + 1))
            << "e=" << e;
    }
}

TEST(Service, ErasureRepairSweepToMaxErasures)
{
    ServicePair sp(baseOptions(uniqueSocketPath()));
    RSCode rs(8, 8);
    for (unsigned e = 1; e <= kMaxErasures; ++e) {
        Rng rng(700 + e);
        std::vector<GFElem> info(rs.k());
        for (auto &s : info)
            s = rng.nextByte();
        auto cw = rs.encode(info);
        ExactErrorInjector inj(700 + e);
        auto positions = inj.pickPositions(rs.n(), e);
        auto rx = cw;
        for (unsigned pos : positions)
            rx[pos] ^= static_cast<GFElem>(1 + rng.below(255));

        RequestHeader h;
        h.cls = RequestClass::kRsErasure;
        h.id = e;
        Response resp;
        ASSERT_TRUE(sp.client.call(
            h,
            rsErasureBody(std::vector<uint8_t>(rx.begin(), rx.end()),
                          std::vector<uint8_t>(positions.begin(),
                                               positions.end())),
            &resp));
        ASSERT_EQ(resp.header.status, Status::kOk);
        ASSERT_EQ(resp.body.size(), 1u + 255u);
        EXPECT_EQ(resp.body[0], 1) << "e=" << e;
        EXPECT_TRUE(
            std::equal(cw.begin(), cw.end(), resp.body.begin() + 1))
            << "e=" << e;
    }
}

TEST(Service, TranslatedDispatchServesIdenticalBits)
{
    auto opts = baseOptions(uniqueSocketPath());
    opts.engine.dispatch = DispatchMode::kTranslated;
    ServicePair sp(std::move(opts));
    RSCode rs(8, 8);
    GFField f8(8);
    auto rx = noisyRsWord(rs, 3, 808080);

    RequestHeader h;
    h.cls = RequestClass::kRsSyndrome;
    h.id = 1;
    Response resp;
    ASSERT_TRUE(sp.client.call(h, rsSyndromeBody(rx), &resp));
    ASSERT_EQ(resp.header.status, Status::kOk);
    auto want = syndromes(f8, std::vector<GFElem>(rx.begin(), rx.end()),
                          2 * rs.t());
    EXPECT_EQ(resp.body, std::vector<uint8_t>(want.begin(), want.end()));
}

// ---- protocol errors, deadlines, backpressure, drain ----

TEST(Service, MalformedRequestsAnsweredWithoutClosing)
{
    ServicePair sp(baseOptions(uniqueSocketPath()));
    Response resp;

    RequestHeader h;
    h.cls = static_cast<RequestClass>(0x7f); // unknown class byte
    h.id = 1;
    ASSERT_TRUE(sp.client.call(h, {}, &resp));
    EXPECT_EQ(resp.header.status, Status::kUnknownClass);

    h = RequestHeader{};
    h.cls = RequestClass::kPing;
    h.flags = 1; // reserved, must be zero
    h.id = 2;
    ASSERT_TRUE(sp.client.call(h, {}, &resp));
    EXPECT_EQ(resp.header.status, Status::kBadRequest);

    h = RequestHeader{};
    h.version = kWireVersion + 1;
    h.cls = RequestClass::kPing;
    h.id = 3;
    ASSERT_TRUE(sp.client.call(h, {}, &resp));
    EXPECT_EQ(resp.header.status, Status::kBadRequest);

    h = RequestHeader{};
    h.cls = RequestClass::kRsSyndrome; // body must be exactly 255B
    h.id = 4;
    ASSERT_TRUE(sp.client.call(h, std::vector<uint8_t>(17), &resp));
    EXPECT_EQ(resp.header.status, Status::kBadRequest);

    h = RequestHeader{};
    h.cls = RequestClass::kRsErasure; // duplicate erasure positions
    h.id = 5;
    std::vector<uint8_t> rx(255, 0);
    ASSERT_TRUE(sp.client.call(h, rsErasureBody(rx, {7, 7}), &resp));
    EXPECT_EQ(resp.header.status, Status::kBadRequest);

    // The connection survives every answered error.
    h = RequestHeader{};
    h.cls = RequestClass::kPing;
    h.id = 6;
    ASSERT_TRUE(sp.client.call(h, {}, &resp));
    EXPECT_EQ(resp.header.status, Status::kOk);
}

TEST(Service, TruncatedHeaderClosesConnection)
{
    ServicePair sp(baseOptions(uniqueSocketPath()));
    // An 8-byte payload cannot hold the 16-byte header: protocol error,
    // connection-fatal (there is no id to answer on).
    std::vector<uint8_t> frame;
    putU32(frame, 8);
    frame.resize(frame.size() + 8, 0);
    sp.client.queueRaw(frame.data(), frame.size());
    ASSERT_TRUE(sp.client.flush());
    Response resp;
    EXPECT_FALSE(sp.client.recvResponse(&resp, 5000));
    EXPECT_EQ(sp.client.lastError(), Client::Error::kClosed);

    // A fresh connection is unaffected.
    Client fresh;
    ASSERT_TRUE(fresh.connectUnix(sp.path));
    RequestHeader h;
    h.cls = RequestClass::kPing;
    ASSERT_TRUE(fresh.call(h, {}, &resp));
    EXPECT_EQ(resp.header.status, Status::kOk);
}

TEST(Service, OversizedFrameClosesConnection)
{
    ServicePair sp(baseOptions(uniqueSocketPath()));
    std::vector<uint8_t> frame;
    putU32(frame, kMaxRequestFrame + 1);
    sp.client.queueRaw(frame.data(), frame.size());
    ASSERT_TRUE(sp.client.flush());
    Response resp;
    EXPECT_FALSE(sp.client.recvResponse(&resp, 5000));
    EXPECT_EQ(sp.client.lastError(), Client::Error::kClosed);
}

TEST(Service, RandomFrameFuzzNeverKillsServer)
{
    ServicePair sp(baseOptions(uniqueSocketPath()));
    Rng rng(0xf022);
    Response resp;
    for (unsigned round = 0; round < 64; ++round) {
        Client fuzz;
        ASSERT_TRUE(fuzz.connectUnix(sp.path));
        // A burst of random frames with valid length prefixes: random
        // headers, random classes, random bodies.  The server must
        // answer or close — never crash, never stall.
        for (unsigned i = 0; i < 4; ++i) {
            std::vector<uint8_t> payload(rng.below(64));
            for (auto &b : payload)
                b = rng.nextByte();
            std::vector<uint8_t> frame;
            putU32(frame, static_cast<uint32_t>(payload.size()));
            frame.insert(frame.end(), payload.begin(), payload.end());
            fuzz.queueRaw(frame.data(), frame.size());
        }
        if (!fuzz.flush())
            continue;
        while (fuzz.recvResponse(&resp, 200)) {
        }
    }
    // The server is still fully functional afterwards.
    RequestHeader h;
    h.cls = RequestClass::kPing;
    ASSERT_TRUE(sp.client.call(h, {1}, &resp));
    EXPECT_EQ(resp.header.status, Status::kOk);
}

TEST(Service, DeadlineExpiryIsReportedNotServed)
{
    ServicePair sp(baseOptions(uniqueSocketPath()));
    RSCode rs(8, 8);
    auto rx = noisyRsWord(rs, 4, 1234);
    RequestHeader h;
    h.cls = RequestClass::kRsSyndrome;
    h.deadline_us = 1; // any engine round trip takes longer than 1us
    h.id = 55;
    Response resp;
    ASSERT_TRUE(sp.client.call(h, rsSyndromeBody(rx), &resp));
    EXPECT_EQ(resp.header.status, Status::kDeadlineExpired);
    EXPECT_TRUE(resp.body.empty());
    EXPECT_GE(resp.header.aux_us, 1u); // server-side elapsed time
}

TEST(Service, BackpressureRejectsPastWatermarkExactlyOnceEach)
{
    auto opts = baseOptions(uniqueSocketPath());
    opts.admission_watermark = 2; // tiny: force rejections
    opts.max_batch = 4;
    ServicePair sp(std::move(opts));

    // Slow poison: full-length 127-bit ECDH scalars serialize behind a
    // single fused worker while the burst keeps arriving.
    EllipticCurve curve = EllipticCurve::nist("K-233");
    Gf2x k(std::vector<uint64_t>{0x1234567890abcdefull,
                                 0x7fffffffffffffffull});
    ASSERT_EQ(k.bitLength(), 127u);
    auto kw = gf2xBytes(k);
    kw.resize(16);
    auto body = ecdhSharedBody(gf2xBytes(curve.basePoint().x),
                               gf2xBytes(curve.basePoint().y), kw,
                               k.bitLength());

    const unsigned kBurst = 96;
    for (unsigned i = 0; i < kBurst; ++i) {
        RequestHeader h;
        h.cls = RequestClass::kEcdhShared;
        h.id = i;
        sp.client.queueRequest(h, body);
    }
    ASSERT_TRUE(sp.client.flush());

    std::set<uint64_t> answered;
    uint64_t ok = 0, rejected = 0;
    Response resp;
    for (unsigned i = 0; i < kBurst; ++i) {
        ASSERT_TRUE(sp.client.recvResponse(&resp, 60000))
            << "response " << i << " missing";
        EXPECT_TRUE(answered.insert(resp.header.id).second)
            << "duplicate response for id " << resp.header.id;
        if (resp.header.status == Status::kOk) {
            ++ok;
            EXPECT_EQ(resp.body.size(), 64u);
        }
        else {
            ASSERT_EQ(resp.header.status, Status::kRejectedBusy);
            ++rejected;
            EXPECT_GT(resp.header.aux_us, 0u)
                << "busy rejection must carry a retry-after hint";
            EXPECT_TRUE(resp.body.empty());
        }
    }
    EXPECT_EQ(answered.size(), kBurst);
    EXPECT_GT(ok, 0u);
    EXPECT_GT(rejected, 0u) << "watermark 2 with a 96-burst must reject";
}

TEST(Service, GracefulDrainAnswersEveryAdmittedRequestOnce)
{
    auto path = uniqueSocketPath();
    Server server(baseOptions(path));
    server.start();

    Client client;
    ASSERT_TRUE(client.connectUnix(path));
    RSCode rs(8, 8);
    const unsigned kBurst = 48;
    for (unsigned i = 0; i < kBurst; ++i) {
        RequestHeader h;
        h.cls = RequestClass::kRsDecode;
        h.id = i;
        h.deadline_us = 0;
        client.queueRequest(h, rsDecodeBody(noisyRsWord(rs, i % 9, i)));
    }
    ASSERT_TRUE(client.flush());

    // Drain concurrently with the in-flight burst: admitted requests
    // must flush, late ones answer kShuttingDown, none answer twice.
    std::thread drainer([&] { server.drain(); });

    std::set<uint64_t> answered;
    Response resp;
    while (client.recvResponse(&resp, 10000)) {
        EXPECT_TRUE(answered.insert(resp.header.id).second)
            << "duplicate response for id " << resp.header.id;
        EXPECT_TRUE(resp.header.status == Status::kOk ||
                    resp.header.status == Status::kShuttingDown ||
                    resp.header.status == Status::kRejectedBusy)
            << statusName(resp.header.status);
    }
    drainer.join();
    client.close();
    EXPECT_TRUE(server.countersConsistent())
        << "drain broke the exactly-once accounting";
}

TEST(Service, TcpListenerServesTheSameProtocol)
{
    Server::Options opts;
    opts.tcp_port = 0; // ephemeral
    opts.engine.threads = 1;
    opts.quiet = true;
    Server server(std::move(opts));
    server.start();
    ASSERT_GT(server.tcpPort(), 0);

    Client client;
    ASSERT_TRUE(client.connectTcp("127.0.0.1", server.tcpPort()));
    RSCode rs(8, 8);
    GFField f8(8);
    auto rx = noisyRsWord(rs, 2, 321);
    RequestHeader h;
    h.cls = RequestClass::kRsSyndrome;
    h.id = 7;
    Response resp;
    ASSERT_TRUE(client.call(h, rsSyndromeBody(rx), &resp));
    ASSERT_EQ(resp.header.status, Status::kOk);
    auto want = syndromes(f8, std::vector<GFElem>(rx.begin(), rx.end()),
                          2 * rs.t());
    EXPECT_EQ(resp.body, std::vector<uint8_t>(want.begin(), want.end()));

    client.close();
    server.drain();
    EXPECT_TRUE(server.countersConsistent());
}

TEST(Service, UnixPlusEphemeralTcpOpensBothListeners)
{
    auto opts = baseOptions(uniqueSocketPath());
    opts.tcp_port = 0; // ephemeral — must not be read as "disabled"
    std::string path = opts.unix_path;
    Server server(std::move(opts));
    server.start();
    ASSERT_GT(server.tcpPort(), 0);

    Client over_unix, over_tcp;
    ASSERT_TRUE(over_unix.connectUnix(path));
    ASSERT_TRUE(over_tcp.connectTcp("127.0.0.1", server.tcpPort()));
    for (Client *client : {&over_unix, &over_tcp}) {
        RequestHeader h;
        h.cls = RequestClass::kPing;
        h.id = 1;
        Response resp;
        ASSERT_TRUE(client->call(h, {0xab}, &resp));
        EXPECT_EQ(resp.header.status, Status::kOk);
    }
    over_unix.close();
    over_tcp.close();
    server.drain();
    EXPECT_TRUE(server.countersConsistent());
}

TEST(Service, DisconnectedConnectionsArePruned)
{
    auto opts = baseOptions(uniqueSocketPath());
    std::string path = opts.unix_path;
    Server server(std::move(opts));
    server.start();

    const unsigned kChurn = 32;
    for (unsigned i = 0; i < kChurn; ++i) {
        Client client;
        ASSERT_TRUE(client.connectUnix(path));
        RequestHeader h;
        h.cls = RequestClass::kPing;
        h.id = i;
        Response resp;
        ASSERT_TRUE(client.call(h, {}, &resp));
        client.close();
    }

    // Readers notice the EOFs asynchronously; the gauge must converge
    // to zero without drain() (the leak the gauge would otherwise hide).
    double active = -1;
    for (unsigned spin = 0; spin < 500; ++spin) {
        active = server.metrics().gauge("connections_active");
        if (active == 0)
            break;
        usleep(10 * 1000);
    }
    EXPECT_EQ(active, 0) << "disconnected connections never pruned";
    EXPECT_EQ(server.metrics().counter("connections_total"), kChurn);

    server.drain();
    EXPECT_TRUE(server.countersConsistent());
}

TEST(Service, KernelProducedLocationsAreRangeChecked)
{
    // Chien locations are kernel output and therefore untrusted: a
    // buggy/miscompiled kernel reporting a location past n must fail
    // the decode, not index past the host-side codeword buffer.
    BatchEngine::Options eopts;
    eopts.threads = 1;
    EngineSet engines(eopts);

    RequestExec ex;
    ex.cls = RequestClass::kBchDecode;
    ex.stage = 3;
    ex.work.assign(kBchN, 0);
    ex.llen = 2;

    JobResult res;
    res.outputs["locs"] = std::vector<uint8_t>(12, 0);
    res.outputs["locs"][0] = 200; // far past n = 31
    res.outputs["locs"][1] = 3;
    res.words["nloc"] = 2;

    StepResult step = advance(engines, ex, &res);
    ASSERT_TRUE(step.done);
    EXPECT_EQ(step.status, Status::kOk);
    ASSERT_FALSE(step.response.empty());
    EXPECT_EQ(step.response[0], 0) << "OOB location must fail decode";

    // Same guard on the Forney path: fewer error values than claimed
    // locations must fail the decode, not read past evals.
    RequestExec rs;
    rs.cls = RequestClass::kRsDecode;
    rs.stage = 4;
    rs.work.assign(kRsN, 0);
    rs.locs = {1, 2};
    rs.nloc = 2;

    JobResult forney;
    forney.outputs["evals"] = {0x5a}; // one eval, two locations
    StepResult fstep = advance(engines, rs, &forney);
    ASSERT_TRUE(fstep.done);
    EXPECT_EQ(fstep.status, Status::kOk);
    ASSERT_FALSE(fstep.response.empty());
    EXPECT_EQ(fstep.response[0], 0) << "short evals must fail decode";
}

TEST(Service, StaleSocketFileIsReclaimed)
{
    std::string path = uniqueSocketPath();
    // Fabricate a crash leftover: a bound-then-abandoned socket file.
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ::close(fd);

    ServicePair sp(baseOptions(path));
    RequestHeader h;
    h.cls = RequestClass::kPing;
    h.id = 9;
    Response resp;
    ASSERT_TRUE(sp.client.call(h, {}, &resp));
    EXPECT_EQ(resp.header.status, Status::kOk);
}

// ---- serving-layer helpers ----

TEST(ServiceHelpers, QuantileExactWhenMassInOneBucket)
{
    Metrics m;
    for (unsigned i = 0; i < 1000; ++i)
        m.observe("lat", 100.0);
    auto h = m.histogram("lat");
    EXPECT_DOUBLE_EQ(Metrics::quantile(h, 0.5), 100.0);
    EXPECT_DOUBLE_EQ(Metrics::quantile(h, 0.99), 100.0);
}

TEST(ServiceHelpers, QuantileMonotoneAndBounded)
{
    Metrics m;
    Rng rng(5);
    double lo = 1e30, hi = 0;
    for (unsigned i = 0; i < 5000; ++i) {
        double v = 1.0 + static_cast<double>(rng.below(100000));
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        m.observe("lat", v);
    }
    auto h = m.histogram("lat");
    double prev = 0;
    for (double q : {0.1, 0.25, 0.5, 0.9, 0.99}) {
        double est = Metrics::quantile(h, q);
        EXPECT_GE(est, prev) << "q=" << q;
        EXPECT_GE(est, lo);
        EXPECT_LE(est, hi);
        prev = est;
    }
    // Uniform over [1, 1e5]: the p50 estimate must land within the
    // factor-of-2 bound of the true median.
    double p50 = Metrics::quantile(h, 0.5);
    EXPECT_GT(p50, 25000.0);
    EXPECT_LT(p50, 100000.0);
}

TEST(ServiceHelpers, GilbertElliottArrivalsAreBurstyAndDeterministic)
{
    GilbertElliottArrivals a(0.5, 0.1, 100, 4000, 99);
    GilbertElliottArrivals b(0.5, 0.1, 100, 4000, 99);
    auto ta = a.generate(20.0);
    auto tb = b.generate(20.0);
    EXPECT_EQ(ta, tb) << "same seed must reproduce the same trace";
    ASSERT_FALSE(ta.empty());
    EXPECT_TRUE(std::is_sorted(ta.begin(), ta.end()));
    EXPECT_GE(ta.front(), 0.0);
    EXPECT_LT(ta.back(), 20.0);
    EXPECT_GT(a.badFraction(), 0.0);
    EXPECT_LT(a.badFraction(), 0.6);

    // Mean offered rate must sit between the two state rates and well
    // above the good-state rate alone (bursts dominate the count).
    double rate = static_cast<double>(ta.size()) / 20.0;
    EXPECT_GT(rate, 100.0);
    EXPECT_LT(rate, 4000.0);

    GilbertElliottArrivals c(0.5, 0.1, 100, 4000, 100);
    EXPECT_NE(ta, c.generate(20.0)) << "different seed, different trace";
}

} // namespace
} // namespace gfp::service
