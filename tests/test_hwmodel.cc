/**
 * @file
 * Tests for the hardware cost model: the Table 2 / Table 4 closed
 * forms must match the gate-by-gate accounting, and the Table 3/10/11
 * calibration constants must be internally consistent with the paper.
 */

#include <gtest/gtest.h>

#include "hwmodel/resource_models.h"
#include "hwmodel/synthesis.h"

namespace gfp {
namespace {

TEST(ResourceModel, Table2ClosedFormsMatchGateCounts)
{
    for (unsigned m = 2; m <= 16; ++m) {
        EXPECT_NEAR(systolicMultCost(m).areaUnits(),
                    systolicMultAreaClosedForm(m), 1e-9)
            << "m=" << m;
        // The paper drops the +2.25 constant term in its closed form.
        EXPECT_NEAR(linearTransformMultCost(m).areaUnits(),
                    linearMultAreaClosedForm(m) + 2.25, 1e-9)
            << "m=" << m;
    }
}

TEST(ResourceModel, Table2ThisWorkIsSmaller)
{
    for (unsigned m = 2; m <= 16; ++m) {
        EXPECT_LT(linearTransformMultCost(m).areaUnits(),
                  systolicMultCost(m).areaUnits());
    }
    // At m=8 the systolic multiplier is ~2.6x larger.
    double ratio = systolicMultAreaClosedForm(8) /
                   linearMultAreaClosedForm(8);
    EXPECT_GT(ratio, 2.5);
    EXPECT_LT(ratio, 3.0);
}

TEST(ResourceModel, Table2ConfigCostInverts)
{
    // The price of the single-step reduction: a larger shared config
    // register (m(m-1) vs m flip-flops) — amortized across all ALUs.
    EXPECT_EQ(systolicMultConfigFf(8), 8);
    EXPECT_EQ(linearMultConfigFf(8), 56); // the 56-bit P matrix
}

TEST(ResourceModel, Table4ClosedFormsMatch)
{
    for (unsigned m = 2; m <= 16; ++m) {
        // m^2 coefficients only (the paper's own approximation).
        double md = m;
        EXPECT_NEAR(systolicInverseAreaClosedForm(m), 57.0 * md * md,
                    1e-9);
        EXPECT_NEAR(itaInverseAreaClosedForm(m), 48.75 * md * md, 1e-9);
        // Exact accounting stays below the systolic design.
        EXPECT_LT(itaInverseCost(m).areaUnits(),
                  systolicEuclidInverseCost(m).areaUnits())
            << "m=" << m;
    }
}

TEST(ResourceModel, Table4M2CoefficientsAreExact)
{
    // Verify the m^2 coefficients by finite differencing the exact
    // gate counts.
    auto quad_coeff = [](double f2, double f4) {
        // f(m) = a m^2 + b m + c  =>  a = (f(4) - 2 f(2)) / 8 ... use
        // three points instead.
        return (f4 - 2 * f2) / 8.0;
    };
    (void)quad_coeff;
    double a_sys = (systolicEuclidInverseCost(16).areaUnits() -
                    2 * systolicEuclidInverseCost(8).areaUnits()) /
                   128.0;
    double a_ita = (itaInverseCost(16).areaUnits() -
                    2 * itaInverseCost(8).areaUnits()) / 128.0;
    EXPECT_NEAR(a_sys, 57.0, 0.5);
    EXPECT_NEAR(a_ita, 48.75, 0.5);
}

TEST(Synthesis, Table3ArraysAreConsistent)
{
    GfauSynthesis g;
    // 16 multipliers at 199.59 um^2 = 3193.44; the paper prints 3193.
    EXPECT_NEAR(g.multArrayArea(), 3193.0, 1.0);
    EXPECT_NEAR(g.squareArrayArea(), 1777.0, 1.0);
    // A multiplier is ~3.1x the area of a square unit — why squares
    // are a separate primitive.
    EXPECT_NEAR(g.mult.area_um2 / g.square.area_um2, 3.14, 0.1);
}

TEST(Synthesis, Table10PrintedTotalDiscrepancy)
{
    // The published total (5760) is less than the column sum (5975);
    // we keep both and report the difference explicitly.
    GfauSynthesis g;
    EXPECT_NEAR(g.columnSumArea(), 5975.4, 1.0);
    EXPECT_EQ(g.total_area_um2, 5760.0);
}

TEST(Synthesis, Table11Composition)
{
    ProcessorSynthesis p;
    EXPECT_EQ(p.shell_comb_gates + p.shell_rf_gates, p.shell_total_gates);
    EXPECT_EQ(p.shell_comb_area_um2 + p.shell_rf_area_um2,
              p.shell_total_area_um2);
    EXPECT_EQ(p.shell_total_gates + p.gfau_gates, p.total_gates);
    EXPECT_EQ(p.shell_total_area_um2 + p.gfau_area_um2,
              p.total_area_um2);
    EXPECT_EQ(p.shell_power_uw + p.gfau_power_uw, p.total_power_uw);
}

TEST(Synthesis, VoltageScaling)
{
    ProcessorSynthesis p;
    // SPICE-measured gain is 1.86x.
    EXPECT_NEAR(p.voltageScalingEnergyGain(), 1.86, 0.01);
    // Dynamic-only V^2 scaling under-predicts the gain (no leakage /
    // margin modeling): 431 * (0.7/0.9)^2 = 260.7 uW vs SPICE 231.
    EXPECT_NEAR(p.dynamicScaledPowerUw(0.7), 260.7, 0.5);
    EXPECT_GT(p.dynamicScaledPowerUw(0.7), p.total_power_uw_at_07v);
}

TEST(Synthesis, EnergyPerBitMatchesPaperHeadline)
{
    // 431 uW at 12.2 Mbps is 35.3 pJ/b; the paper rounds to 35.5.
    ProcessorSynthesis p;
    Literature lit;
    double pj = p.energyPerBitPj(lit.paper_aes_throughput_mbps);
    EXPECT_NEAR(pj, lit.paper_aes_pj_per_bit, 0.4);
}

TEST(Synthesis, ThroughputHelper)
{
    ProcessorSynthesis p;
    // 128 bits in 1049 cycles at 100 MHz = 12.2 Mbps (paper headline).
    EXPECT_NEAR(p.throughputMbps(128, 1049), 12.2, 0.05);
}

TEST(Synthesis, Table12AreaComparison)
{
    GfauSynthesis g;
    ProcessorSynthesis p;
    Literature lit;
    // Our GFAU (both directions) is smaller than NanoAES enc+dec.
    EXPECT_LT(g.total_area_um2, lit.nano_aes.total_area);
    // "63.5% additional area in total" for the whole processor.
    double extra = (p.total_area_um2 - lit.nano_aes.total_area) /
                   lit.nano_aes.total_area;
    EXPECT_NEAR(extra, 0.635, 0.01);
}

TEST(Synthesis, Table13EnergyGapVsAsic)
{
    Literature lit;
    // ~6x more energy per bit than the Zhang ASIC.
    double gap = lit.paper_aes_pj_per_bit / lit.zhang_aes.pj_per_bit;
    EXPECT_GT(gap, 5.0);
    EXPECT_LT(gap, 6.5);
}

TEST(Synthesis, PaperVsMeasuredRowRenders)
{
    std::string row = paperVsMeasuredRow("mult cycles", 599, 619, "cyc");
    EXPECT_NE(row.find("599"), std::string::npos);
    EXPECT_NE(row.find("619"), std::string::npos);
    EXPECT_NE(row.find("1.03"), std::string::npos);
}

} // namespace
} // namespace gfp
