/**
 * @file
 * Regression guard for the user-facing sample programs in
 * examples/progs/: they must assemble, run to HALT, and produce the
 * documented results.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "sim/machine.h"

#ifndef GFP_SOURCE_DIR
#define GFP_SOURCE_DIR "."
#endif

namespace gfp {
namespace {

std::string
readProgram(const std::string &name)
{
    std::string path =
        std::string(GFP_SOURCE_DIR) + "/examples/progs/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(SamplePrograms, DotProduct)
{
    Machine m(readProgram("dot_product.s"), CoreKind::kGfProcessor);
    m.runOk();
    // Independently verified GF(2^8)/0x11d dot product of the two
    // vectors baked into the program.
    EXPECT_EQ(m.core().reg(0), 0xe2u);
}

TEST(SamplePrograms, FieldSwitch)
{
    Machine m(readProgram("field_switch.s"), CoreKind::kGfProcessor);
    m.runOk();
    EXPECT_EQ(m.core().reg(2), 0x01u); // 0x13 and 0x1d are inverses
    EXPECT_EQ(m.core().reg(4), 0xc1u); // FIPS-197: {57} x {83}
}

} // namespace
} // namespace gfp
