/**
 * @file
 * Tests for Gf2x big binary polynomials: the carry-less multiply
 * (schoolbook over 32-bit partial products, and Karatsuba), squaring,
 * reduction, and division.
 */

#include <gtest/gtest.h>

#include "gf/clmul.h"
#include "gf/gf2x.h"

namespace gfp {
namespace {

/** Runs each test body twice: hardware-detected clmul, then the
 *  portable software kernel, so both backends are exercised on every
 *  host regardless of CPU features. */
class ClmulBackends : public ::testing::TestWithParam<bool>
{
  protected:
    void SetUp() override { setClmulPortableOnly(GetParam()); }
    void TearDown() override { setClmulPortableOnly(false); }
};

INSTANTIATE_TEST_SUITE_P(HwAndPortable, ClmulBackends,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &info) {
                             return info.param ? "portable" : "detected";
                         });

TEST_P(ClmulBackends, WideMatchesBitSerialReference)
{
    uint64_t x = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 2000; ++i) {
        // splitmix64-style sequence for reproducible operands
        auto next = [&x] {
            x += 0x9e3779b97f4a7c15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            return z ^ (z >> 31);
        };
        uint64_t a = next(), b = next();
        if (i < 4) { // pin the edge cases
            a = (i & 1) ? ~0ull : 0;
            b = (i & 2) ? ~0ull : 1;
        }
        uint64_t hi, lo;
        clmulWide(a, b, hi, lo);
        // Reference: bit-serial 64x64 carry-less multiply.
        uint64_t rlo = 0, rhi = 0;
        for (unsigned k = 0; k < 64; ++k) {
            if ((b >> k) & 1) {
                rlo ^= a << k;
                if (k)
                    rhi ^= a >> (64 - k);
            }
        }
        ASSERT_EQ(lo, rlo) << "a=" << a << " b=" << b;
        ASSERT_EQ(hi, rhi) << "a=" << a << " b=" << b;
    }
}

TEST_P(ClmulBackends, MulClmulMatchesSchoolbook)
{
    for (uint64_t seed = 0; seed < 40; ++seed) {
        unsigned bits_a = 1 + (seed * 67) % 700;
        unsigned bits_b = 1 + (seed * 129) % 700;
        Gf2x a = Gf2x::random(bits_a, seed * 2 + 41);
        Gf2x b = Gf2x::random(bits_b, seed * 2 + 42);
        EXPECT_EQ(a.mulClmul(b), a.mulSchoolbook(b)) << "seed=" << seed;
    }
    EXPECT_TRUE(Gf2x().mulClmul(Gf2x::random(100, 1)).isZero());
    EXPECT_TRUE(Gf2x::random(100, 1).mulClmul(Gf2x()).isZero());
}

TEST(Clmul, BackendReportsName)
{
    ClmulBackendInfo info = clmulBackend();
    EXPECT_FALSE(std::string(info.name).empty());
    setClmulPortableOnly(true);
    EXPECT_FALSE(clmulBackend().accelerated);
    setClmulPortableOnly(false);
}

TEST(Gf2x, BasicConstruction)
{
    Gf2x z;
    EXPECT_TRUE(z.isZero());
    EXPECT_EQ(z.degree(), -1);

    Gf2x one(uint64_t{1});
    EXPECT_TRUE(one.isOne());

    Gf2x m = Gf2x::monomial(233);
    EXPECT_EQ(m.degree(), 233);
    EXPECT_EQ(m.getBit(233), 1u);
    EXPECT_EQ(m.getBit(232), 0u);
}

TEST(Gf2x, FromExponents)
{
    Gf2x k233 = Gf2x::fromExponents({233, 74, 0});
    EXPECT_EQ(k233.degree(), 233);
    EXPECT_EQ(k233.getBit(74), 1u);
    EXPECT_EQ(k233.getBit(0), 1u);
    EXPECT_EQ(k233.getBit(73), 0u);
}

TEST(Gf2x, ShiftRoundTrip)
{
    Gf2x p = Gf2x::random(200, 1);
    for (unsigned k : {1u, 31u, 32u, 64u, 65u, 130u}) {
        EXPECT_EQ(p.shiftLeft(k).shiftRight(k), p) << "k=" << k;
        EXPECT_EQ(p.shiftLeft(k).degree(), p.degree() + static_cast<int>(k));
    }
}

TEST(Gf2x, TruncatedKeepsLowBits)
{
    Gf2x p = Gf2x::random(100, 2);
    Gf2x t = p.truncated(40);
    for (unsigned i = 0; i < 40; ++i)
        EXPECT_EQ(t.getBit(i), p.getBit(i));
    EXPECT_LT(t.degree(), 40);
    // p == trunc + (p >> 40) << 40
    EXPECT_EQ(t ^ p.shiftRight(40).shiftLeft(40), p);
}

TEST(Gf2x, MulSmallKnownValues)
{
    // (x + 1)(x^2 + x + 1) = x^3 + 1
    Gf2x a(0b11), b(0b111);
    EXPECT_EQ(a * b, Gf2x(0b1001));
    EXPECT_TRUE((a * Gf2x()).isZero());
    EXPECT_EQ(a * Gf2x(uint64_t{1}), a);
}

TEST(Gf2x, SchoolbookPartialProductCount)
{
    // 233-bit operands occupy 8 32-bit limbs; the direct product issues
    // 64 gf32bMult operations — the count in the paper's Table 7.
    Gf2x a = Gf2x::random(233, 3), b = Gf2x::random(233, 4);
    unsigned count = 0;
    a.mulSchoolbook(b, &count);
    EXPECT_EQ(count, 64u);
}

TEST(Gf2x, KaratsubaPartialProductCount)
{
    // Two Karatsuba levels: 3 * 3 * (4 limbs x 4 limbs schoolbook /4)
    // = 9 blocks of 2x2 = 36 partial products.
    Gf2x a = Gf2x::random(233, 5), b = Gf2x::random(233, 6);
    unsigned count = 0;
    a.mulKaratsuba(b, 2, &count);
    EXPECT_EQ(count, 36u);
}

TEST(Gf2x, KaratsubaMatchesSchoolbook)
{
    for (uint64_t seed = 0; seed < 30; ++seed) {
        unsigned bits_a = 1 + (seed * 37) % 500;
        unsigned bits_b = 1 + (seed * 91) % 500;
        Gf2x a = Gf2x::random(bits_a, seed * 2 + 1);
        Gf2x b = Gf2x::random(bits_b, seed * 2 + 2);
        for (unsigned levels : {1u, 2u, 3u}) {
            EXPECT_EQ(a.mulKaratsuba(b, levels), a.mulSchoolbook(b))
                << "seed=" << seed << " levels=" << levels;
        }
    }
}

TEST(Gf2x, MulCommutativeAssociativeDistributive)
{
    Gf2x a = Gf2x::random(150, 7);
    Gf2x b = Gf2x::random(200, 8);
    Gf2x c = Gf2x::random(100, 9);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b ^ c), (a * b) ^ (a * c));
}

TEST(Gf2x, SquareMatchesSelfMultiply)
{
    for (uint64_t seed = 0; seed < 20; ++seed) {
        Gf2x a = Gf2x::random(1 + (seed * 53) % 600, seed + 100);
        EXPECT_EQ(a.square(), a * a) << "seed=" << seed;
    }
    EXPECT_TRUE(Gf2x().square().isZero());
}

TEST(Gf2x, SquareSpreadsBits)
{
    Gf2x a = Gf2x::fromExponents({0, 5, 100});
    Gf2x sq = a.square();
    EXPECT_EQ(sq, Gf2x::fromExponents({0, 10, 200}));
}

TEST(Gf2x, DivModRoundTrip)
{
    for (uint64_t seed = 0; seed < 30; ++seed) {
        Gf2x a = Gf2x::random(300, seed + 1);
        Gf2x b = Gf2x::random(1 + (seed * 13) % 150, seed + 500);
        if (b.isZero())
            continue;
        Gf2x q, r;
        a.divmod(b, q, r);
        EXPECT_LT(r.degree(), b.degree());
        EXPECT_EQ((q * b) ^ r, a);
        EXPECT_EQ(a.mod(b), r);
    }
}

TEST(Gf2x, GcdBasics)
{
    Gf2x a = Gf2x::random(80, 11);
    EXPECT_EQ(Gf2x::gcd(a, Gf2x()), a);
    // gcd(p*q, p*r) is divisible by p
    Gf2x p = Gf2x::fromExponents({5, 2, 0});
    Gf2x q = Gf2x::fromExponents({7, 1, 0});
    Gf2x r = Gf2x::fromExponents({6, 3, 0});
    Gf2x g = Gf2x::gcd(p * q, p * r);
    EXPECT_TRUE((g.mod(p)).isZero());
}

TEST(Gf2x, Words32RoundTrip)
{
    Gf2x a = Gf2x::random(233, 21);
    auto w = a.toWords32(8);
    EXPECT_EQ(w.size(), 8u);
    EXPECT_EQ(Gf2x::fromWords32(w), a);
}

TEST(Gf2x, HexRoundTrip)
{
    Gf2x a = Gf2x::random(233, 31);
    EXPECT_EQ(Gf2x::fromHexString(a.toHexString()), a);
    EXPECT_EQ(Gf2x::fromHexString("11b"), Gf2x(0x11b));
    EXPECT_EQ(Gf2x(0x11b).toHexString(), "11b");
}

} // namespace
} // namespace gfp
