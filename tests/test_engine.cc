/**
 * @file
 * Batch execution engine tests: parallel/serial bit-for-bit parity,
 * trap isolation across recycled machines, injected-SEU jobs inside a
 * concurrent batch, result ordering, worker statistics, and the
 * Machine::fullReset() rerun contract the engine is built on.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "coding/channel.h"
#include "coding/rs.h"
#include "common/random.h"
#include "engine/batch_engine.h"
#include "kernels/batch_kernels.h"
#include "kernels/coding_kernels.h"
#include "sim/machine.h"

namespace gfp {
namespace {

/** A deterministic batch of noisy RS(255,239) syndrome jobs. */
std::vector<Job>
makeSyndromeJobs(unsigned count, uint64_t seed)
{
    RSCode code(8, 8);
    Rng rng(seed);
    std::vector<Job> jobs;
    for (unsigned j = 0; j < count; ++j) {
        std::vector<GFElem> info(code.k());
        for (auto &s : info)
            s = rng.nextByte();
        ExactErrorInjector inj(seed + j);
        auto rx = inj.corruptSymbols(code.encode(info),
                                     j % (code.t() + 1), 8);
        jobs.push_back(syndromeJob(rx, 2 * code.t()));
    }
    return jobs;
}

BatchProgram
syndromeProgram()
{
    GFField f(8);
    return syndromeBatchProgram(f, 255, 16);
}

/** A config-register upset early in the run: the m field of the live
 *  GFAU register picks up a bit and the next GF instruction must trap
 *  GfConfigCorrupt (m=8 -> flipping bit 57 yields m=10, invalid). */
FaultEvent
configKillEvent()
{
    return FaultEvent{/*cycle=*/40, FaultTarget::kConfigReg,
                      /*index=*/0, /*bit=*/57};
}

TEST(BatchEngine, ParallelMatchesSerialBitForBit)
{
    auto jobs = makeSyndromeJobs(64, 42);
    BatchEngine eng(syndromeProgram(), BatchEngine::Options{.threads = 4});
    auto serial = eng.runSerial(jobs);
    auto parallel = eng.run(jobs);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(parallel[i].trap.kind, serial[i].trap.kind) << i;
        EXPECT_EQ(parallel[i].outputs, serial[i].outputs) << i;
        EXPECT_EQ(parallel[i].words, serial[i].words) << i;
        EXPECT_EQ(parallel[i].stats.cycles, serial[i].stats.cycles) << i;
    }
}

TEST(BatchEngine, FaultingJobsAreIsolatedInConcurrentBatch)
{
    // Every 5th job takes a scheduled SEU in the GFAU configuration
    // register and must trap; its neighbors — possibly on the same
    // recycled machine — must be bit-for-bit what a serial run (and a
    // fault-free run) produces.
    auto jobs = makeSyndromeJobs(50, 7);
    auto clean = jobs;
    for (size_t i = 0; i < jobs.size(); i += 5)
        jobs[i].faults.push_back(configKillEvent());

    BatchEngine eng(syndromeProgram(), BatchEngine::Options{.threads = 4});
    auto parallel = eng.run(jobs);
    auto serial = eng.runSerial(jobs);
    auto pristine = eng.runSerial(clean);

    for (size_t i = 0; i < jobs.size(); ++i) {
        if (i % 5 == 0) {
            EXPECT_EQ(parallel[i].trap.kind, TrapKind::kGfConfigCorrupt)
                << i;
            EXPECT_TRUE(parallel[i].outputs.empty()) << i;
        } else {
            ASSERT_TRUE(parallel[i].ok()) << i;
            EXPECT_EQ(parallel[i].outputs, pristine[i].outputs) << i;
        }
        EXPECT_EQ(parallel[i].trap.kind, serial[i].trap.kind) << i;
        EXPECT_EQ(parallel[i].outputs, serial[i].outputs) << i;
    }
}

TEST(BatchEngine, TrapDoesNotPoisonNextJobOnSameMachine)
{
    // Force a single worker so the faulted job and its successor are
    // guaranteed to share one recycled Machine.
    auto jobs = makeSyndromeJobs(3, 99);
    jobs[1].faults.push_back(configKillEvent());

    BatchEngine eng(syndromeProgram(), BatchEngine::Options{.threads = 1});
    auto res = eng.run(jobs);
    auto pristine = eng.runSerial(makeSyndromeJobs(3, 99));
    EXPECT_TRUE(res[0].ok());
    EXPECT_EQ(res[1].trap.kind, TrapKind::kGfConfigCorrupt);
    EXPECT_TRUE(res[2].ok());
    EXPECT_EQ(res[0].outputs, pristine[0].outputs);
    EXPECT_EQ(res[2].outputs, pristine[2].outputs);
}

TEST(BatchEngine, WatchdogTrapIsPerJob)
{
    auto jobs = makeSyndromeJobs(4, 5);
    jobs[2].max_instrs = 10; // far too few to finish a syndrome pass
    BatchEngine eng(syndromeProgram(), BatchEngine::Options{.threads = 2});
    auto res = eng.run(jobs);
    EXPECT_EQ(res[2].trap.kind, TrapKind::kWatchdog);
    for (size_t i : {0u, 1u, 3u})
        EXPECT_TRUE(res[i].ok()) << i;
}

TEST(BatchEngine, ResultsKeepJobOrderAndRecordWorkers)
{
    auto jobs = makeSyndromeJobs(40, 11);
    BatchEngine eng(syndromeProgram(), BatchEngine::Options{.threads = 4});
    auto parallel = eng.run(jobs);
    auto serial = eng.runSerial(jobs);
    unsigned max_worker = 0;
    for (size_t i = 0; i < jobs.size(); ++i) {
        // Order is proven by content: job i's syndromes are unique to
        // its received word, so index-by-index equality with the serial
        // run pins the ordering.
        EXPECT_EQ(parallel[i].outputs, serial[i].outputs) << i;
        EXPECT_LT(parallel[i].worker, eng.threads());
        max_worker = std::max(max_worker, parallel[i].worker);
    }
    EXPECT_LT(max_worker, 4u);
}

TEST(BatchEngine, WorkerStatsSumToPerJobStats)
{
    auto jobs = makeSyndromeJobs(24, 3);
    BatchEngine eng(syndromeProgram(), BatchEngine::Options{.threads = 3});
    auto res = eng.run(jobs);
    uint64_t job_cycles = 0, job_instrs = 0;
    for (const auto &r : res) {
        job_cycles += r.stats.cycles;
        job_instrs += r.stats.instrs;
    }
    uint64_t worker_cycles = 0, worker_instrs = 0;
    for (const auto &s : eng.workerStats()) {
        worker_cycles += s.cycles;
        worker_instrs += s.instrs;
    }
    EXPECT_EQ(worker_cycles, job_cycles);
    EXPECT_EQ(worker_instrs, job_instrs);
    EXPECT_GT(job_instrs, 0u);
}

TEST(BatchEngine, EmptyBatchAndMoreWorkersThanJobs)
{
    BatchEngine eng(syndromeProgram(), BatchEngine::Options{.threads = 8});
    EXPECT_TRUE(eng.run({}).empty());
    auto res = eng.run(makeSyndromeJobs(2, 1));
    ASSERT_EQ(res.size(), 2u);
    EXPECT_TRUE(res[0].ok());
    EXPECT_TRUE(res[1].ok());
}

TEST(Machine, FullResetRestoresPristineState)
{
    // The engine's rerun contract: memory, registers, GFAU config and
    // stats all return to the just-constructed state, even after a
    // fault-corrupted run.
    GFField f(8);
    Machine m(syndromeAsmGfcore(f, 255, 16), CoreKind::kGfProcessor);

    auto jobs = makeSyndromeJobs(1, 77);
    const auto &rx = jobs[0].inputs[0].second;
    m.writeBytes("rxdata", rx);
    m.runOk();
    auto first = m.readBytes("synd", 16);
    auto first_cycles = m.core().stats().cycles;

    // Corrupt everything a job could corrupt: data memory and the live
    // configuration register.
    FaultInjector inj;
    inj.setSchedule({configKillEvent(),
                     FaultEvent{40, FaultTarget::kDataMemory, 0x2000, 3}});
    inj.attach(m.core());
    m.reset();
    m.writeBytes("rxdata", rx);
    (void)m.runToHalt();
    m.core().setFaultHook(nullptr);

    m.fullReset();
    EXPECT_EQ(m.core().stats().cycles, 0u);
    EXPECT_TRUE(m.core().gfau().configValid());
    m.writeBytes("rxdata", rx);
    m.runOk();
    EXPECT_EQ(m.readBytes("synd", 16), first);
    EXPECT_EQ(m.core().stats().cycles, first_cycles);
}

TEST(BatchEngine, FullResetRestoresFreshlyConstructedState)
{
    // After fullReset() the whole machine — every memory byte, the
    // registers, the flags — must equal a freshly constructed twin.
    GFField f(8);
    std::string src = syndromeAsmGfcore(f, 255, 16);
    Machine fresh(src, CoreKind::kGfProcessor);
    Machine used(src, CoreKind::kGfProcessor);

    auto jobs = makeSyndromeJobs(1, 31);
    used.writeBytes("rxdata", jobs[0].inputs[0].second);
    used.runOk();
    // Scribble over the program text too (self-modifying footprint).
    used.memory().write32(0, 0xdeadbeef);
    used.fullReset();

    EXPECT_EQ(used.memory().snapshot(), fresh.memory().snapshot());
    for (unsigned r = 0; r < 16; ++r)
        EXPECT_EQ(used.core().reg(r), fresh.core().reg(r)) << "r" << r;
    EXPECT_EQ(used.core().pc(), fresh.core().pc());
    EXPECT_EQ(used.core().stats().cycles, 0u);
    EXPECT_EQ(used.core().stats().instrs, 0u);

    // And the restored machine reruns identically to the twin.
    used.writeBytes("rxdata", jobs[0].inputs[0].second);
    fresh.writeBytes("rxdata", jobs[0].inputs[0].second);
    used.runOk();
    fresh.runOk();
    EXPECT_EQ(used.readBytes("synd", 16), fresh.readBytes("synd", 16));
}

TEST(BatchEngine, FullResetKeepsCodeEpochWhenTextUntouched)
{
    // A job that never writes its own text must not invalidate the
    // predecoded instruction stream on reset — that reuse is what makes
    // per-job fullReset() cheap for the batch engine.
    GFField f(8);
    Machine m(syndromeAsmGfcore(f, 255, 16), CoreKind::kGfProcessor);
    auto jobs = makeSyndromeJobs(1, 32);
    m.writeBytes("rxdata", jobs[0].inputs[0].second);
    m.runOk();

    uint64_t epoch = m.memory().codeEpoch();
    m.fullReset();
    EXPECT_EQ(m.memory().codeEpoch(), epoch);

    // But clobbered text must bump the epoch on restore.
    m.memory().write32(4, 0x12345678);
    uint64_t dirty = m.memory().codeEpoch();
    EXPECT_GT(dirty, epoch);
    m.fullReset();
    EXPECT_GT(m.memory().codeEpoch(), dirty);
}

TEST(BatchEngine, AesCtrBatchMatchesReference)
{
    // CTR keystream via the engine vs. Aes::applyCtr on the host.
    std::vector<uint8_t> key(16);
    std::iota(key.begin(), key.end(), uint8_t{1});
    Aes aes(key);
    AesBlock iv{};
    iv[15] = 0xfe; // crosses a byte boundary while incrementing

    Rng rng(88);
    std::vector<uint8_t> data(5 * 16 + 7); // deliberately ragged tail
    for (auto &b : data)
        b = rng.nextByte();

    BatchEngine eng(aesBlockBatchProgram(),
                    BatchEngine::Options{.threads = 2});
    auto results = eng.run(aesCtrJobs(aes, iv, data.size()));
    EXPECT_EQ(aesCtrApply(results, data), aes.applyCtr(data, iv));
}

} // namespace
} // namespace gfp
