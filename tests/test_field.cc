/**
 * @file
 * Unit and property tests for GFField — the reference GF(2^m) golden
 * model.  Field axioms are checked across every supported size and, for
 * the GFAU-relevant sizes (m = 2..8), across *every* irreducible
 * polynomial, since arbitrary-polynomial support is the paper's central
 * flexibility claim.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "gf/field.h"
#include "gf/polys.h"

namespace gfp {
namespace {

TEST(Polys, DefaultsAreIrreducibleAndPrimitive)
{
    for (unsigned m = 2; m <= 16; ++m) {
        uint32_t p = defaultPrimitivePoly(m);
        EXPECT_TRUE(isIrreducible(p, m)) << "m=" << m;
        EXPECT_TRUE(isPrimitive(p, m)) << "m=" << m;
    }
}

TEST(Polys, AesPolyIrreducibleNotPrimitive)
{
    EXPECT_TRUE(isIrreducible(kAesPoly, 8));
    EXPECT_FALSE(isPrimitive(kAesPoly, 8));
}

TEST(Polys, KnownReducibles)
{
    EXPECT_FALSE(isIrreducible(0x100, 8)); // x^8
    EXPECT_FALSE(isIrreducible(0x101, 8)); // x^8+1 = (x+1)^8
    EXPECT_FALSE(isIrreducible(0x11b, 7)); // wrong degree
    EXPECT_FALSE(isIrreducible(0x6, 2));   // x^2+x = x(x+1)
}

TEST(Polys, IrreducibleCountsMatchTheory)
{
    // Number of monic irreducible polynomials of degree m over GF(2):
    // (1/m) * sum_{d | m} mu(m/d) 2^d.
    EXPECT_EQ(irreduciblePolys(2).size(), 1u);
    EXPECT_EQ(irreduciblePolys(3).size(), 2u);
    EXPECT_EQ(irreduciblePolys(4).size(), 3u);
    EXPECT_EQ(irreduciblePolys(5).size(), 6u);
    EXPECT_EQ(irreduciblePolys(6).size(), 9u);
    EXPECT_EQ(irreduciblePolys(7).size(), 18u);
    EXPECT_EQ(irreduciblePolys(8).size(), 30u);
}

TEST(Field, Gf16KnownMultiplications)
{
    // GF(2^4), x^4 + x + 1: classic examples.
    GFField f(4, 0x13);
    EXPECT_EQ(f.mul(0x8, 0x2), 0x3);  // x^3 * x = x^4 = x + 1
    EXPECT_EQ(f.mul(0x8, 0x8), 0xc);  // x^6 = x^3 + x^2
    EXPECT_EQ(f.mul(0x0, 0xf), 0x0);
    EXPECT_EQ(f.mul(0x1, 0xf), 0xf);
}

TEST(Field, AesKnownMultiplications)
{
    // FIPS-197 example: {57} x {83} = {c1} under 0x11b.
    GFField f(8, kAesPoly);
    EXPECT_EQ(f.mul(0x57, 0x83), 0xc1);
    EXPECT_EQ(f.mul(0x57, 0x13), 0xfe);
    EXPECT_EQ(f.mul(0x02, 0x80), 0x1b); // the reduction case
}

TEST(Field, AesInverseSpotChecks)
{
    GFField f(8, kAesPoly);
    // Known AES inverse pairs (S-box pre-affine).
    EXPECT_EQ(f.inv(0x01), 0x01);
    EXPECT_EQ(f.inv(0x53), 0xca);
    EXPECT_EQ(f.inv(0xca), 0x53);
    EXPECT_EQ(f.inv(0x00), 0x00); // hardware convention
}

class FieldAxioms : public ::testing::TestWithParam<std::pair<unsigned,
                                                              uint32_t>>
{
};

TEST_P(FieldAxioms, ExhaustiveForSmallFields)
{
    auto [m, poly] = GetParam();
    GFField f(m, poly);
    const uint32_t order = f.order();

    // Exhaustive for m <= 6, randomized triples for larger fields.
    if (m <= 6) {
        for (uint32_t a = 0; a < order; ++a) {
            for (uint32_t b = 0; b < order; ++b) {
                GFElem ab = f.mul(a, b);
                // commutativity + agreement of the three multiply paths
                EXPECT_EQ(ab, f.mul(b, a));
                EXPECT_EQ(ab, f.mulCarryless(a, b));
                EXPECT_EQ(ab, f.mulTable(a, b));
                // closure
                EXPECT_LT(ab, order);
            }
            // identities
            EXPECT_EQ(f.mul(a, 1), a);
            EXPECT_EQ(f.mul(a, 0), 0);
            EXPECT_EQ(f.sqr(a), f.mul(a, a));
            if (a != 0) {
                EXPECT_EQ(f.mul(a, f.inv(a)), 1) << "a=" << a;
                EXPECT_EQ(f.div(1, a), f.inv(a));
            }
        }
        // associativity + distributivity on all triples
        for (uint32_t a = 0; a < order; ++a) {
            for (uint32_t b = 0; b < order; b += 3) {
                for (uint32_t c = 0; c < order; c += 7) {
                    EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                    EXPECT_EQ(f.mul(a, GFField::add(b, c)),
                              GFField::add(f.mul(a, b), f.mul(a, c)));
                }
            }
        }
    } else {
        Rng rng(m * 1000003u + poly);
        for (int i = 0; i < 3000; ++i) {
            GFElem a = rng.below(order);
            GFElem b = rng.below(order);
            GFElem c = rng.below(order);
            EXPECT_EQ(f.mul(a, b), f.mul(b, a));
            EXPECT_EQ(f.mul(a, b), f.mulCarryless(a, b));
            EXPECT_EQ(f.mul(a, b), f.mulTable(a, b));
            EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
            EXPECT_EQ(f.mul(a, GFField::add(b, c)),
                      GFField::add(f.mul(a, b), f.mul(a, c)));
            EXPECT_EQ(f.sqr(a), f.mul(a, a));
            if (a != 0)
                EXPECT_EQ(f.mul(a, f.inv(a)), 1);
        }
    }
}

std::vector<std::pair<unsigned, uint32_t>>
allGfauFieldConfigs()
{
    // Every irreducible polynomial for every datapath-supported size.
    std::vector<std::pair<unsigned, uint32_t>> cfgs;
    for (unsigned m = 2; m <= 8; ++m)
        for (uint32_t p : irreduciblePolys(m))
            cfgs.emplace_back(m, p);
    return cfgs;
}

INSTANTIATE_TEST_SUITE_P(
    AllSmallFields, FieldAxioms,
    ::testing::ValuesIn(allGfauFieldConfigs()),
    [](const ::testing::TestParamInfo<std::pair<unsigned, uint32_t>> &info) {
        return "m" + std::to_string(info.param.first) + "_poly" +
               std::to_string(info.param.second);
    });

TEST(Field, LargerFieldsBasicSanity)
{
    for (unsigned m : {9u, 10u, 12u, 16u}) {
        GFField f(m);
        Rng rng(m);
        for (int i = 0; i < 500; ++i) {
            GFElem a = rng.below(f.order());
            GFElem b = rng.below(f.order());
            EXPECT_EQ(f.mul(a, b), f.mulCarryless(a, b));
            EXPECT_EQ(f.mul(a, b), f.mulTable(a, b));
            if (a)
                EXPECT_EQ(f.mul(a, f.inv(a)), 1);
        }
    }
}

TEST(Field, PowAgreesWithRepeatedMul)
{
    GFField f(8, 0x11d);
    for (GFElem a : {GFElem{0}, GFElem{1}, GFElem{2}, GFElem{0x53},
                     GFElem{0xff}}) {
        GFElem acc = 1;
        for (uint32_t e = 0; e < 40; ++e) {
            EXPECT_EQ(f.pow(a, e), acc) << "a=" << a << " e=" << e;
            acc = f.mul(acc, a);
        }
    }
    EXPECT_EQ(f.pow(0, 0), 1);
    EXPECT_EQ(f.pow(0, 5), 0);
}

TEST(Field, LogExpRoundTrip)
{
    for (uint32_t poly : {0x11du, 0x11bu}) {
        GFField f(8, poly);
        for (uint32_t a = 1; a < f.order(); ++a) {
            EXPECT_EQ(f.exp(f.log(a)), a);
            // log respects multiplication
            uint32_t b = (a * 7 + 3) % 255 + 1;
            EXPECT_EQ(f.mul(a, b),
                      f.exp(f.log(a) + f.log(b)));
        }
    }
}

TEST(Field, GeneratorOrderIsFull)
{
    GFField aes(8, kAesPoly);
    EXPECT_FALSE(aes.primitive());
    // 0x02 is NOT a generator under the AES polynomial (order 51).
    GFElem v = 1;
    unsigned order2 = 0;
    do {
        v = aes.mul(v, 2);
        ++order2;
    } while (v != 1);
    EXPECT_EQ(order2, 51u);
    // 0x03 is the usual generator.
    EXPECT_EQ(aes.generator(), 0x03);
}

TEST(Field, FermatPropertyHolds)
{
    // a^(2^m - 1) == 1 for all nonzero a.
    for (unsigned m = 2; m <= 8; ++m) {
        GFField f(m);
        for (uint32_t a = 1; a < f.order(); ++a)
            EXPECT_EQ(f.pow(a, f.groupOrder()), 1) << "m=" << m;
    }
}

TEST(Field, FrobeniusIsLinear)
{
    // (a + b)^2 == a^2 + b^2 — the freshman's dream in char 2.
    GFField f(8, 0x11d);
    Rng rng(99);
    for (int i = 0; i < 1000; ++i) {
        GFElem a = rng.nextByte(), b = rng.nextByte();
        EXPECT_EQ(f.sqr(a ^ b), f.sqr(a) ^ f.sqr(b));
    }
}

TEST(Field, RejectsBadParameters)
{
    EXPECT_DEATH(GFField(8, 0x101), "not irreducible");
    EXPECT_DEATH(GFField(1), "supports m in 2..16");
    EXPECT_DEATH(GFField(17), "supports m in 2..16");
}

TEST(Field, DivByZeroDies)
{
    GFField f(4);
    EXPECT_DEATH(f.div(3, 0), "division by zero");
    EXPECT_DEATH(f.log(0), "log of zero");
}

} // namespace
} // namespace gfp
