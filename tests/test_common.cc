/**
 * @file
 * Unit tests for the common substrate: bit operations, carry-less
 * multiplication, string helpers, and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/strutil.h"

namespace gfp {
namespace {

TEST(Bitops, BitAndSetBit)
{
    EXPECT_EQ(bit(0b1010, 1), 1u);
    EXPECT_EQ(bit(0b1010, 0), 0u);
    EXPECT_EQ(setBit(0, 5, 1), 0b100000u);
    EXPECT_EQ(setBit(0xff, 0, 0), 0xfeu);
}

TEST(Bitops, Parity)
{
    EXPECT_EQ(parity(0), 0u);
    EXPECT_EQ(parity(1), 1u);
    EXPECT_EQ(parity(0b1011), 1u);
    EXPECT_EQ(parity(0xffffffffffffffffull), 0u);
}

TEST(Bitops, Clmul8KnownValues)
{
    // (x + 1)(x + 1) = x^2 + 1 over GF(2)
    EXPECT_EQ(clmul8(0b11, 0b11), 0b101u);
    // x^7 * x^7 = x^14
    EXPECT_EQ(clmul8(0x80, 0x80), 0x4000u);
    EXPECT_EQ(clmul8(0, 0xff), 0u);
    EXPECT_EQ(clmul8(1, 0xab), 0xabu);
}

TEST(Bitops, ClmulWidthsConsistent)
{
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        uint8_t a = rng.nextByte(), b = rng.nextByte();
        EXPECT_EQ(clmul16(a, b), clmul8(a, b));
        EXPECT_EQ(clmul32(a, b), clmul8(a, b));
    }
}

TEST(Bitops, Clmul32MatchesByteDecomposition)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        uint32_t a = rng.next32(), b = rng.next32();
        uint64_t acc = 0;
        for (unsigned x = 0; x < 4; ++x)
            for (unsigned y = 0; y < 4; ++y)
                acc ^= static_cast<uint64_t>(clmul8(lane(a, x), lane(b, y)))
                       << (8 * (x + y));
        EXPECT_EQ(clmul32(a, b), acc);
    }
}

TEST(Bitops, Clmul64MatchesClmul32Composition)
{
    Rng rng(21);
    for (int i = 0; i < 50; ++i) {
        uint64_t a = rng.next64(), b = rng.next64();
        uint64_t hi, lo;
        clmul64(a, b, hi, lo);

        // Compose from 32-bit pieces: a = a1*X + a0, b = b1*X + b0.
        uint32_t a0 = static_cast<uint32_t>(a), a1 = a >> 32;
        uint32_t b0 = static_cast<uint32_t>(b), b1 = b >> 32;
        uint64_t p00 = clmul32(a0, b0);
        uint64_t p01 = clmul32(a0, b1);
        uint64_t p10 = clmul32(a1, b0);
        uint64_t p11 = clmul32(a1, b1);
        uint64_t mid = p01 ^ p10;
        uint64_t exp_lo = p00 ^ (mid << 32);
        uint64_t exp_hi = p11 ^ (mid >> 32);
        EXPECT_EQ(lo, exp_lo);
        EXPECT_EQ(hi, exp_hi);
    }
}

TEST(Bitops, LaneHelpers)
{
    uint32_t w = 0x44332211;
    EXPECT_EQ(lane(w, 0), 0x11);
    EXPECT_EQ(lane(w, 3), 0x44);
    EXPECT_EQ(withLane(w, 1, 0xaa), 0x4433aa11u);
    EXPECT_EQ(splat(0x5e), 0x5e5e5e5eu);
}

TEST(Bitops, Degree)
{
    EXPECT_EQ(degree(0), -1);
    EXPECT_EQ(degree(1), 0);
    EXPECT_EQ(degree(0x11b), 8);
    EXPECT_EQ(degree(uint64_t{1} << 63), 63);
}

TEST(Strutil, Strprintf)
{
    EXPECT_EQ(strprintf("a=%d b=%s", 3, "x"), "a=3 b=x");
    EXPECT_EQ(strprintf("%05x", 0x1a), "0001a");
}

TEST(Strutil, TrimSplit)
{
    EXPECT_EQ(trim("  hi \t"), "hi");
    EXPECT_EQ(trim(""), "");
    auto f = split("a,b,,c", ',');
    ASSERT_EQ(f.size(), 3u);
    EXPECT_EQ(f[2], "c");
    auto g = split("a,b,,c", ',', true);
    ASSERT_EQ(g.size(), 4u);
    EXPECT_EQ(g[2], "");
}

TEST(Strutil, HexRoundTrip)
{
    std::vector<uint8_t> v{0xde, 0xad, 0x00, 0x3f};
    EXPECT_EQ(toHex(v), "dead003f");
    EXPECT_EQ(fromHex("dead003f"), v);
}

TEST(Strutil, FromHexRejectsOddLength)
{
    ScopedFatalThrow guard;
    EXPECT_THROW(fromHex("abc"), FatalError);
}

TEST(Strutil, FromHexRejectsBadDigit)
{
    ScopedFatalThrow guard;
    try {
        fromHex("zz");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("hex"), std::string::npos);
    }
}

TEST(Logging, FatalHandlerInterceptsAndRestores)
{
    // A custom handler sees the message before the default abort path;
    // restoring the previous handler reinstalls normal behavior.
    std::string seen;
    FatalHandler prev = setFatalHandler(
        [&](const char *, int, const std::string &msg) {
            seen = msg;
            throw FatalError(msg);
        });
    EXPECT_THROW(fromHex("q"), FatalError);
    EXPECT_NE(seen.find("length"), std::string::npos);
    setFatalHandler(std::move(prev));
}

TEST(Logging, MessageSinkCapturesWarnings)
{
    std::vector<std::string> lines;
    MessageSink prev = setMessageSink(
        [&](const char *level, const std::string &msg) {
            lines.push_back(std::string(level) + ": " + msg);
        });
    GFP_WARN("captured %d", 7);
    GFP_INFORM("also captured");
    setMessageSink(std::move(prev));
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].rfind("warn: captured 7", 0), 0u);
    EXPECT_EQ(lines[1], "info: also captured");
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, BelowInRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

} // namespace
} // namespace gfp
