# Empty dependencies file for test_encoder_kernels.
# This may be replaced when dependencies are built.
