file(REMOVE_RECURSE
  "CMakeFiles/test_encoder_kernels.dir/test_encoder_kernels.cc.o"
  "CMakeFiles/test_encoder_kernels.dir/test_encoder_kernels.cc.o.d"
  "test_encoder_kernels"
  "test_encoder_kernels.pdb"
  "test_encoder_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_encoder_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
