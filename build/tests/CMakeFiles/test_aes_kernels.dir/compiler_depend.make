# Empty compiler generated dependencies file for test_aes_kernels.
# This may be replaced when dependencies are built.
