file(REMOVE_RECURSE
  "CMakeFiles/test_aes_kernels.dir/test_aes_kernels.cc.o"
  "CMakeFiles/test_aes_kernels.dir/test_aes_kernels.cc.o.d"
  "test_aes_kernels"
  "test_aes_kernels.pdb"
  "test_aes_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aes_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
