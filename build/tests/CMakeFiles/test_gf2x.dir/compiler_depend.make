# Empty compiler generated dependencies file for test_gf2x.
# This may be replaced when dependencies are built.
