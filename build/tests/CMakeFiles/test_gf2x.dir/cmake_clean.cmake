file(REMOVE_RECURSE
  "CMakeFiles/test_gf2x.dir/test_gf2x.cc.o"
  "CMakeFiles/test_gf2x.dir/test_gf2x.cc.o.d"
  "test_gf2x"
  "test_gf2x.pdb"
  "test_gf2x[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gf2x.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
