# Empty dependencies file for test_binary_field.
# This may be replaced when dependencies are built.
