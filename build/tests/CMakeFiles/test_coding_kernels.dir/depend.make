# Empty dependencies file for test_coding_kernels.
# This may be replaced when dependencies are built.
