file(REMOVE_RECURSE
  "CMakeFiles/test_coding_kernels.dir/test_coding_kernels.cc.o"
  "CMakeFiles/test_coding_kernels.dir/test_coding_kernels.cc.o.d"
  "test_coding_kernels"
  "test_coding_kernels.pdb"
  "test_coding_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coding_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
