# Empty dependencies file for test_gfau.
# This may be replaced when dependencies are built.
