file(REMOVE_RECURSE
  "CMakeFiles/test_gfau.dir/test_gfau.cc.o"
  "CMakeFiles/test_gfau.dir/test_gfau.cc.o.d"
  "test_gfau"
  "test_gfau.pdb"
  "test_gfau[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gfau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
