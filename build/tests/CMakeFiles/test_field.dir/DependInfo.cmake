
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_field.cc" "tests/CMakeFiles/test_field.dir/test_field.cc.o" "gcc" "tests/CMakeFiles/test_field.dir/test_field.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gfp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/gfp_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/gfau/CMakeFiles/gfp_gfau.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gfp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/gfp_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gfp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/gfp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/gfp_hwmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
