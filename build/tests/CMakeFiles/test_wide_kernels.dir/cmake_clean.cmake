file(REMOVE_RECURSE
  "CMakeFiles/test_wide_kernels.dir/test_wide_kernels.cc.o"
  "CMakeFiles/test_wide_kernels.dir/test_wide_kernels.cc.o.d"
  "test_wide_kernels"
  "test_wide_kernels.pdb"
  "test_wide_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wide_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
