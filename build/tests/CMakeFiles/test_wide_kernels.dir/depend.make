# Empty dependencies file for test_wide_kernels.
# This may be replaced when dependencies are built.
