# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_field[1]_include.cmake")
include("/root/repo/build/tests/test_poly[1]_include.cmake")
include("/root/repo/build/tests/test_gf2x[1]_include.cmake")
include("/root/repo/build/tests/test_binary_field[1]_include.cmake")
include("/root/repo/build/tests/test_gfau[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_coding[1]_include.cmake")
include("/root/repo/build/tests/test_aes[1]_include.cmake")
include("/root/repo/build/tests/test_ecc[1]_include.cmake")
include("/root/repo/build/tests/test_coding_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_aes_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_wide_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_hwmodel[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_encoder_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_sample_programs[1]_include.cmake")
