# Empty compiler generated dependencies file for gfp_sim.
# This may be replaced when dependencies are built.
