file(REMOVE_RECURSE
  "CMakeFiles/gfp_sim.dir/cpu.cc.o"
  "CMakeFiles/gfp_sim.dir/cpu.cc.o.d"
  "CMakeFiles/gfp_sim.dir/machine.cc.o"
  "CMakeFiles/gfp_sim.dir/machine.cc.o.d"
  "CMakeFiles/gfp_sim.dir/memory.cc.o"
  "CMakeFiles/gfp_sim.dir/memory.cc.o.d"
  "CMakeFiles/gfp_sim.dir/stats.cc.o"
  "CMakeFiles/gfp_sim.dir/stats.cc.o.d"
  "libgfp_sim.a"
  "libgfp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
