file(REMOVE_RECURSE
  "libgfp_sim.a"
)
