
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gf/binary_field.cc" "src/gf/CMakeFiles/gfp_gf.dir/binary_field.cc.o" "gcc" "src/gf/CMakeFiles/gfp_gf.dir/binary_field.cc.o.d"
  "/root/repo/src/gf/field.cc" "src/gf/CMakeFiles/gfp_gf.dir/field.cc.o" "gcc" "src/gf/CMakeFiles/gfp_gf.dir/field.cc.o.d"
  "/root/repo/src/gf/gf2x.cc" "src/gf/CMakeFiles/gfp_gf.dir/gf2x.cc.o" "gcc" "src/gf/CMakeFiles/gfp_gf.dir/gf2x.cc.o.d"
  "/root/repo/src/gf/poly.cc" "src/gf/CMakeFiles/gfp_gf.dir/poly.cc.o" "gcc" "src/gf/CMakeFiles/gfp_gf.dir/poly.cc.o.d"
  "/root/repo/src/gf/polys.cc" "src/gf/CMakeFiles/gfp_gf.dir/polys.cc.o" "gcc" "src/gf/CMakeFiles/gfp_gf.dir/polys.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gfp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
