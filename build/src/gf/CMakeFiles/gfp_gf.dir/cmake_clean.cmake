file(REMOVE_RECURSE
  "CMakeFiles/gfp_gf.dir/binary_field.cc.o"
  "CMakeFiles/gfp_gf.dir/binary_field.cc.o.d"
  "CMakeFiles/gfp_gf.dir/field.cc.o"
  "CMakeFiles/gfp_gf.dir/field.cc.o.d"
  "CMakeFiles/gfp_gf.dir/gf2x.cc.o"
  "CMakeFiles/gfp_gf.dir/gf2x.cc.o.d"
  "CMakeFiles/gfp_gf.dir/poly.cc.o"
  "CMakeFiles/gfp_gf.dir/poly.cc.o.d"
  "CMakeFiles/gfp_gf.dir/polys.cc.o"
  "CMakeFiles/gfp_gf.dir/polys.cc.o.d"
  "libgfp_gf.a"
  "libgfp_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfp_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
