file(REMOVE_RECURSE
  "libgfp_gf.a"
)
