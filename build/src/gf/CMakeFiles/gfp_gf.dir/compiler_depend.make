# Empty compiler generated dependencies file for gfp_gf.
# This may be replaced when dependencies are built.
