file(REMOVE_RECURSE
  "CMakeFiles/gfp_coding.dir/bch.cc.o"
  "CMakeFiles/gfp_coding.dir/bch.cc.o.d"
  "CMakeFiles/gfp_coding.dir/channel.cc.o"
  "CMakeFiles/gfp_coding.dir/channel.cc.o.d"
  "CMakeFiles/gfp_coding.dir/decoder_kernels.cc.o"
  "CMakeFiles/gfp_coding.dir/decoder_kernels.cc.o.d"
  "CMakeFiles/gfp_coding.dir/minpoly.cc.o"
  "CMakeFiles/gfp_coding.dir/minpoly.cc.o.d"
  "CMakeFiles/gfp_coding.dir/rs.cc.o"
  "CMakeFiles/gfp_coding.dir/rs.cc.o.d"
  "libgfp_coding.a"
  "libgfp_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfp_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
