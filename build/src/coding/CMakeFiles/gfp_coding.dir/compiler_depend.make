# Empty compiler generated dependencies file for gfp_coding.
# This may be replaced when dependencies are built.
