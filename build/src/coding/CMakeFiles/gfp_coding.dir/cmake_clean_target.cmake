file(REMOVE_RECURSE
  "libgfp_coding.a"
)
