
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coding/bch.cc" "src/coding/CMakeFiles/gfp_coding.dir/bch.cc.o" "gcc" "src/coding/CMakeFiles/gfp_coding.dir/bch.cc.o.d"
  "/root/repo/src/coding/channel.cc" "src/coding/CMakeFiles/gfp_coding.dir/channel.cc.o" "gcc" "src/coding/CMakeFiles/gfp_coding.dir/channel.cc.o.d"
  "/root/repo/src/coding/decoder_kernels.cc" "src/coding/CMakeFiles/gfp_coding.dir/decoder_kernels.cc.o" "gcc" "src/coding/CMakeFiles/gfp_coding.dir/decoder_kernels.cc.o.d"
  "/root/repo/src/coding/minpoly.cc" "src/coding/CMakeFiles/gfp_coding.dir/minpoly.cc.o" "gcc" "src/coding/CMakeFiles/gfp_coding.dir/minpoly.cc.o.d"
  "/root/repo/src/coding/rs.cc" "src/coding/CMakeFiles/gfp_coding.dir/rs.cc.o" "gcc" "src/coding/CMakeFiles/gfp_coding.dir/rs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gfp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/gfp_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
