file(REMOVE_RECURSE
  "libgfp_kernels.a"
)
