file(REMOVE_RECURSE
  "CMakeFiles/gfp_kernels.dir/aes_kernels.cc.o"
  "CMakeFiles/gfp_kernels.dir/aes_kernels.cc.o.d"
  "CMakeFiles/gfp_kernels.dir/coding_kernels.cc.o"
  "CMakeFiles/gfp_kernels.dir/coding_kernels.cc.o.d"
  "CMakeFiles/gfp_kernels.dir/kernellib.cc.o"
  "CMakeFiles/gfp_kernels.dir/kernellib.cc.o.d"
  "CMakeFiles/gfp_kernels.dir/wide_kernels.cc.o"
  "CMakeFiles/gfp_kernels.dir/wide_kernels.cc.o.d"
  "libgfp_kernels.a"
  "libgfp_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
