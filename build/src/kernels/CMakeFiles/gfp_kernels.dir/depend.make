# Empty dependencies file for gfp_kernels.
# This may be replaced when dependencies are built.
