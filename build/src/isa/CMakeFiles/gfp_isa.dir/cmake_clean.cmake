file(REMOVE_RECURSE
  "CMakeFiles/gfp_isa.dir/assembler.cc.o"
  "CMakeFiles/gfp_isa.dir/assembler.cc.o.d"
  "CMakeFiles/gfp_isa.dir/disasm.cc.o"
  "CMakeFiles/gfp_isa.dir/disasm.cc.o.d"
  "CMakeFiles/gfp_isa.dir/encoding.cc.o"
  "CMakeFiles/gfp_isa.dir/encoding.cc.o.d"
  "CMakeFiles/gfp_isa.dir/isa.cc.o"
  "CMakeFiles/gfp_isa.dir/isa.cc.o.d"
  "libgfp_isa.a"
  "libgfp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
