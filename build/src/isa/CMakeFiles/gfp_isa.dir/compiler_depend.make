# Empty compiler generated dependencies file for gfp_isa.
# This may be replaced when dependencies are built.
