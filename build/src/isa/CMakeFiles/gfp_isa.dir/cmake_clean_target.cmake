file(REMOVE_RECURSE
  "libgfp_isa.a"
)
