file(REMOVE_RECURSE
  "CMakeFiles/gfp_crypto.dir/aes.cc.o"
  "CMakeFiles/gfp_crypto.dir/aes.cc.o.d"
  "CMakeFiles/gfp_crypto.dir/ecc.cc.o"
  "CMakeFiles/gfp_crypto.dir/ecc.cc.o.d"
  "libgfp_crypto.a"
  "libgfp_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfp_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
