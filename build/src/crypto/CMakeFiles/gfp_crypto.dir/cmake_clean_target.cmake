file(REMOVE_RECURSE
  "libgfp_crypto.a"
)
