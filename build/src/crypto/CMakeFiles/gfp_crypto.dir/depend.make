# Empty dependencies file for gfp_crypto.
# This may be replaced when dependencies are built.
