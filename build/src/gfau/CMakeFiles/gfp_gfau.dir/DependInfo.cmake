
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gfau/config_reg.cc" "src/gfau/CMakeFiles/gfp_gfau.dir/config_reg.cc.o" "gcc" "src/gfau/CMakeFiles/gfp_gfau.dir/config_reg.cc.o.d"
  "/root/repo/src/gfau/gf_unit.cc" "src/gfau/CMakeFiles/gfp_gfau.dir/gf_unit.cc.o" "gcc" "src/gfau/CMakeFiles/gfp_gfau.dir/gf_unit.cc.o.d"
  "/root/repo/src/gfau/units.cc" "src/gfau/CMakeFiles/gfp_gfau.dir/units.cc.o" "gcc" "src/gfau/CMakeFiles/gfp_gfau.dir/units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gfp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/gfp_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
