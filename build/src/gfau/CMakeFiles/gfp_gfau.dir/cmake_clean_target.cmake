file(REMOVE_RECURSE
  "libgfp_gfau.a"
)
