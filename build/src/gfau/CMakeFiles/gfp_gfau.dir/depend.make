# Empty dependencies file for gfp_gfau.
# This may be replaced when dependencies are built.
