file(REMOVE_RECURSE
  "CMakeFiles/gfp_gfau.dir/config_reg.cc.o"
  "CMakeFiles/gfp_gfau.dir/config_reg.cc.o.d"
  "CMakeFiles/gfp_gfau.dir/gf_unit.cc.o"
  "CMakeFiles/gfp_gfau.dir/gf_unit.cc.o.d"
  "CMakeFiles/gfp_gfau.dir/units.cc.o"
  "CMakeFiles/gfp_gfau.dir/units.cc.o.d"
  "libgfp_gfau.a"
  "libgfp_gfau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfp_gfau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
