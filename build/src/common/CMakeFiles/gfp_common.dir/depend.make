# Empty dependencies file for gfp_common.
# This may be replaced when dependencies are built.
