file(REMOVE_RECURSE
  "CMakeFiles/gfp_common.dir/logging.cc.o"
  "CMakeFiles/gfp_common.dir/logging.cc.o.d"
  "CMakeFiles/gfp_common.dir/strutil.cc.o"
  "CMakeFiles/gfp_common.dir/strutil.cc.o.d"
  "libgfp_common.a"
  "libgfp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
