file(REMOVE_RECURSE
  "libgfp_common.a"
)
