# Empty dependencies file for gfp_hwmodel.
# This may be replaced when dependencies are built.
