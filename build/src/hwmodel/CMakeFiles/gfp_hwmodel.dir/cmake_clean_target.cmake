file(REMOVE_RECURSE
  "libgfp_hwmodel.a"
)
