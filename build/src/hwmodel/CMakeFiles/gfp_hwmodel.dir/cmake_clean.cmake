file(REMOVE_RECURSE
  "CMakeFiles/gfp_hwmodel.dir/resource_models.cc.o"
  "CMakeFiles/gfp_hwmodel.dir/resource_models.cc.o.d"
  "CMakeFiles/gfp_hwmodel.dir/synthesis.cc.o"
  "CMakeFiles/gfp_hwmodel.dir/synthesis.cc.o.d"
  "libgfp_hwmodel.a"
  "libgfp_hwmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfp_hwmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
