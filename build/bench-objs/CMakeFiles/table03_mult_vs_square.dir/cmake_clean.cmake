file(REMOVE_RECURSE
  "../bench/table03_mult_vs_square"
  "../bench/table03_mult_vs_square.pdb"
  "CMakeFiles/table03_mult_vs_square.dir/table03_mult_vs_square.cc.o"
  "CMakeFiles/table03_mult_vs_square.dir/table03_mult_vs_square.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_mult_vs_square.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
