# Empty compiler generated dependencies file for table03_mult_vs_square.
# This may be replaced when dependencies are built.
