# Empty compiler generated dependencies file for table08_gf233_platforms.
# This may be replaced when dependencies are built.
