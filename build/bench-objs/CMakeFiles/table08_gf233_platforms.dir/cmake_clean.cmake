file(REMOVE_RECURSE
  "../bench/table08_gf233_platforms"
  "../bench/table08_gf233_platforms.pdb"
  "CMakeFiles/table08_gf233_platforms.dir/table08_gf233_platforms.cc.o"
  "CMakeFiles/table08_gf233_platforms.dir/table08_gf233_platforms.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_gf233_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
