file(REMOVE_RECURSE
  "../bench/table05_kernel_parallelism"
  "../bench/table05_kernel_parallelism.pdb"
  "CMakeFiles/table05_kernel_parallelism.dir/table05_kernel_parallelism.cc.o"
  "CMakeFiles/table05_kernel_parallelism.dir/table05_kernel_parallelism.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_kernel_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
