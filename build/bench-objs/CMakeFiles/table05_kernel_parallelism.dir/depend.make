# Empty dependencies file for table05_kernel_parallelism.
# This may be replaced when dependencies are built.
