# Empty compiler generated dependencies file for microbench_gf.
# This may be replaced when dependencies are built.
