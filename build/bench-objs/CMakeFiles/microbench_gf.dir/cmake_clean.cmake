file(REMOVE_RECURSE
  "../bench/microbench_gf"
  "../bench/microbench_gf.pdb"
  "CMakeFiles/microbench_gf.dir/microbench_gf.cc.o"
  "CMakeFiles/microbench_gf.dir/microbench_gf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
