# Empty compiler generated dependencies file for table13_energy_vs_asic.
# This may be replaced when dependencies are built.
