file(REMOVE_RECURSE
  "../bench/table13_energy_vs_asic"
  "../bench/table13_energy_vs_asic.pdb"
  "CMakeFiles/table13_energy_vs_asic.dir/table13_energy_vs_asic.cc.o"
  "CMakeFiles/table13_energy_vs_asic.dir/table13_energy_vs_asic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table13_energy_vs_asic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
