# Empty dependencies file for table09_point_ops.
# This may be replaced when dependencies are built.
