file(REMOVE_RECURSE
  "../bench/table09_point_ops"
  "../bench/table09_point_ops.pdb"
  "CMakeFiles/table09_point_ops.dir/table09_point_ops.cc.o"
  "CMakeFiles/table09_point_ops.dir/table09_point_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_point_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
