# Empty compiler generated dependencies file for ecdh_scalar_mult.
# This may be replaced when dependencies are built.
