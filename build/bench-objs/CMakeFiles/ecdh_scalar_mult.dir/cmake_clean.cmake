file(REMOVE_RECURSE
  "../bench/ecdh_scalar_mult"
  "../bench/ecdh_scalar_mult.pdb"
  "CMakeFiles/ecdh_scalar_mult.dir/ecdh_scalar_mult.cc.o"
  "CMakeFiles/ecdh_scalar_mult.dir/ecdh_scalar_mult.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecdh_scalar_mult.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
