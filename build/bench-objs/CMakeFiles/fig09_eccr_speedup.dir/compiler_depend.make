# Empty compiler generated dependencies file for fig09_eccr_speedup.
# This may be replaced when dependencies are built.
