file(REMOVE_RECURSE
  "../bench/encoder_speedup"
  "../bench/encoder_speedup.pdb"
  "CMakeFiles/encoder_speedup.dir/encoder_speedup.cc.o"
  "CMakeFiles/encoder_speedup.dir/encoder_speedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoder_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
