# Empty dependencies file for encoder_speedup.
# This may be replaced when dependencies are built.
