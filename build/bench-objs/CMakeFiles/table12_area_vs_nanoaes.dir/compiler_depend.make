# Empty compiler generated dependencies file for table12_area_vs_nanoaes.
# This may be replaced when dependencies are built.
