file(REMOVE_RECURSE
  "../bench/table12_area_vs_nanoaes"
  "../bench/table12_area_vs_nanoaes.pdb"
  "CMakeFiles/table12_area_vs_nanoaes.dir/table12_area_vs_nanoaes.cc.o"
  "CMakeFiles/table12_area_vs_nanoaes.dir/table12_area_vs_nanoaes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_area_vs_nanoaes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
