file(REMOVE_RECURSE
  "../bench/ablation_simd_width"
  "../bench/ablation_simd_width.pdb"
  "CMakeFiles/ablation_simd_width.dir/ablation_simd_width.cc.o"
  "CMakeFiles/ablation_simd_width.dir/ablation_simd_width.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_simd_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
