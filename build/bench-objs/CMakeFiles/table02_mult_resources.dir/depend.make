# Empty dependencies file for table02_mult_resources.
# This may be replaced when dependencies are built.
