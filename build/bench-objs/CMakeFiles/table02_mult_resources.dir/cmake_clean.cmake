file(REMOVE_RECURSE
  "../bench/table02_mult_resources"
  "../bench/table02_mult_resources.pdb"
  "CMakeFiles/table02_mult_resources.dir/table02_mult_resources.cc.o"
  "CMakeFiles/table02_mult_resources.dir/table02_mult_resources.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_mult_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
