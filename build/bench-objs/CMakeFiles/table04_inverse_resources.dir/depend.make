# Empty dependencies file for table04_inverse_resources.
# This may be replaced when dependencies are built.
