file(REMOVE_RECURSE
  "../bench/table04_inverse_resources"
  "../bench/table04_inverse_resources.pdb"
  "CMakeFiles/table04_inverse_resources.dir/table04_inverse_resources.cc.o"
  "CMakeFiles/table04_inverse_resources.dir/table04_inverse_resources.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_inverse_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
