file(REMOVE_RECURSE
  "../bench/fig10_aes_speedup"
  "../bench/fig10_aes_speedup.pdb"
  "CMakeFiles/fig10_aes_speedup.dir/fig10_aes_speedup.cc.o"
  "CMakeFiles/fig10_aes_speedup.dir/fig10_aes_speedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_aes_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
