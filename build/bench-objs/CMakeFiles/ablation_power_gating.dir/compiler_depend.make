# Empty compiler generated dependencies file for ablation_power_gating.
# This may be replaced when dependencies are built.
