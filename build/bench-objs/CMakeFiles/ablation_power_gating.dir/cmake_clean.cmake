file(REMOVE_RECURSE
  "../bench/ablation_power_gating"
  "../bench/ablation_power_gating.pdb"
  "CMakeFiles/ablation_power_gating.dir/ablation_power_gating.cc.o"
  "CMakeFiles/ablation_power_gating.dir/ablation_power_gating.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_power_gating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
