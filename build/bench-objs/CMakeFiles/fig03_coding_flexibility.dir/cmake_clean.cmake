file(REMOVE_RECURSE
  "../bench/fig03_coding_flexibility"
  "../bench/fig03_coding_flexibility.pdb"
  "CMakeFiles/fig03_coding_flexibility.dir/fig03_coding_flexibility.cc.o"
  "CMakeFiles/fig03_coding_flexibility.dir/fig03_coding_flexibility.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_coding_flexibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
