# Empty dependencies file for fig03_coding_flexibility.
# This may be replaced when dependencies are built.
