file(REMOVE_RECURSE
  "../bench/table11_processor"
  "../bench/table11_processor.pdb"
  "CMakeFiles/table11_processor.dir/table11_processor.cc.o"
  "CMakeFiles/table11_processor.dir/table11_processor.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_processor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
