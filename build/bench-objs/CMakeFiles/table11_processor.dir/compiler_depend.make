# Empty compiler generated dependencies file for table11_processor.
# This may be replaced when dependencies are built.
