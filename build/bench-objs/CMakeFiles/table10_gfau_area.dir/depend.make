# Empty dependencies file for table10_gfau_area.
# This may be replaced when dependencies are built.
