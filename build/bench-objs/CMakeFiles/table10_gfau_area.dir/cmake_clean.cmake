file(REMOVE_RECURSE
  "../bench/table10_gfau_area"
  "../bench/table10_gfau_area.pdb"
  "CMakeFiles/table10_gfau_area.dir/table10_gfau_area.cc.o"
  "CMakeFiles/table10_gfau_area.dir/table10_gfau_area.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_gfau_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
