# Empty dependencies file for table06_syndrome_innerloop.
# This may be replaced when dependencies are built.
