file(REMOVE_RECURSE
  "../bench/table06_syndrome_innerloop"
  "../bench/table06_syndrome_innerloop.pdb"
  "CMakeFiles/table06_syndrome_innerloop.dir/table06_syndrome_innerloop.cc.o"
  "CMakeFiles/table06_syndrome_innerloop.dir/table06_syndrome_innerloop.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_syndrome_innerloop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
