# Empty compiler generated dependencies file for table07_gf233_breakdown.
# This may be replaced when dependencies are built.
