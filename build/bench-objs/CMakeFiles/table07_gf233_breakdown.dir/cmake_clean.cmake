file(REMOVE_RECURSE
  "../bench/table07_gf233_breakdown"
  "../bench/table07_gf233_breakdown.pdb"
  "CMakeFiles/table07_gf233_breakdown.dir/table07_gf233_breakdown.cc.o"
  "CMakeFiles/table07_gf233_breakdown.dir/table07_gf233_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_gf233_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
