# Empty dependencies file for adaptive_coding.
# This may be replaced when dependencies are built.
