file(REMOVE_RECURSE
  "../examples/adaptive_coding"
  "../examples/adaptive_coding.pdb"
  "CMakeFiles/adaptive_coding.dir/adaptive_coding.cpp.o"
  "CMakeFiles/adaptive_coding.dir/adaptive_coding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
