# Empty dependencies file for gfp_asm.
# This may be replaced when dependencies are built.
