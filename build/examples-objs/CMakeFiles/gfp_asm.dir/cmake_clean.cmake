file(REMOVE_RECURSE
  "../examples/gfp_asm"
  "../examples/gfp_asm.pdb"
  "CMakeFiles/gfp_asm.dir/gfp_asm.cpp.o"
  "CMakeFiles/gfp_asm.dir/gfp_asm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfp_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
