file(REMOVE_RECURSE
  "../examples/secure_telemetry"
  "../examples/secure_telemetry.pdb"
  "CMakeFiles/secure_telemetry.dir/secure_telemetry.cpp.o"
  "CMakeFiles/secure_telemetry.dir/secure_telemetry.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
