# Empty dependencies file for secure_telemetry.
# This may be replaced when dependencies are built.
