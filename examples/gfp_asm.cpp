/**
 * @file
 * gfp_asm — assemble and run a GFP program from a file (or, with no
 * arguments, a built-in demo), with optional instruction tracing.
 *
 * Usage:
 *   ./build/examples/gfp_asm                 # run the built-in demo
 *   ./build/examples/gfp_asm prog.s          # run a program
 *   ./build/examples/gfp_asm -t prog.s       # ... with a trace
 *   ./build/examples/gfp_asm -b prog.s       # ... on the baseline core
 *   ./build/examples/gfp_asm --lint prog.s   # static-analyze first;
 *                                            # refuse to run on errors
 *
 * On halt, prints the register file and cycle statistics.  Programs use
 * the syntax documented in src/isa/assembler.h; the full GF instruction
 * set (gfcfg/gfmuls/gfinvs/gfsqs/gfpows/gfadds/gf32mul) is available on
 * the GF core.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "analysis/lint.h"
#include "isa/assembler.h"
#include "isa/disasm.h"
#include "sim/machine.h"

using namespace gfp;

namespace {

const char *kDemo = R"(
; Demo: configure GF(2^8)/0x11d, compute a few SIMD products and an
; inverse, and leave results in registers.
    gfcfg  cfg
    li     r1, #0x04030201
    li     r2, #0x02020202
    gfmuls r3, r1, r2        ; lane-wise double
    gfinvs r4, r1            ; lane-wise inverse
    gfmuls r5, r1, r4        ; = 0x01010101
    li     r6, #0xffffffff
    gf32mul r7, r8, r6, r6   ; 32-bit carry-free square
    halt
.data
.align 8
cfg:
    ; P matrix for x^8+x^4+x^3+x^2+1 (0x11d), width 8 — precomputed
    .word 0xe8743a1d, 0x81387cd
)";

} // namespace

int
main(int argc, char **argv)
{
    bool trace = false;
    bool baseline = false;
    bool lint = false;
    const char *path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!strcmp(argv[i], "-t"))
            trace = true;
        else if (!strcmp(argv[i], "-b"))
            baseline = true;
        else if (!strcmp(argv[i], "--lint"))
            lint = true;
        else
            path = argv[i];
    }

    std::string source;
    if (path) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", path);
            return 1;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        source = ss.str();
    } else {
        source = kDemo;
        std::printf("(no input file: running the built-in demo)\n");
    }

    if (lint) {
        Program prog;
        AsmDiagnostic diag;
        if (!Assembler::tryAssemble(source, prog, diag)) {
            std::fprintf(stderr, "%s: %s\n", path ? path : "<demo>",
                         diag.render().c_str());
            return 2;
        }
        LintReport report = lintProgram(prog);
        for (const Finding &f : report.findings)
            std::fprintf(stderr, "%s\n", f.describe().c_str());
        if (report.hasErrors()) {
            std::fprintf(stderr, "lint: %s — not running\n",
                         report.summary().c_str());
            return 3;
        }
        if (!report.clean())
            std::fprintf(stderr, "lint: %s\n", report.summary().c_str());
    }

    Machine machine(source, baseline ? CoreKind::kBaseline
                                     : CoreKind::kGfProcessor);
    if (trace) {
        machine.core().setTraceHook([](uint32_t pc, const Instr &in) {
            std::printf("  %06x:  %s\n", pc,
                        disassemble(in, pc).c_str());
        });
    }

    // The program came from the user, not from a kernel generator:
    // run it untrusted, so a bad program is a diagnostic, not an abort.
    RunResult result = machine.runToHalt();
    if (!result.ok()) {
        std::fprintf(stderr, "\ntrap: %s\n", result.trap.describe().c_str());
        return 2;
    }
    CycleStats stats = result.stats;

    std::printf("\nhalted after %llu instructions, %llu cycles\n",
                static_cast<unsigned long long>(stats.instrs),
                static_cast<unsigned long long>(stats.cycles));
    std::printf("%s\n\n", stats.summary().c_str());
    for (unsigned r = 0; r < kNumRegs; r += 4) {
        for (unsigned i = r; i < r + 4; ++i)
            std::printf("%-4s %08x   ", regName(i).c_str(),
                        machine.core().reg(i));
        std::printf("\n");
    }
    return 0;
}
