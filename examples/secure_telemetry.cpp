/**
 * @file
 * End-to-end IoT scenario: the paper's motivating use case.
 *
 * A sensor node establishes a session key with a gateway via ECDH on
 * the NIST K-233 curve, encrypts telemetry with AES-128-CTR, protects
 * each packet with an RS(255,239,8) code, and the packet crosses a
 * noisy channel.  The gateway decodes, decrypts, and verifies.
 * Finally, the heavy inner loops are replayed on the simulated GF
 * processor to estimate the on-node cycle/energy budget.
 *
 * Build & run:   ./build/examples/secure_telemetry
 */

#include <cstdio>
#include <cstring>

#include "coding/channel.h"
#include "coding/rs.h"
#include "crypto/aes.h"
#include "crypto/ecc.h"
#include "hwmodel/synthesis.h"
#include "kernels/aes_kernels.h"
#include "kernels/coding_kernels.h"
#include "sim/machine.h"

using namespace gfp;

namespace {

std::vector<uint8_t>
roundKeyBytes(const Aes &aes)
{
    std::vector<uint8_t> out;
    for (uint32_t w : aes.roundKeys())
        for (int b = 3; b >= 0; --b)
            out.push_back(static_cast<uint8_t>(w >> (8 * b)));
    return out;
}

} // namespace

int
main()
{
    std::printf("== secure telemetry: sensor -> noisy channel -> "
                "gateway ==\n\n");

    // ---- 1. session establishment: ECDH on K-233 ----
    EllipticCurve curve = EllipticCurve::nist("K-233");
    Ecdh ecdh(curve);
    auto sensor = ecdh.generate(0xA11CE);
    auto gateway = ecdh.generate(0xB0B);
    auto s1_opt = ecdh.sharedSecret(sensor.private_scalar,
                                    gateway.public_point);
    auto s2_opt = ecdh.sharedSecret(gateway.private_scalar,
                                    sensor.public_point);
    if (!s1_opt || !s2_opt) {
        std::printf("ECDH rejected: degenerate public point\n");
        return 1;
    }
    Gf2x s1 = *s1_opt;
    Gf2x s2 = *s2_opt;
    std::printf("ECDH shared secret agreement: %s\n",
                s1 == s2 ? "yes" : "NO");

    // Derive a 128-bit AES key from the shared x-coordinate.
    std::vector<uint8_t> key(16);
    auto sw = s1.toWords32(4);
    for (unsigned i = 0; i < 4; ++i)
        for (unsigned b = 0; b < 4; ++b)
            key[4 * i + b] = static_cast<uint8_t>(sw[i] >> (8 * b));
    Aes aes(key);

    // ---- 2. per-packet pipeline: encrypt, encode, transmit ----
    const char *message = "temp=23.4C humidity=41% battery=87% "
                          "accel=[0.02,-0.01,9.81] seq=20260705";
    std::vector<uint8_t> plaintext(message, message + strlen(message));
    AesBlock iv{};
    iv[15] = 1;
    std::vector<uint8_t> ciphertext = aes.applyCtr(plaintext, iv);

    RSCode code(8, 8); // RS(255,239,8): fits 239 payload bytes
    std::vector<GFElem> info(code.k(), 0);
    for (size_t i = 0; i < ciphertext.size(); ++i)
        info[i] = ciphertext[i];
    std::vector<GFElem> codeword = code.encode(info);

    GilbertElliottChannel channel(0.002, 0.08, 0.0002, 0.12, 0xC0FFEE);
    std::vector<GFElem> received = channel.transmitSymbols(codeword, 8);
    unsigned symbol_errors = 0;
    for (unsigned i = 0; i < code.n(); ++i)
        symbol_errors += received[i] != codeword[i];
    std::printf("channel corrupted %u of %u symbols (%llu bit "
                "errors, bursty)\n",
                symbol_errors, code.n(),
                static_cast<unsigned long long>(channel.bitErrors()));

    // ---- 3. gateway: decode, decrypt ----
    auto decoded = code.decode(received);
    std::printf("RS decode: %s, %u symbols corrected\n",
                decoded.ok ? "ok" : "FAILED", decoded.errors);
    auto info_out = code.extractInfo(decoded.codeword);
    std::vector<uint8_t> ct_out(plaintext.size());
    for (size_t i = 0; i < ct_out.size(); ++i)
        ct_out[i] = static_cast<uint8_t>(info_out[i]);
    auto pt_out = aes.applyCtr(ct_out, iv);
    bool match = pt_out == plaintext;
    std::printf("decrypted payload matches: %s\n", match ? "yes" : "NO");
    std::printf("payload: \"%.*s\"\n", static_cast<int>(pt_out.size()),
                reinterpret_cast<const char *>(pt_out.data()));

    // ---- 4. on-node cost: replay the hot loops on the GF core ----
    std::printf("\n== on-node cost on the GF processor (simulated) "
                "==\n");
    uint64_t cycles_aes = 0;
    {
        Machine m(aesBlockAsmGfcore(false), CoreKind::kGfProcessor);
        m.writeBytes("rkeys", roundKeyBytes(aes));
        m.writeBytes("state", std::vector<uint8_t>(16, 0));
        uint64_t per_block = m.runOk().cycles;
        unsigned blocks = (plaintext.size() + 15) / 16;
        cycles_aes = per_block * blocks;
        std::printf("AES-CTR keystream: %u blocks x %llu cycles = "
                    "%llu cycles\n",
                    blocks, static_cast<unsigned long long>(per_block),
                    static_cast<unsigned long long>(cycles_aes));
    }
    uint64_t cycles_rs = 0;
    {
        GFField f(8);
        std::vector<uint8_t> rx_bytes(received.begin(), received.end());
        Machine m(syndromeAsmGfcore(f, 255, 16), CoreKind::kGfProcessor);
        m.writeBytes("rxdata", rx_bytes);
        cycles_rs = m.runOk().cycles;
        std::printf("RS syndrome screen (the always-on kernel): "
                    "%llu cycles\n",
                    static_cast<unsigned long long>(cycles_rs));
    }
    ProcessorSynthesis p;
    double us = (cycles_aes + cycles_rs) / p.frequency_mhz;
    double nj = p.total_power_uw * 1e-6 * us * 1e3; // uW * us = pJ/1e3
    std::printf("per packet at %g MHz / %g uW: %.1f us, ~%.2f nJ "
                "(encrypt + integrity screen)\n",
                p.frequency_mhz, p.total_power_uw, us, nj);
    return (s1 == s2 && decoded.ok && match) ? 0 : 1;
}
