; GF(2^8) dot product of two 16-element vectors, four lanes at a time:
;   acc ^= a[i] (x) b[i]
; then a horizontal fold of the four lanes into r0.
;
; Run:  ./build/examples/gfp_asm examples/progs/dot_product.s

    gfcfg  cfg
    la     r1, veca
    la     r2, vecb
    movi   r3, #0          ; packed accumulator
    movi   r0, #0          ; byte index
loop:
    ldr    r4, [r1, r0]
    ldr    r5, [r2, r0]
    gfmuls r4, r4, r5
    gfadds r3, r3, r4
    addi   r0, r0, #4
    cmpi   r0, #16
    bne    loop

    ; fold the four lanes: r0 = l0 ^ l1 ^ l2 ^ l3
    lsri   r4, r3, #16
    eor    r3, r3, r4
    lsri   r4, r3, #8
    eor    r3, r3, r4
    andi   r0, r3, #0xff
    halt

.data
.align 8
cfg:                        ; GF(2^8) / 0x11d
    .word 0xe8743a1d, 0x081387cd
veca:
    .byte 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
vecb:
    .byte 0x53, 0x53, 0x53, 0x53, 0xca, 0xca, 0xca, 0xca
    .byte 0x01, 0x01, 0x01, 0x01, 0x80, 0x80, 0x80, 0x80
