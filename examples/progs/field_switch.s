; The coding-flexibility primitive: one gfcfg instruction retargets the
; whole datapath between fields.  Computes 0x13 (x) 0x1d in GF(2^5) and
; then {57} (x) {83} in the AES field GF(2^8)/0x11b, leaving the results
; in r2 and r4.
;
; Run:  ./build/examples/gfp_asm examples/progs/field_switch.s

    gfcfg  cfg_gf32         ; GF(2^5) / 0x25 (the BCH(31,k,t) field)
    movi   r0, #0x13
    movi   r1, #0x1d
    gfmuls r2, r0, r1       ; lane 0 = 0x01 (they are inverses)

    gfcfg  cfg_aes          ; GF(2^8) / 0x11b
    movi   r3, #0x57
    movi   r1, #0x83
    gfmuls r4, r3, r1       ; lane 0 = 0xc1 (FIPS-197 example)
    halt

.data
.align 8
cfg_gf32:                   ; P columns for x^5 + x^2 + 1, m = 5
    .word 0x0d140a05, 0x05000000
.align 8
cfg_aes:                    ; P columns for x^8 + x^4 + x^3 + x + 1
    .word 0xd86c361b, 0x089a4dab
