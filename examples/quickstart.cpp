/**
 * @file
 * Quickstart for the GF processor library.
 *
 * Walks the three layers of the stack in ~100 lines:
 *  1. host-side reference GF arithmetic (GFField),
 *  2. the structural GF arithmetic unit model (GFArithmeticUnit),
 *  3. a program running on the simulated GF processor (Machine),
 * and cross-checks them against each other.
 *
 * Build & run:   ./build/examples/quickstart
 */

#include <cstdio>

#include "common/bitops.h"
#include "gf/field.h"
#include "gf/polys.h"
#include "gfau/gf_unit.h"
#include "sim/machine.h"

using namespace gfp;

int
main()
{
    std::printf("== 1. Reference finite-field arithmetic ==\n");
    // GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
    GFField aes_field(8, kAesPoly);
    GFElem product = aes_field.mul(0x57, 0x83);
    std::printf("{57} x {83} mod 0x11b = {%02x}  (FIPS-197 says c1)\n",
                product);
    std::printf("{53}^-1 = {%02x}; {53} x {%02x} = {%02x}\n",
                aes_field.inv(0x53), aes_field.inv(0x53),
                aes_field.mul(0x53, aes_field.inv(0x53)));

    // The same works for any irreducible polynomial of degree 2..16:
    GFField gf32(5, 0x25); // the BCH(31,k,t) field
    std::printf("in GF(2^5)/0x25: {1d} x {13} = {%02x}\n",
                gf32.mul(0x1d, 0x13));

    std::printf("\n== 2. The GF arithmetic unit (structural model) ==\n");
    GFArithmeticUnit gfau;
    gfau.configureField(8, kAesPoly);
    // Four independent 8-bit lanes per 32-bit word:
    uint32_t a = 0x04030201, b = 0x57575757;
    uint32_t r = gfau.simdMult(a, b);
    std::printf("gfMult_simd(%08x, %08x) = %08x\n", a, b, r);
    std::printf("gfMultInv_simd(%08x)    = %08x  (single cycle, "
                "Itoh-Tsujii network)\n",
                a, gfau.simdInverse(a));
    uint32_t hi, lo;
    gfau.mult32(0xdeadbeef, 0x10001, hi, lo);
    std::printf("gf32bMult(deadbeef, 10001) = %08x:%08x (carry-free)\n",
                hi, lo);

    std::printf("\n== 3. A program on the simulated GF processor ==\n");
    // Multiply two vectors of GF(2^8) elements, four lanes at a time.
    Machine machine(R"(
        gfcfg  cfg
        la     r1, veca
        la     r2, vecb
        la     r3, out
        movi   r0, #0
    loop:
        ldr    r4, [r1, r0]
        ldr    r5, [r2, r0]
        gfmuls r4, r4, r5       ; 4 GF multiplies in one cycle
        str    r4, [r3, r0]
        addi   r0, r0, #4
        cmpi   r0, #16
        bne    loop
        halt
    .data
    .align 8
    cfg:  .word 0, 0            ; patched below
    veca: .space 16
    vecb: .space 16
    out:  .space 16
    )", CoreKind::kGfProcessor);

    // Install the field configuration and the operands.
    machine.memory().write64(machine.addr("cfg"),
                             GFConfig::derive(8, kAesPoly).pack());
    std::vector<uint8_t> va(16), vb(16);
    for (unsigned i = 0; i < 16; ++i) {
        va[i] = static_cast<uint8_t>(i + 1);
        vb[i] = 0x57;
    }
    machine.writeBytes("veca", va);
    machine.writeBytes("vecb", vb);

    CycleStats stats = machine.runOk();
    auto out = machine.readBytes("out", 16);

    bool all_ok = true;
    for (unsigned i = 0; i < 16; ++i)
        all_ok &= out[i] == aes_field.mul(va[i], vb[i]);
    std::printf("16 GF multiplies in %llu cycles (%llu instructions); "
                "results %s the reference\n",
                static_cast<unsigned long long>(stats.cycles),
                static_cast<unsigned long long>(stats.instrs),
                all_ok ? "match" : "DO NOT match");
    std::printf("cycle breakdown: %s\n", stats.summary().c_str());
    return all_ok ? 0 : 1;
}
