/**
 * @file
 * Adaptive coding — the paper's Sec. 1.1 thesis as a running system.
 *
 * A link adapts its block code to the observed channel: as the bit
 * error rate degrades, the controller walks a ladder of BCH/RS codes
 * (trading rate for correction strength), exactly the flexibility a
 * single programmable GF datapath provides.  For each channel state
 * the example reports the chosen code, its rate, the residual word
 * error rate, and the decoder cycle cost on the simulated GF core.
 *
 * Build & run:   ./build/examples/adaptive_coding
 */

#include <cstdio>
#include <memory>

#include "coding/bch.h"
#include "coding/channel.h"
#include "coding/resilient_decoder.h"
#include "coding/rs.h"
#include "kernels/coding_kernels.h"
#include "sim/fault_injector.h"
#include "sim/machine.h"

using namespace gfp;

namespace {

/** One rung of the adaptation ladder. */
struct Rung
{
    const char *name;
    unsigned m, t;
    bool is_rs;
};

// Ordered by code rate, highest first: the controller walks down
// until the residual error target is met.
const Rung kLadder[] = {
    {"RS(255,239,8)", 8, 8, true},
    {"BCH(31,26,1)", 5, 1, false},
    {"BCH(31,16,3)", 5, 3, false},
    {"BCH(31,11,5)", 5, 5, false},
};

/** Word error rate of a code over a BSC(p). */
double
wordErrorRate(const Rung &rung, double ber, unsigned trials)
{
    unsigned fail = 0;
    if (!rung.is_rs) {
        BCHCode code(rung.m, rung.t);
        Rng rng(11);
        BscChannel ch(ber, 17);
        for (unsigned i = 0; i < trials; ++i) {
            std::vector<uint8_t> info(code.k());
            for (auto &b : info)
                b = static_cast<uint8_t>(rng.below(2));
            auto cw = code.encode(info);
            auto res = code.decode(ch.transmit(cw));
            fail += !(res.ok && res.codeword == cw);
        }
    } else {
        RSCode code(rung.m, rung.t);
        Rng rng(12);
        BscChannel ch(ber, 18);
        for (unsigned i = 0; i < trials / 4 + 1; ++i) {
            std::vector<GFElem> info(code.k());
            for (auto &s : info)
                s = rng.nextByte();
            auto cw = code.encode(info);
            auto res = code.decode(ch.transmitSymbols(cw, 8));
            fail += !(res.ok && res.codeword == cw);
        }
        return static_cast<double>(fail) / (trials / 4 + 1);
    }
    return static_cast<double>(fail) / trials;
}

double
codeRate(const Rung &rung)
{
    if (rung.is_rs)
        return RSCode(rung.m, rung.t).rate();
    return BCHCode(rung.m, rung.t).rate();
}

/** Decoder syndrome-screen cost on the GF core (cycles per codeword). */
uint64_t
decoderCycles(const Rung &rung)
{
    GFField f(rung.m);
    unsigned n = f.groupOrder();
    Machine m(syndromeAsmGfcore(f, n, 2 * rung.t),
              CoreKind::kGfProcessor);
    m.writeBytes("rxdata", std::vector<uint8_t>(n, 0));
    return m.runOk().cycles;
}

/**
 * SEU-resilience demo: run the RS(15,9,3) decode pipeline while a
 * seeded fault injector strikes the GF core's configuration register
 * and data memory.  Every upset ends in a structured outcome — a
 * contained trap plus a scrub, or a detected-uncorrectable flag —
 * never a host abort.
 */
void
resilienceDemo()
{
    std::printf("== SEU resilience: RS(15,9,3) under fault "
                "injection ==\n");

    const unsigned m = 4, t = 3;
    GFField field(m);
    unsigned n = field.groupOrder();
    ScreenProgram screen{syndromeAsmGfcore(field, n, 2 * t)};

    unsigned tally[3] = {0, 0, 0};
    unsigned traps_contained = 0;
    for (uint64_t seed = 0; seed < 40; ++seed) {
        ResilientRsDecoder dec(m, t, screen);
        std::vector<GFElem> info(dec.code().k(),
                                 static_cast<GFElem>(seed % 16));
        auto cw = dec.code().encode(info);
        ExactErrorInjector chan(seed);
        auto rx = chan.corruptSymbols(cw, seed % (t + 1), m);

        FaultInjector inj;
        // Horizon ~ one screen pass, so upsets land mid-kernel.
        inj.setSchedule(FaultInjector::randomCampaign(
            seed, 2, 120, 256 * 1024,
            {FaultTarget::kConfigReg, FaultTarget::kDataMemory}));
        inj.attach(dec.core());

        auto res = dec.decode(rx);
        ++tally[static_cast<unsigned>(res.report.outcome)];
        traps_contained += res.report.last_trap.kind != TrapKind::kNone;
        if (seed < 3)
            std::printf("  campaign %llu: %s\n",
                        static_cast<unsigned long long>(seed),
                        res.report.summary().c_str());
    }
    std::printf("  40 campaigns: %u corrected, %u recovered after "
                "scrub, %u detected uncorrectable; %u trapped screens "
                "contained, 0 host aborts\n\n",
                tally[0], tally[1], tally[2], traps_contained);
}

} // namespace

int
main()
{
    std::printf("== adaptive coding controller ==\n");
    std::printf("policy: pick the highest-rate code with residual "
                "word error < 1e-2\n\n");

    const double kTarget = 1e-2;
    const unsigned kTrials = 160;

    for (double ber : {0.001, 0.005, 0.015, 0.03}) {
        std::printf("channel BER %.3f:\n", ber);
        const Rung *chosen = nullptr;
        for (const Rung &rung : kLadder) {
            double wer = wordErrorRate(rung, ber, kTrials);
            std::printf("  %-16s rate %.3f  WER %.3f%s\n", rung.name,
                        codeRate(rung), wer,
                        (!chosen && wer < kTarget) ? "   <= selected"
                                                   : "");
            if (!chosen && wer < kTarget)
                chosen = &rung;
        }
        if (!chosen) {
            std::printf("  -> no rung meets the target; strongest code "
                        "retained, physical layer should drop rate\n\n");
            continue;
        }
        uint64_t cyc = decoderCycles(*chosen);
        std::printf("  -> syndrome screen on the GF core: %llu cycles "
                    "per codeword; same silicon for every rung — no "
                    "per-code ASIC needed\n\n",
                    static_cast<unsigned long long>(cyc));
    }
    std::printf("one gfConfig instruction retargets the datapath "
                "between GF(2^5) and GF(2^8) codes at run time.\n\n");

    resilienceDemo();
    return 0;
}
